#!/usr/bin/env python3
"""Show-case A (Fig. 5): memory management for a cryptographic straight-line
program.

The script pebbles the Kummer-surface point-addition program (40 modular
operations, the workload family of the paper's Fig. 5) with a shrinking
ancilla budget and reports, for every budget, how many operations of each
type are executed and how the memory usage evolves over time.

Run with::

    python examples/straight_line_program.py [budget budget ...]
"""

import sys

from repro import eager_bennett_strategy, pebble_dag
from repro.slp import kummer_point_addition_slp
from repro.visualize import memory_profile_chart


def main(budgets: list[int]) -> None:
    program = kummer_point_addition_slp()
    dag = program.to_dag()
    baseline = eager_bennett_strategy(dag)
    print(f"program: {program.name} with {program.num_instructions} operations "
          f"({program.operation_counts()})")
    print(f"Bennett baseline: {baseline.max_pebbles} ancillae, "
          f"{baseline.num_moves} operations\n")

    for budget in budgets:
        result = pebble_dag(dag, budget, time_limit=120, step_schedule="geometric")
        if not result.found:
            print(f"{budget:3d} ancillae: no strategy found within the time budget "
                  f"({result.outcome.value})")
            continue
        strategy = result.strategy.remove_redundant_moves()
        counts = strategy.operation_counts()
        summary = ", ".join(f"{name}:{count}" for name, count in sorted(counts.items()))
        print(f"{strategy.max_pebbles:3d} ancillae: {strategy.num_moves:3d} operations "
              f"({summary})")
        print(f"{'':14s}{memory_profile_chart(strategy)}")
    print("\nFewer ancillae force values to be recomputed, exactly the "
          "qubits-vs-operations trade-off of Fig. 5.")


if __name__ == "__main__":
    requested = [int(token) for token in sys.argv[1:]] or [30, 26, 22]
    main(requested)
