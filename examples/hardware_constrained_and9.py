#!/usr/bin/env python3
"""Show-case C (Fig. 6): fit a 9-input AND oracle onto a 16-qubit device.

Three mappings of the same oracle are produced and verified:

* the Bennett strategy (17 qubits — does not fit),
* the Barenco decomposition of the 9-control Toffoli (11 qubits, 48 gates),
* the SAT pebbling strategy with 7 ancillae (16 qubits, few gates).

Run with::

    python examples/hardware_constrained_and9.py
"""

from repro.circuits import barenco_and_oracle, circuit_cost, compile_network_oracle
from repro.circuits.simulator import verify_oracle_circuit
from repro.pebbling import pebble_dag
from repro.visualize import render_strategy_grid
from repro.workloads.registry import and_tree_network

DEVICE_QUBITS = 16


def main() -> None:
    network = and_tree_network(9)
    dag = network.to_dag()
    output = network.outputs[0]

    bennett = compile_network_oracle(network)
    barenco = barenco_and_oracle(9)
    result = pebble_dag(dag, DEVICE_QUBITS - network.num_inputs, time_limit=120)
    if not result.found:
        raise SystemExit(f"pebbling failed: {result.outcome.value}")
    pebbled = compile_network_oracle(network, result.strategy)

    print("mapping                qubits  gates  T-count  fits on 16 qubits")
    for label, compiled in (
        ("Bennett (Fig. 6b)", bennett.circuit),
        ("Barenco (Fig. 6d)", barenco),
        ("pebbling (Fig. 6c)", pebbled.circuit),
    ):
        cost = circuit_cost(compiled)
        fits = "yes" if cost.qubits <= DEVICE_QUBITS else "no"
        print(f"{label:22s} {cost.qubits:6d}  {cost.gates:5d}  {cost.t_count:7d}  {fits}")

    # Check all three circuits implement the same Boolean oracle and leave
    # every ancilla clean (the paper's Fig. 1 requirement).
    verify_oracle_circuit(
        bennett.circuit, network,
        input_map={name: bennett.input_qubits[name] for name in network.inputs},
        output_map={output: bennett.output_qubits[output]},
    )
    verify_oracle_circuit(
        pebbled.circuit, network,
        input_map={name: pebbled.input_qubits[name] for name in network.inputs},
        output_map={output: pebbled.output_qubits[output]},
    )
    verify_oracle_circuit(
        barenco,
        lambda values: {"h": all(values[f"x{i}"] for i in range(9))},
        input_map={f"x{i}": f"x{i}" for i in range(9)},
        output_map={"h": "h"},
    )
    print("\nall three circuits verified on all 512 input patterns "
          "(outputs correct, ancillae restored)\n")

    print("pebbling strategy used for the 16-qubit mapping:")
    print(render_strategy_grid(result.strategy))


if __name__ == "__main__":
    main()
