#!/usr/bin/env python3
"""Show-case B (Table I): Bennett strategy versus constrained SAT pebbling.

For a selection of (scaled-down) Table I designs the script reports the
Bennett baseline and the smallest pebble count for which the SAT solver
finds a strategy within a per-budget timeout, together with the resulting
increase in operations — the pebbles-versus-steps trade-off the paper
quantifies as a 52.77 % average pebble reduction at a 2.68x step increase.

Run with::

    python examples/bennett_comparison.py [--timeout SECONDS]
"""

import argparse

from repro import ReversiblePebblingSolver, eager_bennett_strategy, load_workload

#: (workload, scale) pairs small enough for an interactive run.
DESIGNS = [
    ("b2_m3", 0.5),
    ("c17", 1.0),
    ("c432", 0.1),
    ("c499", 0.1),
]


def main(timeout: float) -> None:
    print("design     nodes  Bennett P/K   pebbling P/K   %P reduction  xK")
    reductions = []
    ratios = []
    for name, scale in DESIGNS:
        dag = load_workload(name, scale=scale)
        baseline = eager_bennett_strategy(dag)
        solver = ReversiblePebblingSolver(dag)
        best, _ = solver.minimize_pebbles(
            timeout_per_budget=timeout, step_schedule="geometric", stop_after_failures=1
        )
        if best is None or best.strategy is None:
            print(f"{name:9s}  {dag.num_nodes:5d}  {baseline.max_pebbles}/{baseline.num_moves}"
                  f"   no solution within {timeout:.0f} s per budget")
            continue
        strategy = best.strategy.remove_redundant_moves()
        reduction = 100.0 * (baseline.max_pebbles - strategy.max_pebbles) / baseline.max_pebbles
        ratio = strategy.num_moves / baseline.num_moves
        reductions.append(reduction)
        ratios.append(ratio)
        print(f"{name:9s}  {dag.num_nodes:5d}  "
              f"{baseline.max_pebbles:3d}/{baseline.num_moves:<4d}   "
              f"{strategy.max_pebbles:3d}/{strategy.num_moves:<4d}      "
              f"{reduction:6.2f}%      {ratio:.2f}x")
    if reductions:
        print(f"\naverage pebble reduction: {sum(reductions) / len(reductions):.2f}% "
              f"(paper, full-size designs: 52.77%)")
        print(f"average step factor     : {sum(ratios) / len(ratios):.2f}x "
              f"(paper, full-size designs: 2.68x)")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=20.0,
                        help="seconds per pebble budget (default: 20)")
    main(parser.parse_args().timeout)
