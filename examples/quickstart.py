#!/usr/bin/env python3
"""Quickstart: pebble the paper's example DAG (Fig. 2) and compare strategies.

Run with::

    python examples/quickstart.py

The script builds the six-node dependency DAG of the paper's running
example, computes the Bennett baseline, asks the SAT solver for a strategy
with only four pebbles, and prints both as Fig. 4-style grids.
"""

from repro import bennett_strategy, load_workload, pebble_dag, strategy_report


def main() -> None:
    dag = load_workload("fig2")
    print(f"DAG: {dag.name} with {dag.num_nodes} nodes, outputs {dag.outputs()}\n")

    # Bennett's strategy: minimum number of operations, maximum number of
    # ancillae (Section II-A of the paper).
    bennett = bennett_strategy(dag)
    print("Bennett strategy (Fig. 3a / Fig. 4 left)")
    print(strategy_report(bennett))
    print()

    # The SAT-based pebbling solver: the same computation squeezed into four
    # pebbles, at the price of recomputing some values (Fig. 3c / Fig. 4
    # right).
    result = pebble_dag(dag, max_pebbles=4, time_limit=60)
    if not result.found:
        raise SystemExit(f"no strategy found: {result.outcome.value}")
    print("SAT pebbling strategy with 4 pebbles")
    print(strategy_report(result.strategy))
    print()
    print(
        f"trade-off: {bennett.max_pebbles} -> {result.strategy.max_pebbles} pebbles, "
        f"{bennett.num_moves} -> {result.num_moves} operations"
    )


if __name__ == "__main__":
    main()
