"""Command-line interface: ``repro-pebble``.

Sub-commands
------------

``list``
    List the named workloads bundled with the library.

``info <workload>``
    Print structural statistics of a workload DAG.

``bennett <workload>``
    Print the Bennett and eager-Bennett baselines for a workload.

``pebble <workload> --pebbles P``
    Run the SAT-based pebbling solver with a pebble budget and print the
    resulting strategy grid.

``compare <workload>``
    Reproduce one row of Table I for the workload: eager-Bennett baseline
    versus the minimum-pebble SAT solution found within a timeout.

``compile <workload> --pebbles P``
    Run the end-to-end pipeline: SAT pebbling (optionally the weighted
    game with ``--weighted``), compilation into a reversible circuit,
    optional Barenco lowering to Toffoli gates (``--decompose``),
    simulation-based verification against the source logic network, and a
    qubit/gate/T-count :class:`~repro.circuits.pipeline.CompilationReport`.

``sweep <workload>``
    Compile the workload at every pebble (or weight) budget and print the
    Fig. 6-style space-time Pareto table, ``--jobs`` processes wide.

``pebble-batch [--suite NAME] --jobs N``
    Sweep every workload of a registered batch suite through the pebbling
    solver, ``N`` worker processes wide, and print a deterministic result
    table (see :mod:`repro.pebbling.portfolio`).

``dimacs <workload> --pebbles P --steps K``
    Write the pebbling encoding of a (workload, budget, steps) instance to
    a DIMACS CNF file (or stdout) for external solvers.

``backends``
    List the registered incremental-SAT backends and whether each is
    usable on this host.  The solving subcommands (``pebble``,
    ``compile``, ``sweep``, ``pebble-batch``, ``cache warm``, ``serve``)
    accept ``--backend SPEC`` to pick one (``cdcl`` — the default native
    engine, ``dpll`` — the debug oracle, ``external[:<command>]`` — any
    minisat-style DIMACS binary), and ``pebble-batch`` additionally
    accepts ``--race-backends SPEC,SPEC,...`` to race every task across
    several backends and keep the first complete answer.

``cache {stats,clear,warm} --db PATH``
    Inspect, empty or pre-populate the content-addressed result store
    (``warm`` runs a batch suite through the portfolio with the store
    attached, so later requests hit).

``serve --json requests.json [--db PATH] [--workers N]``
    Drive a JSON request file through the async scheduler
    (:mod:`repro.service`): identical requests deduplicate, cached
    requests are answered without a solver, and misses batch into the
    portfolio pool.

``trace {summarize,phases,critical-path} FILE``
    Inspect a JSONL trace written with ``--trace`` (accepted by
    ``pebble``, ``sweep``, ``pebble-batch`` and ``serve``): span/event
    totals and tree health, per-phase time aggregates with self-time, or
    the latest-finishing root-to-leaf chain of the slowest request.

The SAT-solving subcommands (``pebble``, ``compile``, ``sweep``,
``pebble-batch``) additionally accept ``--db PATH`` to opt into the result
store: exact repeats are answered from the cache and neighbouring budgets
warm-start each other.

Workloads are either names from :mod:`repro.workloads` or paths to ``.bench``
or DAG-JSON files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.circuits.pipeline import compile_workload, pareto_sweep
from repro.dag.graph import Dag
from repro.errors import ReproError
from repro.pebbling import (
    EncodingOptions,
    PebblingEncoder,
    ReversiblePebblingSolver,
    bennett_strategy,
    eager_bennett_strategy,
    run_portfolio,
    tasks_from_suite,
)
from repro.pebbling.search import STRATEGY_NAMES
from repro.sat.cards import CardinalityEncoding
from repro.sat.dimacs import write_dimacs
from repro.visualize import strategy_report
from repro.workloads import list_suites, list_workloads
from repro.workloads.registry import load_workload_or_path


def _load(workload: str, scale: float) -> Dag:
    return load_workload_or_path(workload, scale=scale)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="workload name, .bench file or DAG .json file")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="size scale for generated workloads (default 1.0 = paper-sized)",
    )


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db", default=None, metavar="PATH",
        help="opt into the content-addressed result store at this SQLite "
             "path (cache hits skip the SAT solver, neighbouring budgets "
             "warm-start each other)",
    )


def _open_store(arguments: argparse.Namespace):
    """The ``--db`` store of a solving subcommand, or ``None``."""
    if getattr(arguments, "db", None) is None:
        return None
    from repro.store import ResultStore

    return ResultStore(arguments.db)


def _add_search_arguments(parser: argparse.ArgumentParser) -> None:
    """The search/encoding knobs shared by every SAT-solving subcommand."""
    parser.add_argument("--cardinality",
                        choices=[member.value for member in CardinalityEncoding],
                        default=CardinalityEncoding.SEQUENTIAL.value,
                        help="at-most-k encoding for the pebble/move budgets "
                             "(weighted budgets with non-unit weights always "
                             "use the generalised sequential counter)")
    parser.add_argument("--schedule", choices=list(STRATEGY_NAMES), default="linear",
                        help="step-bound search strategy ('linear-core' and "
                             "'core-refine' use UNSAT cores over the bound "
                             "guards to skip provably-UNSAT bounds)")
    parser.add_argument("--step-increment", type=int, default=None,
                        help="bound increment per UNSAT answer (linear schedule only)")
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default="cdcl", metavar="SPEC",
                        help="incremental-SAT backend spec: 'cdcl' (default), "
                             "'dpll', 'external[:<command>]', or "
                             "'chaos:<seed>,...' for deterministic fault "
                             "injection (see 'repro-pebble backends')")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a JSONL trace of this run (spans + events "
                             "from every worker process, merged on exit; "
                             "inspect with 'repro-pebble trace summarize FILE')")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-pebble",
        description="SAT-based reversible pebbling for quantum memory management",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list bundled workloads")

    backends = subparsers.add_parser(
        "backends", help="list registered SAT backends and their availability"
    )
    backends.add_argument("--json", action="store_true", dest="as_json",
                          help="emit the backend table as JSON")

    info = subparsers.add_parser("info", help="print DAG statistics")
    _add_common_arguments(info)

    bennett = subparsers.add_parser("bennett", help="print the Bennett baselines")
    _add_common_arguments(bennett)
    bennett.add_argument("--grid", action="store_true", help="print the strategy grid")

    pebble = subparsers.add_parser("pebble", help="run the SAT pebbling solver")
    _add_common_arguments(pebble)
    pebble.add_argument("--pebbles", type=int, required=True,
                        help="pebble budget (weight budget with --weighted)")
    pebble.add_argument("--timeout", type=float, default=120.0, help="time budget in seconds")
    pebble.add_argument("--single-move", action="store_true",
                        help="allow only one pebble move per step (Fig. 4 style)")
    pebble.add_argument("--weighted", action="store_true",
                        help="play the weighted game: bound total node weight")
    _add_search_arguments(pebble)
    pebble.add_argument("--cubes", type=int, default=0, metavar="N",
                        help="cube-and-conquer: split the instance into an "
                             "exhaustive cover of N cubes raced through the "
                             "shared bound board (default 0 = sequential)")
    pebble.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cube lanes "
                             "(default 1 = inline lanes; only with --cubes)")
    pebble.add_argument("--grid", action="store_true", help="print the strategy grid")
    pebble.add_argument("--stats", action="store_true",
                        help="print aggregated SAT-solver counters")
    _add_store_argument(pebble)
    _add_trace_argument(pebble)

    compare = subparsers.add_parser("compare", help="Bennett vs minimum-pebble SAT solution")
    _add_common_arguments(compare)
    compare.add_argument("--timeout", type=float, default=120.0,
                         help="time budget per pebble count in seconds")
    _add_search_arguments(compare)
    compare.add_argument("--grid", action="store_true",
                         help="print the grid of the best SAT strategy")

    compile_parser = subparsers.add_parser(
        "compile",
        help="end-to-end pipeline: pebble, compile, verify, cost report",
    )
    _add_common_arguments(compile_parser)
    compile_parser.add_argument("--pebbles", type=int, required=True,
                                help="pebble budget (weight budget with --weighted)")
    compile_parser.add_argument("--timeout", type=float, default=120.0,
                                help="SAT search time budget in seconds")
    compile_parser.add_argument("--weighted", action="store_true",
                                help="play the weighted game: bound total node weight")
    compile_parser.add_argument("--decompose", action="store_true",
                                help="lower the circuit to Toffoli (<=2-control) gates")
    compile_parser.add_argument("--single-move", action="store_true",
                                help="allow only one pebble move per step")
    _add_search_arguments(compile_parser)
    compile_parser.add_argument("--no-verify", action="store_false", dest="verify",
                                help="skip the simulation-based verification")
    compile_parser.add_argument("--verify-patterns", type=int, default=64,
                                help="max input patterns checked by the verifier")
    compile_parser.add_argument("--json", action="store_true", dest="as_json",
                                help="emit the CompilationReport as JSON")
    compile_parser.add_argument("--grid", action="store_true",
                                help="print the strategy grid")
    _add_store_argument(compile_parser)

    sweep = subparsers.add_parser(
        "sweep", help="Fig. 6-style space-time Pareto sweep across budgets"
    )
    _add_common_arguments(sweep)
    sweep.add_argument("--min-budget", type=int, default=None,
                       help="smallest budget (default: structural lower bound)")
    sweep.add_argument("--max-budget", type=int, default=None,
                       help="largest budget (default: eager-Bennett peak)")
    sweep.add_argument("--timeout", type=float, default=60.0,
                       help="SAT time budget per point in seconds")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="number of worker processes (default 1 = inline)")
    sweep.add_argument("--weighted", action="store_true",
                       help="sweep weight budgets instead of pebble budgets")
    sweep.add_argument("--decompose", action="store_true",
                       help="cost Toffoli-lowered circuits")
    sweep.add_argument("--single-move", action="store_true",
                       help="allow only one pebble move per step")
    _add_search_arguments(sweep)
    sweep.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the sweep table as JSON")
    _add_store_argument(sweep)
    _add_trace_argument(sweep)

    batch = subparsers.add_parser(
        "pebble-batch", help="sweep a batch suite across worker processes"
    )
    batch.add_argument("--suite", default="default",
                       help="registered batch suite (see --list-suites)")
    batch.add_argument("--jobs", type=int, default=1,
                       help="number of worker processes (default 1 = inline)")
    batch.add_argument("--timeout", type=float, default=60.0,
                       help="per-task time budget in seconds")
    batch.add_argument("--schedule", choices=list(STRATEGY_NAMES), default="linear",
                       help="step-bound search strategy for every task")
    batch.add_argument("--cardinality",
                       choices=[member.value for member in CardinalityEncoding],
                       default=CardinalityEncoding.SEQUENTIAL.value,
                       help="at-most-k encoding for every task")
    batch.add_argument("--step-increment", type=int, default=None,
                       help="bound increment per UNSAT answer (linear schedule only)")
    _add_backend_argument(batch)
    batch.add_argument("--race-backends", default=None, metavar="SPEC,SPEC,...",
                       help="race every task across these backend specs; the "
                            "first complete result wins (overrides --backend; "
                            "raced lanes bypass --db, since the store's "
                            "backend-invariant cache would answer the later "
                            "lanes from the first one)")
    batch.add_argument("--cubes", type=int, default=0, metavar="N",
                       help="cube-and-conquer width per task: split each "
                            "instance into N cubes sharing a bound board "
                            "(default 0 = sequential tasks)")
    batch.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry each failed task up to N extra times with "
                            "exponential backoff (default 0 = no retries)")
    batch.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the result table as JSON")
    batch.add_argument("--list-suites", action="store_true",
                       help="list registered suites and exit")
    _add_store_argument(batch)
    _add_trace_argument(batch)

    cache = subparsers.add_parser(
        "cache", help="inspect or manage the content-addressed result store"
    )
    cache.add_argument("action", choices=["stats", "clear", "warm"],
                       help="stats: print store contents; clear: drop every "
                            "entry; warm: pre-populate by running a batch suite")
    cache.add_argument("--db", required=True, metavar="PATH",
                       help="SQLite path of the result store")
    cache.add_argument("--suite", default="smoke",
                       help="batch suite used by 'warm' (default: smoke)")
    cache.add_argument("--jobs", type=int, default=1,
                       help="worker processes for 'warm' (default 1)")
    cache.add_argument("--timeout", type=float, default=60.0,
                       help="per-task time budget for 'warm' in seconds")
    cache.add_argument("--schedule", choices=list(STRATEGY_NAMES), default="linear",
                       help="step-bound search strategy for 'warm'")
    _add_backend_argument(cache)
    cache.add_argument("--json", action="store_true", dest="as_json",
                       help="emit machine-readable JSON")

    serve = subparsers.add_parser(
        "serve", help="drive a JSON request file through the async scheduler"
    )
    serve.add_argument("--json", required=True, dest="requests", metavar="FILE",
                       help='request file: {"requests": [{"kind": "pebble", '
                            '"workload": "fig2", "budget": 4}, ...]}')
    serve.add_argument("--db", default=None, metavar="PATH",
                       help="attach the result store at this SQLite path")
    serve.add_argument("--workers", type=int, default=1,
                       help="portfolio width for batched misses (default 1)")
    serve.add_argument("--batch-window", type=float, default=0.01,
                       help="seconds the dispatcher waits for a batch to "
                            "fill (default 0.01)")
    serve.add_argument("--backend", default=None, metavar="SPEC",
                       help="default SAT backend for requests that do not "
                            "name their own (see 'repro-pebble backends')")
    serve.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retry each failed solver task up to N extra "
                            "times with exponential backoff (default 0)")
    serve.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="default per-request deadline: requests still "
                            "unfinished after this many seconds are preempted "
                            "into anytime partial answers")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission-control bound: shed new requests once "
                            "N are already queued (default: unbounded)")
    serve.add_argument("--cubes", type=int, default=None, metavar="N",
                       help="default cube-and-conquer width for requests that "
                            "do not name their own 'cubes' field")
    serve.add_argument("--health-json", default=None, metavar="FILE",
                       help="write the service health snapshot (queue depth, "
                            "sheds, preemptions, retries, pool rebuilds, and "
                            "the cross-layer metrics registry) to this file "
                            "after the run")
    _add_trace_argument(serve)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect a JSONL trace written with --trace"
    )
    trace_parser.add_argument(
        "action", choices=["summarize", "phases", "critical-path"],
        help="summarize: span/event totals and tree health; phases: "
             "per-span-name time aggregate; critical-path: the longest "
             "root-to-leaf chain of the slowest trace",
    )
    trace_parser.add_argument("file", help="merged trace file (JSONL)")
    trace_parser.add_argument("--json", action="store_true", dest="as_json",
                              help="emit machine-readable JSON")

    dimacs = subparsers.add_parser(
        "dimacs", help="write a pebbling instance as a DIMACS CNF file"
    )
    _add_common_arguments(dimacs)
    dimacs.add_argument("--pebbles", type=int, required=True, help="pebble budget")
    dimacs.add_argument("--steps", type=int, required=True, help="number of transitions")
    dimacs.add_argument("--single-move", action="store_true",
                        help="allow only one pebble move per step")
    dimacs.add_argument("--cardinality",
                        choices=[member.value for member in CardinalityEncoding],
                        default=CardinalityEncoding.SEQUENTIAL.value,
                        help="at-most-k encoding for the pebble/move budgets")
    dimacs.add_argument("--output", "-o", default=None,
                        help="destination file (default: stdout)")

    return parser


def _aggregate_solver_stats(attempts) -> dict[str, float]:
    """Sum the SAT-engine counters over every attempt of a search."""
    totals: dict[str, float] = {}
    for record in attempts:
        for key, value in record.solver_stats.items():
            if key == "max_decision_level":
                totals[key] = max(totals.get(key, 0), value)
            else:
                totals[key] = totals.get(key, 0) + value
    return totals


def _format_stats_line(attempts) -> str:
    """Aggregated solver-counter line for ``pebble --stats``.

    Only the counters the backend actually reported are printed (in the
    canonical CDCL order first, then any extras alphabetically): a
    backend without CDCL internals must not have its missing counters
    padded with zeros-as-lies.
    """
    totals = _aggregate_solver_stats(attempts)
    ordered = [
        "decisions", "propagations", "conflicts", "restarts",
        "learned_clauses", "deleted_clauses", "max_decision_level",
        "blocker_hits", "heap_decisions", "deadline_checks_skipped",
        "lbd_glue", "lbd_mid", "lbd_high", "lbd_sum",
        "subsumed_clauses", "strengthened_clauses", "root_simplified",
        "inprocessings", "eliminated_variables", "restored_variables",
        "bve_resolvents", "vivified_clauses", "chrono_backtracks",
        "rephases",
    ]
    parts = [f"{key}={int(totals[key])}" for key in ordered if key in totals]
    parts.extend(
        f"{key}={totals[key]:g}"
        for key in sorted(totals)
        if key not in ordered and key != "solve_time"
    )
    if "solve_time" in totals:
        parts.append(f"solve_time={totals['solve_time']:.3f}s")
    if not parts:
        return "stats: (this backend reports no counters)"
    return "stats: " + " ".join(parts)


def _retry_policy(retries: int):
    """A :class:`RetryPolicy` for ``--retries N``, or ``None`` for 0."""
    if retries < 0:
        raise ReproError("--retries must be >= 0")
    if retries == 0:
        return None
    from repro.pebbling import RetryPolicy

    return RetryPolicy(max_attempts=retries + 1)


def _run_batch(arguments: argparse.Namespace) -> int:
    if arguments.list_suites:
        for name in list_suites():
            print(name)
        return 0
    race = None
    if arguments.race_backends:
        race = [
            spec.strip() for spec in arguments.race_backends.split(",") if spec.strip()
        ]
    tasks = tasks_from_suite(
        arguments.suite,
        time_limit=arguments.timeout,
        schedule=arguments.schedule,
        cardinality=arguments.cardinality,
        step_increment=(
            1 if arguments.step_increment is None else arguments.step_increment
        ),
        backend=arguments.backend,
        cubes=arguments.cubes,
    )
    records = run_portfolio(
        tasks, jobs=arguments.jobs, store_path=arguments.db, race_backends=race,
        retry=_retry_policy(arguments.retries),
    )
    rows = [record.as_dict() for record in records]
    if arguments.as_json:
        print(json.dumps({"suite": arguments.suite, "jobs": arguments.jobs,
                          "results": rows}, indent=2))
    else:
        for row in rows:
            steps = "-" if row["steps"] is None else row["steps"]
            tail = f" [{row['backend']}]" if race else ""
            if row.get("retries"):
                tail += f" retries={row['retries']}"
            print(f"{row['name']:24s} {row['outcome']:10s} steps={steps!s:>4s} "
                  f"sat_calls={row['sat_calls']:<3d} {row['runtime']:7.3f}s{tail}")
        solved = sum(1 for row in rows if row["outcome"] == "solution")
        print(f"{len(rows)} tasks, {solved} solved "
              f"(suite={arguments.suite}, jobs={arguments.jobs})")
    return 0 if all(row["outcome"] != "error" for row in rows) else 1


def _run_compile(arguments: argparse.Namespace) -> int:
    store = _open_store(arguments)
    try:
        report = compile_workload(
            arguments.workload,
            pebbles=arguments.pebbles,
            scale=arguments.scale,
            weighted=arguments.weighted,
            decompose=arguments.decompose,
            single_move=arguments.single_move,
            cardinality=arguments.cardinality,
            schedule=arguments.schedule,
            step_increment=arguments.step_increment,
            time_limit=arguments.timeout,
            verify=arguments.verify,
            max_verify_patterns=arguments.verify_patterns,
            backend=arguments.backend,
            store=store,
        )
    finally:
        if store is not None:
            store.close()
    if arguments.as_json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        budget_kind = "weight" if report.weighted else "pebbles"
        print(f"workload   : {report.workload} ({report.nodes} nodes)")
        print(f"budget     : {report.budget} {budget_kind}")
        print(f"outcome    : {report.outcome}")
        if report.found:
            print(f"steps/moves: {report.steps} / {report.moves}")
            print(f"pebbles    : {report.pebbles_used} (weight {report.weight_used:g})")
            print(f"qubits     : {report.qubits}")
            gate_kind = "toffoli-level" if report.decomposed else "single-target"
            print(f"gates      : {report.gates} ({gate_kind})")
            print(f"t-count    : {report.t_count}")
            if report.verified is None:
                print("verified   : n/a (no logic network behind this workload)")
            else:
                print(f"verified   : {report.verified} "
                      f"({report.verify_patterns} patterns)")
        print(f"sat calls  : {report.sat_calls} in {report.solve_runtime:.3f}s")
    if report.found and arguments.grid and not arguments.as_json:
        # The grid is human-readable only; appending it to --json output
        # would corrupt the machine-readable stream.
        print()
        print(strategy_report(report.strategy))
    return 0 if report.found else 2


def _run_sweep(arguments: argparse.Namespace) -> int:
    budgets = None
    if arguments.min_budget is not None or arguments.max_budget is not None:
        if arguments.min_budget is None or arguments.max_budget is None:
            raise ReproError("--min-budget and --max-budget must be given together")
        if arguments.max_budget < arguments.min_budget:
            raise ReproError("--max-budget must be >= --min-budget")
        budgets = list(range(arguments.min_budget, arguments.max_budget + 1))
    report = pareto_sweep(
        arguments.workload,
        budgets=budgets,
        scale=arguments.scale,
        weighted=arguments.weighted,
        decompose=arguments.decompose,
        single_move=arguments.single_move,
        jobs=arguments.jobs,
        time_limit=arguments.timeout,
        schedule=arguments.schedule,
        cardinality=arguments.cardinality,
        step_increment=arguments.step_increment,
        store_path=arguments.db,
        backend=arguments.backend,
    )
    front = report.pareto_front()
    if arguments.as_json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0 if front else 2
    budget_kind = "weight" if report.weighted else "pebbles"
    print(f"{budget_kind:>7s} {'outcome':10s} {'steps':>5s} {'qubits':>6s} "
          f"{'gates':>6s} {'t-count':>7s}  pareto")
    for point in report.points:
        steps = "-" if point.steps is None else str(point.steps)
        qubits = "-" if point.qubits is None else str(point.qubits)
        gates = "-" if point.gates is None else str(point.gates)
        t_count = "-" if point.t_count is None else str(point.t_count)
        marker = "*" if point.pareto else ""
        print(f"{point.budget:7d} {point.outcome:10s} {steps:>5s} {qubits:>6s} "
              f"{gates:>6s} {t_count:>7s}  {marker}")
    print(f"{len(report.points)} budgets, {len(front)} on the Pareto front")
    return 0 if front else 2


def _run_cache(arguments: argparse.Namespace) -> int:
    from repro.store import ResultStore

    with ResultStore(arguments.db) as store:
        if arguments.action == "clear":
            removed = store.clear()
            if arguments.as_json:
                print(json.dumps({"cleared": removed}, indent=2))
            else:
                print(f"cleared {removed} entries from {arguments.db}")
            return 0
        if arguments.action == "warm":
            tasks = tasks_from_suite(
                arguments.suite,
                time_limit=arguments.timeout,
                schedule=arguments.schedule,
                backend=arguments.backend,
            )
            records = run_portfolio(
                tasks, jobs=arguments.jobs, store_path=arguments.db
            )
            solved = sum(1 for record in records if record.found)
            errors = sum(1 for record in records if record.outcome == "error")
            stats = store.stats().as_dict()
            if arguments.as_json:
                print(json.dumps({"suite": arguments.suite, "tasks": len(records),
                                  "solved": solved, "errors": errors,
                                  "store": stats}, indent=2))
            else:
                print(f"warmed {arguments.db} with suite={arguments.suite}: "
                      f"{len(records)} tasks, {solved} solved, "
                      f"{stats['entries']} entries in store")
            return 0 if errors == 0 else 1
        stats = store.stats().as_dict()
    if arguments.as_json:
        print(json.dumps(stats, indent=2))
    else:
        print(f"store      : {stats['path']}")
        print(f"entries    : {stats['entries']} "
              f"({stats['pebble_entries']} pebble, "
              f"{stats['compile_entries']} compile)")
        print(f"total hits : {stats['total_hits']}")
        print(f"size       : {stats['size_bytes']} bytes")
    return 0


def _run_serve(arguments: argparse.Namespace) -> int:
    from repro.service import run_request_file

    report = run_request_file(
        arguments.requests,
        store=arguments.db,
        workers=arguments.workers,
        batch_window=arguments.batch_window,
        default_backend=arguments.backend,
        retry=_retry_policy(arguments.retries),
        deadline=arguments.deadline,
        max_queue=arguments.max_queue,
        default_cubes=arguments.cubes,
    )
    print(json.dumps(report, indent=2))
    if arguments.health_json is not None:
        with open(arguments.health_json, "w", encoding="utf-8") as handle:
            json.dump(report["health"], handle, indent=2)
            handle.write("\n")
    failed = sum(
        1 for result in report["results"] if result["status"] != "ok"
    )
    return 0 if failed == 0 else 1


def _run_trace(arguments: argparse.Namespace) -> int:
    from repro.obs.analyze import critical_path, load_trace, phase_aggregate, summarize

    try:
        trace = load_trace(arguments.file)
    except OSError as error:
        raise ReproError(f"cannot read trace file {arguments.file}: {error}")

    if arguments.action == "summarize":
        report = summarize(trace)
        if arguments.as_json:
            print(json.dumps(report, indent=2))
        else:
            print(f"schema     : {report['schema']}")
            print(f"traces     : {report['traces']}")
            print(f"spans      : {report['spans']} across "
                  f"{report['processes']} processes")
            print(f"events     : {report['events']}")
            print(f"complete   : {report['complete']}")
            for problem in report["problems"]:
                print(f"problem    : {problem}")
            print()
            print(f"{'span':24s} {'count':>6s} {'total':>9s} {'mean':>9s} errors")
            for name, row in report["span_names"].items():
                print(f"{name:24s} {row['count']:6d} {row['total_s']:8.3f}s "
                      f"{row['mean_s']:8.3f}s {row['errors']:6d}")
            if report["event_names"]:
                print()
                events = ", ".join(
                    f"{name}×{count}"
                    for name, count in report["event_names"].items()
                )
                print(f"events     : {events}")
        return 0 if report["complete"] and report["spans"] else 1

    if arguments.action == "phases":
        rows = phase_aggregate(trace)
        if arguments.as_json:
            print(json.dumps(rows, indent=2))
        else:
            print(f"{'phase':24s} {'count':>6s} {'total':>9s} {'self':>9s} "
                  f"{'max':>9s} errors")
            for row in rows:
                print(f"{row['phase']:24s} {row['count']:6d} "
                      f"{row['total_s']:8.3f}s {row['self_s']:8.3f}s "
                      f"{row['max_s']:8.3f}s {row['errors']:6d}")
        return 0

    path = critical_path(trace)
    if arguments.as_json:
        print(json.dumps(path, indent=2))
    else:
        for depth, row in enumerate(path):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(row["attrs"].items()))
            indent = "  " * depth
            print(f"{indent}{row['name']} {row['dur_s']:.3f}s "
                  f"(self {row['self_s']:.3f}s, pid {row['pid']})"
                  + (f" [{attrs}]" if attrs else ""))
    return 0 if path else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.obs.trace import tracer

    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        # Solving subcommands accept --trace FILE; wrapping the dispatch in
        # the tracer means every span of the run — including pool workers
        # re-activating the shipped context — merges into one file on exit.
        with tracer(getattr(arguments, "trace", None)):
            return _dispatch(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _run_backends(arguments: argparse.Namespace) -> int:
    from repro.sat.backend import describe_backends

    rows = describe_backends()
    if arguments.as_json:
        print(json.dumps({"backends": rows}, indent=2))
        return 0
    for row in rows:
        status = "available" if row["available"] else f"unavailable ({row['detail']})"
        print(f"{row['name']:10s} {status:60s} {row['description']}")
    print("select with --backend SPEC on pebble/compile/sweep/pebble-batch/"
          "cache warm/serve; race with pebble-batch --race-backends")
    return 0


def _dispatch(arguments: argparse.Namespace) -> int:
    if arguments.command == "list":
        for name in list_workloads():
            print(name)
        return 0

    if arguments.command == "backends":
        return _run_backends(arguments)

    if arguments.command == "pebble-batch":
        return _run_batch(arguments)

    if arguments.command == "compile":
        return _run_compile(arguments)

    if arguments.command == "sweep":
        return _run_sweep(arguments)

    if arguments.command == "cache":
        return _run_cache(arguments)

    if arguments.command == "serve":
        return _run_serve(arguments)

    if arguments.command == "trace":
        return _run_trace(arguments)

    dag = _load(arguments.workload, arguments.scale)

    if arguments.command == "info":
        print(json.dumps(dag.statistics().as_dict(), indent=2))
        return 0

    if arguments.command == "bennett":
        plain = bennett_strategy(dag)
        eager = eager_bennett_strategy(dag)
        print(f"bennett       : pebbles={plain.max_pebbles} moves={plain.num_moves}")
        print(f"eager bennett : pebbles={eager.max_pebbles} moves={eager.num_moves}")
        if arguments.grid:
            print()
            print(strategy_report(eager))
        return 0

    if arguments.command == "pebble":
        options = EncodingOptions(
            max_moves_per_step=1 if arguments.single_move else None,
            cardinality=CardinalityEncoding.from_name(arguments.cardinality),
            weighted=arguments.weighted,
        )
        solver = ReversiblePebblingSolver(
            dag, options=options, backend=arguments.backend
        )
        store = _open_store(arguments)
        try:
            result = solver.solve(
                arguments.pebbles,
                time_limit=arguments.timeout,
                step_schedule=arguments.schedule,
                step_increment=arguments.step_increment,
                store=store,
                cubes=arguments.cubes if arguments.cubes > 1 else None,
                cube_jobs=arguments.jobs,
            )
        finally:
            if store is not None:
                store.close()
        print(json.dumps(result.summary(), indent=2))
        if arguments.stats:
            print(_format_stats_line(result.attempts))
        if result.found and arguments.grid:
            print()
            print(strategy_report(result.strategy))
        return 0 if result.found else 2

    if arguments.command == "dimacs":
        options = EncodingOptions(
            max_moves_per_step=1 if arguments.single_move else None,
            cardinality=CardinalityEncoding.from_name(arguments.cardinality),
        )
        encoding = PebblingEncoder(dag, options=options).encode(
            max_pebbles=arguments.pebbles, num_steps=arguments.steps
        )
        if arguments.output is None:
            write_dimacs(encoding.cnf, sys.stdout)
        else:
            write_dimacs(encoding.cnf, arguments.output)
            stats = encoding.cnf.stats()
            print(
                f"wrote {arguments.output}: {stats['variables']} variables, "
                f"{stats['clauses']} clauses"
            )
        return 0

    if arguments.command == "compare":
        eager = eager_bennett_strategy(dag)
        options = EncodingOptions(
            cardinality=CardinalityEncoding.from_name(arguments.cardinality),
        )
        solver = ReversiblePebblingSolver(
            dag, options=options, backend=arguments.backend
        )
        best, attempts = solver.minimize_pebbles(
            timeout_per_budget=arguments.timeout,
            step_schedule=arguments.schedule,
            step_increment=arguments.step_increment,
        )
        print(f"nodes                 : {dag.num_nodes}")
        print(f"bennett pebbles/moves : {eager.max_pebbles} / {eager.num_moves}")
        if best is not None and best.strategy is not None:
            reduction = 100.0 * (eager.max_pebbles - best.strategy.max_pebbles) / eager.max_pebbles
            ratio = best.strategy.num_moves / eager.num_moves
            print(f"pebbling pebbles/moves: {best.strategy.max_pebbles} / {best.strategy.num_moves}")
            print(f"pebble reduction      : {reduction:.2f}%")
            print(f"move ratio            : {ratio:.2f}x")
            print(f"sat budgets tried     : {len(attempts)}")
            if arguments.grid:
                print()
                print(strategy_report(best.strategy))
        else:
            print("pebbling              : no improvement found within the timeout")
        return 0

    raise ReproError(f"unhandled command {arguments.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
