"""Offline analysis of merged trace files: tree, aggregates, critical path.

Everything here consumes the JSONL format written by
:mod:`repro.obs.trace` and is pure data-in/data-out so both the ``repro
trace`` CLI and the bench/CI gates share one implementation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "SpanNode",
    "Trace",
    "load_trace",
    "summarize",
    "phase_aggregate",
    "critical_path",
]


@dataclass
class SpanNode:
    """One span plus its resolved children."""

    record: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def span_id(self) -> str:
        return self.record["span"]

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def ts(self) -> float:
        return self.record["ts"]

    @property
    def dur(self) -> float:
        return self.record.get("dur", 0.0)

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def attrs(self) -> dict[str, Any]:
        return self.record.get("attrs", {})


@dataclass
class Trace:
    """A parsed trace file."""

    meta: dict[str, Any]
    spans: list[dict[str, Any]]
    events: list[dict[str, Any]]
    by_id: dict[str, SpanNode]
    roots: list[SpanNode]
    problems: list[str]

    @property
    def trace_ids(self) -> list[str]:
        seen: list[str] = []
        for root in self.roots:
            trace_id = root.record.get("trace")
            if trace_id not in seen:
                seen.append(trace_id)
        return seen

    @property
    def complete(self) -> bool:
        """True when every span's parent link resolves."""

        return not self.problems


def load_trace(path: str | Path) -> Trace:
    """Parse a merged JSONL trace and build the span tree.

    Orphaned spans (parent id missing from the file) and events pointing
    at unknown spans are reported in ``problems`` rather than raising —
    a trace from a crashed run should still be inspectable.
    """

    meta: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    problems: list[str] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"unparsable line: {line[:80]}")
            continue
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "span":
            spans.append(record)
        elif kind == "event":
            events.append(record)
        else:
            problems.append(f"unknown record type: {kind!r}")

    by_id = {record["span"]: SpanNode(record) for record in spans}
    if len(by_id) != len(spans):
        problems.append("duplicate span ids")
    roots: list[SpanNode] = []
    for record in spans:
        node = by_id[record["span"]]
        parent = record.get("parent")
        if parent is None:
            roots.append(node)
        elif parent in by_id:
            by_id[parent].children.append(node)
        else:
            problems.append(f"span {record['span']} ({record['name']}) "
                            f"has unresolved parent {parent}")
            roots.append(node)
    for record in events:
        owner = record.get("span")
        if owner is None:
            continue
        if owner in by_id:
            by_id[owner].events.append(record)
        else:
            problems.append(f"event {record['name']} points at unknown span {owner}")
    for node in by_id.values():
        node.children.sort(key=lambda child: (child.ts, child.span_id))
    roots.sort(key=lambda node: (node.ts, node.span_id))
    return Trace(meta, spans, events, by_id, roots, problems)


def summarize(trace: Trace) -> dict[str, Any]:
    """Whole-file overview: counts, per-name aggregates, completeness."""

    per_name: dict[str, dict[str, Any]] = {}
    for record in trace.spans:
        row = per_name.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "errors": 0}
        )
        row["count"] += 1
        row["total_s"] += record.get("dur", 0.0)
        if record.get("status") == "error":
            row["errors"] += 1
    for row in per_name.values():
        row["total_s"] = round(row["total_s"], 6)
        row["mean_s"] = round(row["total_s"] / max(row["count"], 1), 6)
    event_counts: dict[str, int] = {}
    for record in trace.events:
        event_counts[record["name"]] = event_counts.get(record["name"], 0) + 1
    pids = sorted({r.get("pid") for r in trace.spans + trace.events if "pid" in r})
    return {
        "schema": trace.meta.get("schema"),
        "traces": len(trace.trace_ids),
        "spans": len(trace.spans),
        "events": len(trace.events),
        "processes": len(pids),
        "roots": [root.name for root in trace.roots],
        "span_names": dict(sorted(per_name.items())),
        "event_names": dict(sorted(event_counts.items())),
        "complete": trace.complete,
        "problems": trace.problems,
    }


def phase_aggregate(trace: Trace) -> list[dict[str, Any]]:
    """Per-phase (span name) aggregate with self-time, sorted by total.

    Self-time is a span's duration minus its children's — the time spent
    in that phase itself rather than in phases it invoked.
    """

    rows: dict[str, dict[str, Any]] = {}
    for node in trace.by_id.values():
        child_total = sum(child.dur for child in node.children)
        row = rows.setdefault(
            node.name,
            {"phase": node.name, "count": 0, "total_s": 0.0, "self_s": 0.0,
             "max_s": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["total_s"] += node.dur
        row["self_s"] += max(0.0, node.dur - child_total)
        row["max_s"] = max(row["max_s"], node.dur)
        if node.record.get("status") == "error":
            row["errors"] += 1
    out = sorted(rows.values(), key=lambda row: -row["total_s"])
    for row in out:
        for key in ("total_s", "self_s", "max_s"):
            row[key] = round(row[key], 6)
    return out


def critical_path(trace: Trace, trace_id: str | None = None) -> list[dict[str, Any]]:
    """Latest-finishing descent from a request's root span.

    Picks the root (of ``trace_id``, or the longest root in the file) and
    repeatedly descends into the child that finishes last — the chain that
    determined the request's end-to-end latency.  Each step reports the
    span, its duration, and its self-time relative to the next step.
    """

    candidates = trace.roots
    if trace_id is not None:
        candidates = [r for r in candidates if r.record.get("trace") == trace_id]
    if not candidates:
        return []
    root = max(candidates, key=lambda node: node.dur)
    path: list[dict[str, Any]] = []
    node = root
    while True:
        nxt = max(node.children, key=lambda child: child.end, default=None)
        path.append(
            {
                "span": node.span_id,
                "name": node.name,
                "dur_s": round(node.dur, 6),
                "self_s": round(node.dur - (nxt.dur if nxt else 0.0), 6),
                "attrs": node.attrs,
                "pid": node.record.get("pid"),
            }
        )
        if nxt is None:
            break
        node = nxt
    return path
