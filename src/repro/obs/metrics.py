"""Named counters/gauges/histograms with a no-op disabled mode.

One process-wide :class:`MetricsRegistry` supersedes the disjoint
``SolverStats`` / ``PortfolioHealth`` / ``ServiceStats`` snapshots: every
layer records into the same flat namespace and a single :func:`snapshot`
(or Prometheus-style :func:`exposition`) reads it all back.  The registry
is disabled by default; a disabled registry hands out shared null
instruments whose methods are empty, so instrumented library code costs
one attribute call when observability is off.

Naming follows Prometheus conventions: ``repro_<layer>_<what>_total`` for
counters, ``repro_<layer>_<what>`` for gauges, ``repro_<what>_seconds``
for histograms.  Solver backend counters (``backend.counters()`` dicts)
are folded in via :func:`absorb_counters` under ``repro_solver_<name>``.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_registry",
    "enable",
    "disable",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "absorb_counters",
    "merge_counters",
    "snapshot",
    "exposition",
]

#: Default histogram bucket upper bounds, in seconds.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)

#: Counter names where a merge keeps the max instead of summing — these are
#: high-water marks, not additive totals.
_MAX_COUNTERS = frozenset({"max_decision_level"})


def merge_counters(
    into: dict[str, float], counters: Mapping[str, Any] | None
) -> dict[str, float]:
    """Accumulate one backend ``counters()`` dict into ``into`` (in place).

    Numeric values sum, except high-water marks (``max_decision_level``)
    which keep the maximum; non-numeric values are dropped.  Returns
    ``into`` for chaining.
    """

    if not counters:
        return into
    for name, value in counters.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if name in _MAX_COUNTERS:
            into[name] = max(into.get(name, 0), value)
        else:
            into[name] = into.get(name, 0) + value
    return into


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> float:
        return self._value


class Gauge:
    """Instantaneous value that can move both ways."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> float:
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def sample(self) -> dict[str, Any]:
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket in zip(self.buckets, self._counts):
            running += bucket
            cumulative[f"{bound:g}"] = running
        cumulative["+Inf"] = self._count
        return {"count": self._count, "sum": self._sum, "buckets": cumulative}


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = ""
    help = ""
    kind = "null"
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def sample(self) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """Thread-safe home for named instruments.

    While disabled, ``counter``/``gauge``/``histogram`` return the shared
    null instrument so call sites stay branch-free.  Enabling is sticky
    for instruments created afterwards; callers should fetch instruments
    at use time (they are cached by name) rather than caching a null.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def _get(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        if not self._enabled:
            return _NULL
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def absorb_counters(self, counters: Mapping[str, Any] | None, prefix: str = "solver") -> None:
        """Fold one backend ``counters()`` dict into prefixed counters."""

        if not self._enabled or not counters:
            return
        for name, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metric = f"repro_{prefix}_{name}"
            if name in _MAX_COUNTERS:
                gauge = self.gauge(metric)
                if value > gauge.value:
                    gauge.set(value)
            else:
                self.counter(metric + "_total").inc(value)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-ready dict, sorted by name."""

        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.sample() for name, inst in instruments}

    def exposition(self) -> str:
        """Prometheus text-format rendering of the registry."""

        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: list[str] = []
        for name, inst in instruments:
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            if isinstance(inst, Histogram):
                running = 0
                for bound, bucket in zip(inst.buckets, inst._counts):
                    running += bucket
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {running}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {inst.count}')
                lines.append(f"{name}_sum {inst.sum:g}")
                lines.append(f"{name}_count {inst.count}")
            else:
                lines.append(f"{name} {inst.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


# The process-global registry, disabled until a CLI flag, the service, or a
# test turns it on.
_REGISTRY = MetricsRegistry(enabled=False)


def registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""

    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


def enable() -> MetricsRegistry:
    _REGISTRY.enable()
    return _REGISTRY


def disable() -> None:
    _REGISTRY.disable()


def enabled() -> bool:
    return _REGISTRY.enabled


def counter(name: str, help: str = "") -> Counter:
    return _REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return _REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
) -> Histogram:
    return _REGISTRY.histogram(name, help, buckets=buckets)


def absorb_counters(counters: Mapping[str, Any] | None, prefix: str = "solver") -> None:
    _REGISTRY.absorb_counters(counters, prefix=prefix)


def snapshot() -> dict[str, Any]:
    return _REGISTRY.snapshot()


def exposition() -> str:
    return _REGISTRY.exposition()
