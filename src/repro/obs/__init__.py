"""Zero-dependency observability: tracing, metrics, trace analysis.

``repro.obs.trace`` writes JSONL span/event records with cross-process
merge; ``repro.obs.metrics`` is the process-wide counter/gauge/histogram
registry; ``repro.obs.analyze`` turns merged traces back into span trees,
per-phase aggregates, and critical paths.  Both runtime modules are no-op
cheap when disabled, so instrumentation stays in place unconditionally.
"""

from repro.obs import metrics, trace
from repro.obs.analyze import critical_path, load_trace, phase_aggregate, summarize
from repro.obs.metrics import MetricsRegistry, merge_counters
from repro.obs.trace import TraceContext, Tracer, activated, current_context, event, span, tracer

__all__ = [
    "metrics",
    "trace",
    "MetricsRegistry",
    "merge_counters",
    "TraceContext",
    "Tracer",
    "activated",
    "current_context",
    "event",
    "span",
    "tracer",
    "load_trace",
    "summarize",
    "phase_aggregate",
    "critical_path",
]
