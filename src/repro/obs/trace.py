"""JSONL tracing with deterministic cross-process merge.

The tracer writes *span* and *event* records as JSON lines.  Every record
carries a trace id (one per top-level request), a span id, the parent span
id, a monotonic timestamp, and the emitting pid plus a per-process sequence
number.  Processes never share a file handle: each pid appends to its own
``part-<pid>.jsonl`` inside a spool directory, and the owning process merges
the parts into one file at the end, sorted by ``(ts, pid, seq)``.  On Linux
``time.monotonic`` is ``CLOCK_MONOTONIC``, which is system-wide, so
timestamps from pool workers and cube lanes are directly comparable and the
merge order is causal on a single host.

The module-level API is no-op safe: ``span``/``event`` cost one global read
when no tracer is active, so library code can instrument unconditionally.
Context crosses process boundaries as a :class:`TraceContext` — a picklable
triple of spool directory, trace id, and parent span id — shipped inside
task payloads and re-activated in the worker via :func:`activated`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "TRACE_SCHEMA",
    "TraceContext",
    "Span",
    "Tracer",
    "tracer",
    "active",
    "current_context",
    "activated",
    "span",
    "event",
]

#: Version stamped into the ``meta`` record of every merged trace file.
TRACE_SCHEMA = 1


@dataclass(frozen=True)
class TraceContext:
    """Picklable handle that carries a trace across a process boundary."""

    spool: str
    trace_id: str
    span_id: str | None


class _Sink:
    """Per-process buffered writer appending to one part file in the spool."""

    def __init__(self, spool: str) -> None:
        self.spool = spool
        self.pid = os.getpid()
        self.seq = 0
        self._ids = 0
        self._buffer: list[str] = []
        self._path = Path(spool) / f"part-{self.pid}.jsonl"

    def write(self, record: dict[str, Any]) -> None:
        record["pid"] = self.pid
        record["seq"] = self.seq
        self.seq += 1
        self._buffer.append(json.dumps(record, sort_keys=True))

    def next_id(self, kind: str) -> str:
        ident = f"{kind}{self.pid:x}.{self._ids}"
        self._ids += 1
        return ident

    def flush(self) -> None:
        if not self._buffer:
            return
        # One appending write per flush; the file is owned by this pid so
        # lines never interleave with another process.
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()


# Process-local tracing state.  Sinks are cached per ``(pid, spool)`` so a
# pool worker reused across tasks keeps one monotone id/seq counter, and a
# forked child never appends through the parent's buffer (its pid misses the
# cache and it gets a sink of its own).
_SINKS: dict[tuple[int, str], _Sink] = {}
_ACTIVE_SPOOL: str | None = None
_OWNER_PID: int | None = None
_CURRENT: tuple[str, str | None] | None = None  # (trace_id, span_id)


def active() -> bool:
    """True when this process currently has a live trace sink."""

    return _ACTIVE_SPOOL is not None


def _sink() -> _Sink | None:
    if _ACTIVE_SPOOL is None:
        return None
    key = (os.getpid(), _ACTIVE_SPOOL)
    sink = _SINKS.get(key)
    if sink is None:
        sink = _SINKS[key] = _Sink(_ACTIVE_SPOOL)
    return sink


def current_context() -> TraceContext | None:
    """Snapshot of the active trace for shipping to another process.

    Returns ``None`` when tracing is off, so payload builders can attach it
    unconditionally.
    """

    sink = _sink()
    if sink is None:
        return None
    trace_id, span_id = _CURRENT if _CURRENT is not None else (None, None)
    if trace_id is None:
        return TraceContext(sink.spool, _new_trace_id(sink), None)
    return TraceContext(sink.spool, trace_id, span_id)


def _new_trace_id(sink: _Sink) -> str:
    return sink.next_id("t")


class Span:
    """Live span handle; ``set`` adds attributes before the span closes."""

    __slots__ = ("name", "trace_id", "span_id", "parent", "attrs", "t0", "status")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.attrs = attrs
        self.t0 = time.monotonic()
        self.status = "ok"

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """Shared do-nothing span returned when tracing is inactive."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent = None

    def set(self, **attrs: Any) -> None:  # pragma: no cover - trivial
        return None


_NULL_SPAN = _NullSpan()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | _NullSpan]:
    """Open a span under the current context; a no-op when tracing is off.

    A span opened with no current trace starts a fresh trace id, so every
    top-level unit of work (a CLI run, a service request) roots its own
    trace inside the shared file.
    """

    global _CURRENT
    sink = _sink()
    if sink is None:
        yield _NULL_SPAN
        return
    parent_state = _CURRENT
    if parent_state is None:
        trace_id = _new_trace_id(sink)
        parent: str | None = None
    else:
        trace_id, parent = parent_state
    span_id = sink.next_id("s")
    live = Span(name, trace_id, span_id, parent, dict(attrs))
    _CURRENT = (trace_id, span_id)
    try:
        yield live
    except BaseException:
        live.status = "error"
        raise
    finally:
        _CURRENT = parent_state
        t1 = time.monotonic()
        sink.write(
            {
                "type": "span",
                "name": live.name,
                "trace": live.trace_id,
                "span": live.span_id,
                "parent": live.parent,
                "ts": live.t0,
                "dur": t1 - live.t0,
                "status": live.status,
                "attrs": live.attrs,
            }
        )


def event(name: str, **attrs: Any) -> None:
    """Emit a point event attached to the current span (no-op when off)."""

    sink = _sink()
    if sink is None:
        return
    trace_id, span_id = _CURRENT if _CURRENT is not None else (None, None)
    sink.write(
        {
            "type": "event",
            "name": name,
            "trace": trace_id,
            "span": span_id,
            "ts": time.monotonic(),
            "attrs": attrs,
        }
    )


@contextmanager
def activated(ctx: TraceContext | None) -> Iterator[None]:
    """Adopt a shipped :class:`TraceContext` in this process.

    Used by pool workers and cube lanes: opens (or reuses) this process's
    part file in the originating spool and parents subsequent spans under
    ``ctx.span_id``.  Worker processes (anything that is not the tracer's
    owner) flush their buffer on exit so short-lived or pool-recycled
    workers never lose records; the owner defers to the final merge.
    ``activated(None)`` is a no-op.
    """

    global _ACTIVE_SPOOL, _CURRENT
    if ctx is None:
        yield
        return
    prev = (_ACTIVE_SPOOL, _CURRENT)
    _ACTIVE_SPOOL = ctx.spool
    _CURRENT = (ctx.trace_id, ctx.span_id)
    try:
        yield
    finally:
        if _OWNER_PID != os.getpid():
            sink = _sink()
            if sink is not None:
                sink.flush()
        _ACTIVE_SPOOL, _CURRENT = prev


class Tracer:
    """Owns a trace file: spool directory, root sink, and the final merge."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.spool = Path(f"{self.path}.spool-{os.getpid()}")
        self.spool.mkdir(parents=True, exist_ok=True)
        self._t0_monotonic = time.monotonic()
        self._t0_wall = time.time()

    def close(self) -> Path:
        """Merge every part file into ``path`` and remove the spool."""

        records: list[dict[str, Any]] = []
        for part in sorted(self.spool.glob("part-*.jsonl")):
            for line in part.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # A worker killed mid-write can truncate its last line;
                    # drop it rather than lose the whole trace.
                    continue
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0), r.get("seq", 0)))
        meta = {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "monotonic_origin": self._t0_monotonic,
            "wall_origin": self._t0_wall,
            "records": len(records),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        for part in self.spool.glob("part-*.jsonl"):
            part.unlink(missing_ok=True)
        try:
            self.spool.rmdir()
        except OSError:  # pragma: no cover - leftover foreign file
            pass
        return self.path


@contextmanager
def tracer(path: str | os.PathLike[str] | None) -> Iterator[Tracer | None]:
    """Activate tracing for this process, merging to ``path`` on exit.

    ``tracer(None)`` yields ``None`` and does nothing, so call sites can
    wrap unconditionally::

        with tracer(args.trace):
            run()
    """

    global _ACTIVE_SPOOL, _OWNER_PID, _CURRENT
    if path is None:
        yield None
        return
    owner = Tracer(path)
    prev = (_ACTIVE_SPOOL, _OWNER_PID, _CURRENT)
    _ACTIVE_SPOOL = str(owner.spool)
    _OWNER_PID = os.getpid()
    _CURRENT = None
    try:
        yield owner
    finally:
        sink = _sink()
        if sink is not None:
            sink.flush()
        _SINKS.pop((os.getpid(), str(owner.spool)), None)
        _ACTIVE_SPOOL, _OWNER_PID, _CURRENT = prev
        owner.close()
