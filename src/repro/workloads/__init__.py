"""Registry of the evaluation workloads used in the paper.

Every DAG that appears in the paper's figures and tables can be obtained
from this package by name, which keeps the examples, the tests and the
benchmark harnesses consistent:

* ``fig2``                    — the six-node example DAG of Fig. 2/3/4;
* ``and9``                    — the 9-input AND oracle DAG of Fig. 6(a);
* ``hadamard``                — the word-level ``H`` operator (8 nodes);
* ``kummer-add``              — Kummer-surface point addition (Fig. 5);
* ``kummer-double``           — Kummer-surface doubling;
* ``edwards-add``             — projective Edwards point addition;
* ``b<bits>_m<modulus>``      — gate-level expansions of ``H`` (Table I);
* ``c17``, ``c432`` ...       — ISCAS circuits (real c17, synthetic stand-ins).
"""

from repro.workloads.registry import (
    BatchEntry,
    and_tree_dag,
    and_tree_network,
    example_dag,
    example_network,
    hadamard_gate_level_dag,
    list_network_workloads,
    list_suites,
    list_workloads,
    load_workload,
    load_workload_network,
    suite_entries,
    table1_rows,
)

__all__ = [
    "BatchEntry",
    "and_tree_dag",
    "and_tree_network",
    "example_dag",
    "example_network",
    "hadamard_gate_level_dag",
    "list_network_workloads",
    "list_suites",
    "list_workloads",
    "load_workload",
    "load_workload_network",
    "suite_entries",
    "table1_rows",
]
