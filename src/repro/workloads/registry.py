"""Construction and registry of the paper's evaluation workloads."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.errors import WorkloadError
from repro.dag.graph import Dag
from repro.dag.io import dag_from_json
from repro.logic.iscas import ISCAS_PROFILES, iscas_like_network
from repro.logic.network import LogicNetwork
from repro.slp.crypto import (
    edwards_point_addition_slp,
    hadamard_operator_slp,
    kummer_doubling_slp,
    kummer_point_addition_slp,
)
from repro.slp.expand import expand_slp_to_network


# ---------------------------------------------------------------------------
# individual workload builders
# ---------------------------------------------------------------------------
def example_dag() -> Dag:
    """The six-node example DAG of Fig. 2 (nodes A–F, outputs E and F).

    Dependencies: ``C`` reads ``A``, ``D`` reads ``B``, ``E`` reads ``C`` and
    ``D``, ``F`` reads ``A``; ``A`` and ``B`` read only primary inputs.
    """
    dag = Dag("fig2_example")
    dag.add_node("A", [], operation="A")
    dag.add_node("B", [], operation="B")
    dag.add_node("C", ["A"], operation="C")
    dag.add_node("D", ["B"], operation="D")
    dag.add_node("E", ["C", "D"], operation="E")
    dag.add_node("F", ["A"], operation="F")
    dag.set_outputs(["E", "F"])
    return dag


def example_network() -> LogicNetwork:
    """A concrete gate-level realisation of the Fig. 2 example DAG.

    The paper leaves the six operations of the example abstract; this
    network assigns them real Boolean gates so the fig2 workload can be
    driven through the full compilation pipeline (compile → simulate →
    verify).  ``example_network().to_dag()`` has exactly the dependency
    structure of :func:`example_dag` (same node names, same edges, same
    outputs): every gate reads its DAG dependencies plus fresh primary
    inputs.
    """
    network = LogicNetwork("fig2_example")
    for index in range(6):
        network.add_input(f"x{index}")
    network.add_gate("A", "AND", ["x0", "x1"])
    network.add_gate("B", "XOR", ["x2", "x3"])
    network.add_gate("C", "OR", ["A", "x4"])
    network.add_gate("D", "NAND", ["B", "x5"])
    network.add_gate("E", "AND", ["C", "D"])
    network.add_gate("F", "XOR", ["A", "x4"])
    network.add_output("E")
    network.add_output("F")
    return network


def and_tree_network(num_inputs: int = 9) -> LogicNetwork:
    """The ``num_inputs``-input AND oracle of Fig. 6 as a logic network.

    The paper's Fig. 6(a) DAG combines the nine inputs with eight 2-input
    AND nodes: four leaves pairing ``(x0,x1) ... (x6,x7)``, a binary tree on
    top of them, and a final AND with ``x8``.
    """
    if num_inputs < 2:
        raise WorkloadError("an AND oracle needs at least 2 inputs")
    network = LogicNetwork(f"and{num_inputs}")
    inputs = [network.add_input(f"x{i}") for i in range(num_inputs)]
    level = list(inputs)
    counter = 0
    while len(level) > 1:
        next_level = []
        index = 0
        while index + 1 < len(level):
            name = f"n{counter}"
            counter += 1
            network.add_gate(name, "AND", [level[index], level[index + 1]])
            next_level.append(name)
            index += 2
        if index < len(level):
            next_level.append(level[index])
        level = next_level
    network.add_output(level[0])
    return network


def and_tree_dag(num_inputs: int = 9) -> Dag:
    """The Fig. 6(a) DAG (eight AND nodes for nine inputs)."""
    return and_tree_network(num_inputs).to_dag()


def hadamard_gate_level_network(bits: int, modulus: int) -> LogicNetwork:
    """Gate-level ``H`` operator for the given bit width and modulus.

    This is the generator behind the ``b<bits>_m<modulus>`` rows of Table I.
    """
    program = hadamard_operator_slp(name=f"H_b{bits}_m{modulus}")
    return expand_slp_to_network(program, bits=bits, modulus=modulus)


def hadamard_gate_level_dag(bits: int, modulus: int) -> Dag:
    """Pebbling DAG of the gate-level ``H`` operator.

    Gates outside every output cone (for example the discarded top carry of
    the final modular comparison) are swept away, as any synthesis flow
    would do before mapping.
    """
    dag = hadamard_gate_level_network(bits, modulus).to_dag()
    return dag.cone(dag.outputs())


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One row of the Table I harness: a named workload plus paper numbers.

    ``paper_*`` fields hold the values printed in the paper (for the
    EXPERIMENTS.md comparison); ``scale`` is the size reduction applied to
    the synthetic ISCAS stand-ins so the pure-Python SAT engine can process
    them in reasonable time (1.0 = paper-sized).
    """

    name: str
    kind: str  # "hadamard" or "iscas"
    paper_nodes: int | None = None
    paper_bennett_pebbles: int | None = None
    paper_bennett_steps: int | None = None
    paper_pebbles: int | None = None
    paper_steps: int | None = None
    bits: int | None = None
    modulus: int | None = None
    scale: float = 1.0


#: Paper Table I rows.  The Hadamard rows record (bits, modulus) parsed from
#: the design name; the ISCAS rows reference the profiles in
#: :mod:`repro.logic.iscas`.
TABLE1_ROWS: list[Table1Row] = [
    Table1Row("b2_m3", "hadamard", 74, 66, 124, 30, 186, bits=2, modulus=3),
    Table1Row("b3_m4", "hadamard", 59, 47, 82, 20, 117, bits=3, modulus=4),
    Table1Row("b4_m5", "hadamard", 203, 187, 358, 83, 778, bits=4, modulus=5),
    Table1Row("b5_m7", "hadamard", 256, 236, 452, 106, 888, bits=5, modulus=7),
    Table1Row("b6_m7", "hadamard", 310, 286, 548, 130, 1132, bits=6, modulus=7),
    Table1Row("b8_m7", "hadamard", 422, 390, 748, 187, 1884, bits=8, modulus=7),
    Table1Row("b10_m7", "hadamard", 535, 495, 950, 264, 2938, bits=10, modulus=7),
    Table1Row("b12_m7", "hadamard", 646, 598, 1148, 331, 4228, bits=12, modulus=7),
    Table1Row("b16_m23", "hadamard", 881, 817, 1570, 480, 6218, bits=16, modulus=23),
    Table1Row("c17", "iscas", 12, 7, 12, 4, 12),
    Table1Row("c432", "iscas", 208, 172, 337, 60, 685),
    Table1Row("c499", "iscas", 219, 178, 324, 77, 610),
    Table1Row("c880", "iscas", 334, 274, 522, 82, 1280),
    Table1Row("c1355", "iscas", 219, 178, 324, 77, 594),
    Table1Row("c1908", "iscas", 220, 187, 349, 70, 875),
    Table1Row("c2670", "iscas", 554, 397, 731, 160, 1948),
    Table1Row("c3540", "iscas", 856, 806, 1590, 416, 5434),
    Table1Row("c5315", "iscas", 1257, 1079, 2035, 498, 7635),
    Table1Row("c6288", "iscas", 1011, 979, 1926, 640, 10232),
    Table1Row("c7552", "iscas", 1151, 944, 1780, 540, 7757),
]


def table1_rows() -> list[Table1Row]:
    """Return the Table I rows (paper reference values included)."""
    return list(TABLE1_ROWS)


# ---------------------------------------------------------------------------
# batch suites
# ---------------------------------------------------------------------------
def format_task_name(
    workload: str,
    pebbles: int,
    *,
    single_move: bool = False,
    scale: float = 1.0,
    weighted: bool = False,
) -> str:
    """The canonical display/merge key of a (workload, budget) task.

    Shared by the suite registry and the portfolio layer so suite entries
    and portfolio records always agree on names.  ``weighted`` tasks carry
    a ``_w`` tag because a weight budget and a pebble budget of the same
    number are different instances.
    """
    suffix = "_sm" if single_move else ""
    weight_tag = "_w" if weighted else ""
    scale_tag = "" if scale == 1.0 else f"_s{scale:g}"
    return f"{workload}_p{pebbles}{weight_tag}{suffix}{scale_tag}"


@dataclass(frozen=True)
class BatchEntry:
    """One task of a named batch suite: a workload plus solve parameters.

    ``pebbles`` is the budget handed to the SAT search; entries with an
    infeasible budget are deliberate — all-UNSAT sweeps are part of the
    paper's methodology and exercise a different solver profile than
    satisfiable instances.
    """

    workload: str
    pebbles: int
    scale: float = 1.0
    single_move: bool = False

    @property
    def name(self) -> str:
        """Stable display/merge key of the entry."""
        return format_task_name(
            self.workload, self.pebbles, single_move=self.single_move, scale=self.scale
        )


#: Named suites for ``repro-pebble pebble-batch`` and the portfolio
#: benchmarks.  ``smoke`` is the CI subset; ``default`` is the registered
#: workload suite swept by the Table-I style batch runs (a mix of SAT
#: searches, all-UNSAT sweeps and single-move instances, all sized for the
#: pure-Python engine).
BATCH_SUITES: dict[str, tuple[BatchEntry, ...]] = {
    "smoke": (
        BatchEntry("fig2", 4),
        BatchEntry("c17", 4),
    ),
    "default": (
        BatchEntry("fig2", 4),
        BatchEntry("fig2", 3),
        BatchEntry("fig2", 4, single_move=True),
        BatchEntry("and9", 5),
        BatchEntry("and9", 4),
        BatchEntry("and9", 4, single_move=True),
        BatchEntry("hadamard", 5),
        BatchEntry("c17", 4),
        BatchEntry("c17", 3),
    ),
    "single-move": (
        BatchEntry("fig2", 4, single_move=True),
        BatchEntry("fig2", 6, single_move=True),
        BatchEntry("and9", 4, single_move=True),
    ),
}


def list_suites() -> list[str]:
    """Names accepted by :func:`suite_entries`."""
    return sorted(BATCH_SUITES)


def suite_entries(name: str) -> list[BatchEntry]:
    """Return the entries of the named batch suite."""
    try:
        return list(BATCH_SUITES[name])
    except KeyError as exc:
        raise WorkloadError(
            f"unknown batch suite {name!r}; valid names: {list_suites()}"
        ) from exc


def list_workloads() -> list[str]:
    """Names accepted by :func:`load_workload`."""
    names = ["fig2", "and9", "hadamard", "kummer-add", "kummer-double", "edwards-add"]
    names.extend(row.name for row in TABLE1_ROWS)
    return names


def _scaled_hadamard_parameters(row: Table1Row, scale: float) -> tuple[int, int]:
    """(bits, modulus) of a scaled Hadamard Table I row.

    The single source of the scale arithmetic: :func:`load_workload` and
    :func:`load_workload_network` must agree on it exactly, otherwise a
    workload's DAG and its verification network would be built at
    different sizes.
    """
    assert row.bits is not None and row.modulus is not None
    bits = max(1, int(round(row.bits * scale)))
    modulus = min(row.modulus, 1 << bits)
    return bits, modulus


def load_workload(name: str, *, scale: float = 1.0) -> Dag:
    """Load a workload DAG by name.

    ``scale`` only affects the ISCAS stand-ins and the Hadamard gate-level
    designs: values below 1 shrink the instance (smaller bit width /
    fewer gates) so the pure-Python SAT solver can handle it; 1.0 builds the
    paper-sized instance.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    key = name.lower()
    if key == "fig2":
        return example_dag()
    if key == "and9":
        return and_tree_dag(9)
    if key == "hadamard":
        return hadamard_operator_slp().to_dag()
    if key == "kummer-add":
        return kummer_point_addition_slp().to_dag()
    if key == "kummer-double":
        return kummer_doubling_slp().to_dag()
    if key == "edwards-add":
        return edwards_point_addition_slp().to_dag()
    for row in TABLE1_ROWS:
        if row.name == key:
            if row.kind == "hadamard":
                bits, modulus = _scaled_hadamard_parameters(row, scale)
                return hadamard_gate_level_dag(bits, modulus)
            return _iscas_dag(row.name, scale)
    if key in ISCAS_PROFILES:
        return _iscas_dag(key, scale)
    raise WorkloadError(f"unknown workload {name!r}; valid names: {list_workloads()}")


def load_workload_or_path(spec: str, *, scale: float = 1.0) -> Dag:
    """Load a workload by registry name, ``.bench`` path or DAG-JSON path.

    This is the resolution rule shared by the CLI, the portfolio workers
    and the serving layer: a ``.bench`` or ``.json`` suffix naming an
    existing file wins; anything else is looked up in the registry.  A
    path-looking spec whose file is missing raises a targeted error (the
    historical behaviour fell through to the registry and reported the
    file name as an unknown workload), and an unknown registry name lists
    every valid workload and batch suite.
    """
    path = Path(spec)
    if path.suffix in (".bench", ".json"):
        if not path.exists():
            raise WorkloadError(
                f"workload file {spec!r} does not exist; a spec ending in "
                ".bench or .json must name an existing file "
                f"(registry workloads: {list_workloads()})"
            )
        if path.suffix == ".bench":
            from repro.logic.bench import network_from_bench

            return network_from_bench(path).to_dag()
        return dag_from_json(path)
    try:
        return load_workload(spec, scale=scale)
    except WorkloadError as exc:
        if "unknown workload" not in str(exc):
            raise  # e.g. a bad scale: already a precise message
        raise WorkloadError(
            f"{exc} (batch suites for pebble-batch/cache warm: {list_suites()})"
        ) from exc


def load_workload_network(spec: str, *, scale: float = 1.0) -> LogicNetwork | None:
    """Return the :class:`LogicNetwork` behind a workload, if it has one.

    The compilation pipeline needs the Boolean functions of the pebbled
    nodes to emit simulatable gates and verify circuits end-to-end.  DAG
    workloads that are gate-level by construction (``fig2``, ``and9``, the
    Table I rows, ``.bench`` files) resolve to their network; word-level
    SLP workloads (``hadamard``, ``kummer-*``, ``edwards-add``) and DAG-JSON
    files have no gate-level semantics and resolve to ``None`` — the
    pipeline then compiles structurally and skips verification.

    The returned network is always the one whose ``to_dag()`` (restricted
    to the output cones, where :func:`load_workload` does the same sweep)
    produced the DAG of ``load_workload_or_path(spec, scale=scale)``.
    """
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    path = Path(spec)
    if path.suffix == ".bench" and path.exists():
        from repro.logic.bench import network_from_bench

        return network_from_bench(path)
    if path.suffix == ".json" and path.exists():
        return None
    key = spec.lower()
    if key == "fig2":
        return example_network()
    if key == "and9":
        return and_tree_network(9)
    for row in TABLE1_ROWS:
        if row.name == key:
            if row.kind == "hadamard":
                bits, modulus = _scaled_hadamard_parameters(row, scale)
                return hadamard_gate_level_network(bits, modulus)
            return iscas_like_network(key, scale=scale)
    if key in ISCAS_PROFILES:
        return iscas_like_network(key, scale=scale)
    return None


def list_network_workloads() -> list[str]:
    """Workload names for which :func:`load_workload_network` has a network."""
    names = ["fig2", "and9"]
    names.extend(row.name for row in TABLE1_ROWS)
    return names


def _iscas_dag(name: str, scale: float) -> Dag:
    """ISCAS stand-in as a pebbling DAG, with dangling logic swept away.

    Real netlists contain no dangling gates; the synthetic generator can
    leave a few, so the DAG is restricted to the cones of the primary
    outputs (the same sweep every synthesis tool performs).
    """
    dag = iscas_like_network(name, scale=scale).to_dag()
    return dag.cone(dag.outputs())
