"""A tiny DPLL solver used as a reference implementation.

The CDCL solver in :mod:`repro.sat.solver` is the production engine.  This
module provides a deliberately simple, obviously-correct Davis–Putnam–
Logemann–Loveland solver.  The property-based tests solve the same random
formulas with both engines and require the SAT/UNSAT verdicts to agree,
which is by far the most effective way of catching propagation or conflict-
analysis bugs in the fast solver.

It is exponential-time and recursion-free (explicit stack) and should only
be used on formulas with at most a few dozen variables.
"""

from __future__ import annotations

import time
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.sat.cnf import Cnf
from repro.sat.solver import SolveResult, SolverStats, Status


class _Deadline(Exception):
    """Internal: the optional time budget of a solve call expired."""


class DpllSolver:
    """A straightforward DPLL solver with unit propagation.

    Only intended for small formulas (test oracle); the interface mirrors a
    subset of :class:`~repro.sat.solver.CdclSolver`.
    """

    def __init__(self, cnf: Cnf | None = None, *, max_variables: int = 64):
        self._clauses: list[list[int]] = []
        self._num_vars = 0
        self._max_variables = max_variables
        if cnf is not None:
            self.add_cnf(cnf)

    @property
    def num_variables(self) -> int:
        """Highest variable index seen so far."""
        return self._num_vars

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of ``cnf``."""
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add one clause given as DIMACS literals."""
        clause = sorted(set(literals))
        for literal in clause:
            if literal == 0:
                raise SolverError("literal 0 is invalid")
            self._num_vars = max(self._num_vars, abs(literal))
        if self._num_vars > self._max_variables:
            raise SolverError(
                f"DpllSolver is a test oracle limited to {self._max_variables} variables"
            )
        if any(-literal in clause for literal in clause):
            return
        self._clauses.append(clause)

    def solve(
        self, assumptions: Sequence[int] = (), *, time_limit: float | None = None
    ) -> SolveResult:
        """Solve by exhaustive DPLL search.

        Conclusive unless ``time_limit`` (seconds) is given and expires,
        in which case the result status is :attr:`Status.UNKNOWN` — the
        budget lets the backend protocol race this exponential oracle
        against engines that would otherwise wait on it forever.
        """
        stats = SolverStats()
        assignment: dict[int, bool] = {}
        clauses = [list(clause) for clause in self._clauses]
        for literal in assumptions:
            clauses.append([literal])
        deadline = None if time_limit is None else time.monotonic() + time_limit
        try:
            result = self._search(clauses, assignment, stats, deadline)
        except _Deadline:
            return SolveResult(Status.UNKNOWN, None, stats)
        if result is None:
            return SolveResult(Status.UNSATISFIABLE, None, stats)
        model = {
            variable: result.get(variable, False)
            for variable in range(1, self._num_vars + 1)
        }
        return SolveResult(Status.SATISFIABLE, model, stats)

    def _search(
        self,
        clauses: list[list[int]],
        assignment: dict[int, bool],
        stats: SolverStats,
        deadline: float | None = None,
    ) -> dict[int, bool] | None:
        if deadline is not None and time.monotonic() > deadline:
            raise _Deadline
        clauses, assignment, consistent = self._propagate(clauses, dict(assignment), stats)
        if not consistent:
            return None
        if not clauses:
            return assignment
        variable = abs(clauses[0][0])
        for value in (True, False):
            stats.decisions += 1
            extended = dict(assignment)
            extended[variable] = value
            literal = variable if value else -variable
            reduced = self._reduce(clauses, literal)
            if reduced is None:
                continue
            result = self._search(reduced, extended, stats, deadline)
            if result is not None:
                return result
        return None

    @staticmethod
    def _reduce(clauses: list[list[int]], literal: int) -> list[list[int]] | None:
        reduced: list[list[int]] = []
        for clause in clauses:
            if literal in clause:
                continue
            if -literal in clause:
                shrunk = [other for other in clause if other != -literal]
                if not shrunk:
                    return None
                reduced.append(shrunk)
            else:
                reduced.append(clause)
        return reduced

    def _propagate(
        self,
        clauses: list[list[int]],
        assignment: dict[int, bool],
        stats: SolverStats,
    ) -> tuple[list[list[int]], dict[int, bool], bool]:
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                if len(clause) == 1:
                    literal = clause[0]
                    assignment[abs(literal)] = literal > 0
                    stats.propagations += 1
                    reduced = self._reduce(clauses, literal)
                    if reduced is None:
                        return clauses, assignment, False
                    clauses = reduced
                    changed = True
                    break
        return clauses, assignment, True
