"""Cardinality-constraint encodings.

The pebbling encoding needs, for every time step ``i``, the constraint

.. math::  \\sum_{v \\in V} p_{v,i} \\le P

i.e. an *at-most-k* constraint over the pebble variables of that step.  Z3
handles such pseudo-Boolean constraints natively; a plain CNF SAT solver
needs them compiled to clauses.  This module implements the classic
encodings and lets the pebbling encoder (and the ablation benchmark) choose
among them:

``pairwise``
    The naive binomial encoding.  No auxiliary variables, but
    :math:`\\binom{n}{k+1}` clauses — only usable for tiny ``k`` or ``n``.

``sequential``
    Sinz's sequential-counter encoding (LTSeq).  ``O(n k)`` auxiliary
    variables and clauses, supports incremental strengthening and is the
    default used by the pebbling encoder.

``totalizer``
    Bailleux–Boufkhad totalizer.  ``O(n \\log n)`` variables, ``O(n k)``
    clauses, good unit-propagation behaviour.

The weighted pebbling game (Section V of the paper) needs the
pseudo-Boolean generalisation

.. math::  \\sum_{v \\in V} w_v \\, p_{v,i} \\le W

which :func:`at_most_k_weighted` compiles with a *generalised* sequential
counter whose registers count accumulated weight instead of cardinality.
With all weights equal to one it degenerates (by delegation) to the plain
:func:`at_most_k` encodings, so the weighted and unweighted pebbling
encoders emit byte-identical CNF on unit-weight DAGs.

All functions append clauses to a caller-provided :class:`~repro.sat.cnf.Cnf`
and work on DIMACS literals (so they can constrain negated variables too).
"""

from __future__ import annotations

from enum import Enum
from itertools import combinations
from typing import Sequence

from repro.errors import CnfError
from repro.sat.cnf import Cnf
from repro.sat.literals import check_literal


class CardinalityEncoding(Enum):
    """Which at-most-k compilation strategy to use."""

    PAIRWISE = "pairwise"
    SEQUENTIAL = "sequential"
    TOTALIZER = "totalizer"

    @classmethod
    def from_name(cls, name: "str | CardinalityEncoding") -> "CardinalityEncoding":
        """Accept either an enum member or its string value."""
        if isinstance(name, cls):
            return name
        try:
            return cls(name)
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise CnfError(f"unknown cardinality encoding {name!r} (valid: {valid})") from exc


def at_most_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """Add clauses stating that at most one of ``literals`` is true."""
    at_most_k(cnf, literals, 1, encoding=CardinalityEncoding.PAIRWISE)


def exactly_one(cnf: Cnf, literals: Sequence[int]) -> None:
    """Add clauses stating that exactly one of ``literals`` is true."""
    if not literals:
        raise CnfError("exactly_one over an empty literal list is unsatisfiable")
    cnf.add_clause(list(literals))
    at_most_one(cnf, literals)


def at_least_k(cnf: Cnf, literals: Sequence[int], bound: int) -> None:
    """Add clauses stating that at least ``bound`` of ``literals`` are true.

    Encoded as *at most* ``n - bound`` of the negated literals.
    """
    literals = [check_literal(literal) for literal in literals]
    if bound <= 0:
        return
    if bound > len(literals):
        cnf.add_clause([])  # unsatisfiable
        return
    at_most_k(cnf, [-literal for literal in literals], len(literals) - bound)


def exactly_k(
    cnf: Cnf,
    literals: Sequence[int],
    bound: int,
    *,
    encoding: "str | CardinalityEncoding" = CardinalityEncoding.SEQUENTIAL,
) -> None:
    """Add clauses stating that exactly ``bound`` of ``literals`` are true."""
    at_most_k(cnf, literals, bound, encoding=encoding)
    at_least_k(cnf, literals, bound)


def at_most_k(
    cnf: Cnf,
    literals: Sequence[int],
    bound: int,
    *,
    encoding: "str | CardinalityEncoding" = CardinalityEncoding.SEQUENTIAL,
    name_prefix: str | None = None,
) -> None:
    """Add clauses stating that at most ``bound`` of ``literals`` are true.

    ``name_prefix`` names every auxiliary variable deterministically
    (``<prefix>.r[i,j]`` for sequential-counter registers,
    ``<prefix>.t[lo:hi,j]`` for totalizer outputs).  Encoders that need
    structural CNF comparison up to variable renaming — the pebbling frame
    parity tests — rely on these names; leave it ``None`` for anonymous
    auxiliaries.
    """
    literals = [check_literal(literal) for literal in literals]
    if bound < 0:
        cnf.add_clause([])  # nothing can satisfy a negative bound
        return
    if bound == 0:
        for literal in literals:
            cnf.add_unit(-literal)
        return
    if bound >= len(literals):
        return  # trivially satisfied
    strategy = CardinalityEncoding.from_name(encoding)
    if strategy is CardinalityEncoding.PAIRWISE:
        _pairwise(cnf, literals, bound)
    elif strategy is CardinalityEncoding.SEQUENTIAL:
        _sequential_counter(cnf, literals, bound, name_prefix)
    else:
        _totalizer(cnf, literals, bound, name_prefix)


def _check_weights(literals: Sequence[int], weights: Sequence[float]) -> list[int]:
    """Validate a weight vector: one positive integer per literal."""
    if len(weights) != len(literals):
        raise CnfError(
            f"{len(literals)} literals but {len(weights)} weights; "
            "every literal needs exactly one weight"
        )
    checked: list[int] = []
    for weight in weights:
        value = int(weight)
        if value != weight or value < 1:
            raise CnfError(
                f"weight {weight!r} is not a positive integer; weighted "
                "cardinality constraints need integral weights >= 1"
            )
        checked.append(value)
    return checked


def at_most_k_weighted(
    cnf: Cnf,
    literals: Sequence[int],
    weights: Sequence[float],
    bound: int,
    *,
    encoding: "str | CardinalityEncoding" = CardinalityEncoding.SEQUENTIAL,
    name_prefix: str | None = None,
) -> None:
    """Add clauses stating :math:`\\sum_i w_i \\cdot [l_i] \\le bound`.

    ``weights`` must be positive integers (integral floats are accepted),
    one per literal.  When every weight is 1 the call delegates to
    :func:`at_most_k` with the chosen ``encoding``, so the weighted entry
    point is a strict generalisation of the unweighted one; with non-unit
    weights the constraint is compiled with a generalised sequential
    counter (registers track accumulated weight, ``O(n \\cdot bound)``
    auxiliary variables and clauses).

    ``name_prefix`` names the counter registers ``<prefix>.r[i,j]`` exactly
    like the unweighted sequential encoding, so frame-parity tests keep
    working in weighted mode.
    """
    literals = [check_literal(literal) for literal in literals]
    checked = _check_weights(literals, weights)
    if all(weight == 1 for weight in checked):
        at_most_k(cnf, literals, bound, encoding=encoding, name_prefix=name_prefix)
        return
    if bound < 0:
        cnf.add_clause([])  # nothing can satisfy a negative bound
        return
    # Literals too heavy for the whole budget can never be true.
    pairs: list[tuple[int, int]] = []
    for literal, weight in zip(literals, checked):
        if weight > bound:
            cnf.add_unit(-literal)
        else:
            pairs.append((literal, weight))
    if sum(weight for _, weight in pairs) <= bound:
        return  # trivially satisfied by the surviving literals
    _weighted_sequential_counter(cnf, pairs, bound, name_prefix)


def _weighted_sequential_counter(
    cnf: Cnf,
    pairs: Sequence[tuple[int, int]],
    bound: int,
    name_prefix: str | None = None,
) -> None:
    """Generalised sequential counter for pseudo-Boolean at-most-``bound``.

    ``registers[i][j]`` is true when the accumulated weight of the first
    ``i + 1`` literals is at least ``j + 1``.  Every weight in ``pairs`` is
    already known to be ``<= bound``.
    """
    count = len(pairs)
    registers = [
        [
            cnf.new_variable(
                None if name_prefix is None else f"{name_prefix}.r[{i},{j}]"
            )
            for j in range(bound)
        ]
        for i in range(count)
    ]
    first, first_weight = pairs[0]
    for j in range(first_weight):
        cnf.add_clause([-first, registers[0][j]])
    for j in range(first_weight, bound):
        cnf.add_unit(-registers[0][j])
    for i in range(1, count):
        literal, weight = pairs[i]
        previous = registers[i - 1]
        current = registers[i]
        for j in range(weight):
            cnf.add_clause([-literal, current[j]])
        for j in range(bound):
            cnf.add_clause([-previous[j], current[j]])
        for j in range(bound - weight):
            cnf.add_clause([-literal, -previous[j], current[j + weight]])
        # Overflow: accumulated weight already exceeds bound - weight, so
        # adding this literal would push the total past the bound.
        cnf.add_clause([-literal, -previous[bound - weight]])


# ---------------------------------------------------------------------------
# pairwise / binomial
# ---------------------------------------------------------------------------
def _pairwise(cnf: Cnf, literals: Sequence[int], bound: int) -> None:
    # Guard against clause-count explosions: the binomial encoding emits
    # C(n, k+1) clauses which is only reasonable for small instances.
    import math

    clause_count = math.comb(len(literals), bound + 1)
    if clause_count > 2_000_000:
        raise CnfError(
            f"pairwise at-most-{bound} over {len(literals)} literals would emit "
            f"{clause_count} clauses; use the sequential or totalizer encoding"
        )
    for subset in combinations(literals, bound + 1):
        cnf.add_clause([-literal for literal in subset])


# ---------------------------------------------------------------------------
# sequential counter (Sinz 2005)
# ---------------------------------------------------------------------------
def _sequential_counter(
    cnf: Cnf, literals: Sequence[int], bound: int, name_prefix: str | None = None
) -> None:
    count = len(literals)
    # registers[i][j] is true when at least j+1 of the first i+1 literals
    # are true.
    registers = [
        [
            cnf.new_variable(
                None if name_prefix is None else f"{name_prefix}.r[{i},{j}]"
            )
            for j in range(bound)
        ]
        for i in range(count)
    ]
    first = literals[0]
    cnf.add_clause([-first, registers[0][0]])
    for j in range(1, bound):
        cnf.add_unit(-registers[0][j])
    for i in range(1, count):
        literal = literals[i]
        cnf.add_clause([-literal, registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, bound):
            cnf.add_clause([-literal, -registers[i - 1][j - 1], registers[i][j]])
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literal, -registers[i - 1][bound - 1]])


# ---------------------------------------------------------------------------
# totalizer (Bailleux & Boufkhad 2003)
# ---------------------------------------------------------------------------
def _totalizer(
    cnf: Cnf, literals: Sequence[int], bound: int, name_prefix: str | None = None
) -> None:
    output = _totalizer_tree(cnf, list(literals), bound, 0, len(literals), name_prefix)
    # Forbid the (bound+1)-th output from being true.
    if len(output) > bound:
        cnf.add_unit(-output[bound])


def _totalizer_tree(
    cnf: Cnf,
    literals: list[int],
    bound: int,
    lo: int,
    hi: int,
    name_prefix: str | None = None,
) -> list[int]:
    """Build a totalizer over ``literals[lo:hi]``; return its sorted outputs.

    Outputs are truncated at ``bound + 1`` since larger counts are never
    distinguished by an at-most-``bound`` constraint.  ``lo``/``hi`` index
    into the original literal list so auxiliary names stay stable per
    subtree.
    """
    if hi - lo == 1:
        return [literals[lo]]
    middle = lo + (hi - lo) // 2
    left = _totalizer_tree(cnf, literals, bound, lo, middle, name_prefix)
    right = _totalizer_tree(cnf, literals, bound, middle, hi, name_prefix)
    width = min(len(left) + len(right), bound + 1)
    output = [
        cnf.new_variable(
            None if name_prefix is None else f"{name_prefix}.t[{lo}:{hi},{j}]"
        )
        for j in range(width)
    ]
    # sum semantics: output[k] is true when at least k+1 inputs are true.
    for alpha in range(len(left) + 1):
        for beta in range(len(right) + 1):
            sigma = alpha + beta
            if sigma == 0 or sigma > width:
                continue
            clause: list[int] = []
            if alpha > 0:
                clause.append(-left[alpha - 1])
            if beta > 0:
                clause.append(-right[beta - 1])
            clause.append(output[sigma - 1])
            cnf.add_clause(clause)
    return output


def count_true(model: dict[int, bool], literals: Sequence[int]) -> int:
    """Count how many of ``literals`` are satisfied by ``model``.

    Helper shared by tests and by the pebbling strategy extractor to verify
    cardinality constraints on returned models.
    """
    total = 0
    for literal in literals:
        variable = abs(literal)
        value = model.get(variable, False)
        if value == (literal > 0):
            total += 1
    return total


def weighted_sum_true(
    model: dict[int, bool], literals: Sequence[int], weights: Sequence[float]
) -> int:
    """Total weight of the ``literals`` satisfied by ``model``.

    Weighted counterpart of :func:`count_true`, shared by the weighted
    cardinality tests and the weighted pebbling strategy checks.
    """
    checked = _check_weights(list(literals), weights)
    total = 0
    for literal, weight in zip(literals, checked):
        variable = abs(literal)
        value = model.get(variable, False)
        if value == (literal > 0):
            total += weight
    return total
