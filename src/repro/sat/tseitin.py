"""Boolean expressions and their Tseitin transformation to CNF.

The pebbling encoding is written directly in clauses, but the logic-network
substrate (``repro.logic``) needs to convert arbitrary gate-level formulas
(AND/OR/XOR/MAJ/NOT over named inputs) into CNF — for example when checking
the functional equivalence of a synthesised reversible circuit against its
specification.  This module provides a small expression IR plus the
standard Tseitin encoding, which introduces one auxiliary variable per gate
and a constant number of clauses per gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import CnfError
from repro.sat.cnf import Cnf


@dataclass(frozen=True)
class BoolExpr:
    """A node of a Boolean expression tree.

    ``kind`` is one of ``"var"``, ``"const"``, ``"not"``, ``"and"``,
    ``"or"``, ``"xor"``, ``"maj"``.  Use the module-level constructors
    (:func:`var`, :func:`and_`, ...) rather than building nodes by hand.
    """

    kind: str
    children: tuple["BoolExpr", ...] = ()
    name: str | None = None
    value: bool | None = None

    def __post_init__(self) -> None:
        valid = {"var", "const", "not", "and", "or", "xor", "maj"}
        if self.kind not in valid:
            raise CnfError(f"unknown expression kind {self.kind!r}")
        if self.kind == "var" and not self.name:
            raise CnfError("variable expressions need a name")
        if self.kind == "const" and self.value is None:
            raise CnfError("constant expressions need a value")
        if self.kind == "not" and len(self.children) != 1:
            raise CnfError("not takes exactly one child")
        if self.kind == "maj" and len(self.children) != 3:
            raise CnfError("maj takes exactly three children")
        if self.kind in {"and", "or", "xor"} and len(self.children) < 1:
            raise CnfError(f"{self.kind} needs at least one child")

    # -- evaluation ----------------------------------------------------
    def evaluate(self, env: Mapping[str, bool]) -> bool:
        """Evaluate the expression under a ``{name: bool}`` environment."""
        if self.kind == "var":
            assert self.name is not None
            if self.name not in env:
                raise CnfError(f"environment is missing variable {self.name!r}")
            return bool(env[self.name])
        if self.kind == "const":
            return bool(self.value)
        values = [child.evaluate(env) for child in self.children]
        if self.kind == "not":
            return not values[0]
        if self.kind == "and":
            return all(values)
        if self.kind == "or":
            return any(values)
        if self.kind == "xor":
            result = False
            for value in values:
                result ^= value
            return result
        # maj
        return sum(values) >= 2

    def variables(self) -> set[str]:
        """Return the names of all input variables of the expression."""
        if self.kind == "var":
            assert self.name is not None
            return {self.name}
        names: set[str] = set()
        for child in self.children:
            names |= child.variables()
        return names


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------
def var(name: str) -> BoolExpr:
    """An input variable."""
    return BoolExpr("var", name=name)


def const(value: bool) -> BoolExpr:
    """A Boolean constant."""
    return BoolExpr("const", value=bool(value))


def not_(child: BoolExpr) -> BoolExpr:
    """Logical negation."""
    return BoolExpr("not", (child,))


def and_(*children: BoolExpr) -> BoolExpr:
    """Logical conjunction of one or more children."""
    return BoolExpr("and", tuple(children))


def or_(*children: BoolExpr) -> BoolExpr:
    """Logical disjunction of one or more children."""
    return BoolExpr("or", tuple(children))


def xor_(*children: BoolExpr) -> BoolExpr:
    """Logical exclusive-or of one or more children."""
    return BoolExpr("xor", tuple(children))


def maj(a: BoolExpr, b: BoolExpr, c: BoolExpr) -> BoolExpr:
    """Three-input majority."""
    return BoolExpr("maj", (a, b, c))


def implies(antecedent: BoolExpr, consequent: BoolExpr) -> BoolExpr:
    """``antecedent -> consequent``."""
    return or_(not_(antecedent), consequent)


def iff(left: BoolExpr, right: BoolExpr) -> BoolExpr:
    """``left <-> right``."""
    return not_(xor_(left, right))


# ---------------------------------------------------------------------------
# Tseitin encoding
# ---------------------------------------------------------------------------
class TseitinEncoder:
    """Encodes :class:`BoolExpr` trees into a shared :class:`Cnf`.

    Every named input variable gets (and keeps) one CNF variable; every
    internal gate gets a fresh auxiliary variable constrained to equal the
    gate's function of its children.  :meth:`assert_true` adds a unit clause
    forcing an expression to hold.
    """

    def __init__(self, cnf: Cnf | None = None):
        self.cnf = cnf if cnf is not None else Cnf()
        self._input_literals: dict[str, int] = {}

    def input_literal(self, name: str) -> int:
        """Return (allocating if needed) the CNF variable of input ``name``."""
        if name not in self._input_literals:
            self._input_literals[name] = self.cnf.new_variable(name)
        return self._input_literals[name]

    @property
    def inputs(self) -> dict[str, int]:
        """Mapping from input name to CNF variable."""
        return dict(self._input_literals)

    def encode(self, expression: BoolExpr) -> int:
        """Encode ``expression`` and return a literal equivalent to it."""
        if expression.kind == "var":
            assert expression.name is not None
            return self.input_literal(expression.name)
        if expression.kind == "const":
            literal = self.cnf.new_variable()
            self.cnf.add_unit(literal if expression.value else -literal)
            return literal
        if expression.kind == "not":
            return -self.encode(expression.children[0])
        child_literals = [self.encode(child) for child in expression.children]
        output = self.cnf.new_variable()
        if expression.kind == "and":
            self._encode_and(output, child_literals)
        elif expression.kind == "or":
            self._encode_and(-output, [-literal for literal in child_literals])
        elif expression.kind == "xor":
            self._encode_xor(output, child_literals)
        else:  # maj
            self._encode_maj(output, child_literals)
        return output

    def assert_true(self, expression: BoolExpr) -> int:
        """Encode ``expression`` and force it to be true; return its literal."""
        literal = self.encode(expression)
        self.cnf.add_unit(literal)
        return literal

    def assert_false(self, expression: BoolExpr) -> int:
        """Encode ``expression`` and force it to be false; return its literal."""
        literal = self.encode(expression)
        self.cnf.add_unit(-literal)
        return literal

    # -- gate encodings -------------------------------------------------
    def _encode_and(self, output: int, children: Sequence[int]) -> None:
        # output -> child_i  and  (all children) -> output
        for child in children:
            self.cnf.add_clause([-output, child])
        self.cnf.add_clause([output] + [-child for child in children])

    def _encode_xor(self, output: int, children: Sequence[int]) -> None:
        if len(children) == 1:
            self.cnf.add_equivalence(output, children[0])
            return
        current = children[0]
        for index in range(1, len(children)):
            target = output if index == len(children) - 1 else self.cnf.new_variable()
            self._encode_xor2(target, current, children[index])
            current = target

    def _encode_xor2(self, output: int, a: int, b: int) -> None:
        self.cnf.add_clause([-output, a, b])
        self.cnf.add_clause([-output, -a, -b])
        self.cnf.add_clause([output, -a, b])
        self.cnf.add_clause([output, a, -b])

    def _encode_maj(self, output: int, children: Sequence[int]) -> None:
        a, b, c = children
        # output is true iff at least two of a, b, c are true.
        self.cnf.add_clause([-output, a, b])
        self.cnf.add_clause([-output, a, c])
        self.cnf.add_clause([-output, b, c])
        self.cnf.add_clause([output, -a, -b])
        self.cnf.add_clause([output, -a, -c])
        self.cnf.add_clause([output, -b, -c])
