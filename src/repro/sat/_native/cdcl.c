/* cdcl.c — native CDCL core behind the ctypes escape hatch.
 *
 * A deliberately compact MiniSat-style solver covering exactly the
 * IncrementalSatBackend surface the pebbling search needs: incremental
 * clause addition, per-call assumptions with conflict-analysis cores,
 * conflict/time budgets, and the usual counters.  It trades the Python
 * engine's inprocessing machinery (BVE, vivification, LBD management)
 * for a raw propagate loop: two watched literals with blockers, VSIDS,
 * phase saving, Luby restarts, first-UIP learning and activity-ranked
 * clause-database reduction.
 *
 * Literals cross the ABI in DIMACS convention (nonzero int32, sign =
 * polarity); internally they are encoded as 2*var + (negative ? 1 : 0)
 * with 0-based variables, mirroring the Python solver's layout.
 *
 * The library is built on demand by repro.sat.native with
 * `cc -O2 -shared -fPIC`; keep this file free of non-libc dependencies.
 */

#define _POSIX_C_SOURCE 199309L /* clock_gettime under -std=c11 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

#define LIT_UNDEF (-1)
#define VALUE_TRUE 1
#define VALUE_FALSE (-1)
#define VALUE_UNDEF 0

#define RESULT_SAT 1
#define RESULT_UNSAT (-1)
#define RESULT_UNKNOWN 0

typedef struct Clause {
    double activity;
    int32_t size;
    int32_t learnt;
    int32_t lits[];
} Clause;

typedef struct Watcher {
    Clause *clause;
    int32_t blocker;
} Watcher;

typedef struct WatchList {
    Watcher *data;
    int32_t size;
    int32_t capacity;
} WatchList;

typedef struct Solver {
    int32_t num_vars;
    int32_t capacity;          /* allocated variable slots */
    int32_t ok;                /* 0 once the formula is root-contradictory */

    int8_t *assigns;           /* per var: VALUE_* */
    int8_t *phase;             /* saved polarity: 1 = last true */
    int8_t *seen;              /* analyze scratch */
    int32_t *level;            /* per var decision level */
    Clause **reason;           /* per var reason clause (NULL = decision) */
    double *activity;          /* per var VSIDS score */
    int32_t *heap;             /* order heap of variable indices */
    int32_t *heap_pos;         /* var -> heap index, -1 when absent */
    int32_t heap_size;

    WatchList *watches;        /* per literal (2 * capacity) */
    int32_t *trail;            /* assigned literals in order */
    int32_t trail_size;
    int32_t *trail_lim;        /* per decision level: trail offset */
    int32_t num_levels;
    int32_t qhead;

    Clause **clauses;          /* problem clauses */
    int32_t num_clauses, cap_clauses;
    Clause **learnts;          /* learned clauses */
    int32_t num_learnts, cap_learnts;
    double max_learnts;

    double var_inc, var_decay;
    double cla_inc, cla_decay;
    int64_t restart_base;
    uint32_t rng;

    int32_t *analyze_buf;      /* learned-clause scratch (capacity vars) */
    int32_t *conflict;         /* failed-assumption core (internal lits) */
    int32_t conflict_size;

    /* counters */
    int64_t decisions, propagations, conflicts, restarts;
    int64_t learned_clauses, deleted_clauses, max_decision_level;
} Solver;

/* -- small utilities ---------------------------------------------------- */

static int32_t lit_var(int32_t lit) { return lit >> 1; }
static int32_t lit_neg(int32_t lit) { return lit ^ 1; }

static int32_t encode(int32_t dimacs) {
    int32_t var = (dimacs > 0 ? dimacs : -dimacs) - 1;
    return 2 * var + (dimacs < 0);
}

static int32_t decode(int32_t lit) {
    int32_t var = lit_var(lit) + 1;
    return (lit & 1) ? -var : var;
}

static int8_t lit_value(const Solver *s, int32_t lit) {
    int8_t v = s->assigns[lit_var(lit)];
    return (lit & 1) ? (int8_t)(-v) : v;
}

static double now_seconds(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

static void watch_push(WatchList *list, Watcher watcher) {
    if (list->size == list->capacity) {
        list->capacity = list->capacity ? list->capacity * 2 : 4;
        list->data = realloc(list->data, (size_t)list->capacity * sizeof(Watcher));
    }
    list->data[list->size++] = watcher;
}

/* -- variable order heap (max-heap on activity) ------------------------- */

static int heap_less(const Solver *s, int32_t a, int32_t b) {
    return s->activity[a] > s->activity[b];
}

static void heap_up(Solver *s, int32_t index) {
    int32_t var = s->heap[index];
    while (index > 0) {
        int32_t parent = (index - 1) >> 1;
        if (!heap_less(s, var, s->heap[parent]))
            break;
        s->heap[index] = s->heap[parent];
        s->heap_pos[s->heap[index]] = index;
        index = parent;
    }
    s->heap[index] = var;
    s->heap_pos[var] = index;
}

static void heap_down(Solver *s, int32_t index) {
    int32_t var = s->heap[index];
    for (;;) {
        int32_t child = 2 * index + 1;
        if (child >= s->heap_size)
            break;
        if (child + 1 < s->heap_size &&
            heap_less(s, s->heap[child + 1], s->heap[child]))
            child++;
        if (!heap_less(s, s->heap[child], var))
            break;
        s->heap[index] = s->heap[child];
        s->heap_pos[s->heap[index]] = index;
        index = child;
    }
    s->heap[index] = var;
    s->heap_pos[var] = index;
}

static void heap_insert(Solver *s, int32_t var) {
    if (s->heap_pos[var] >= 0)
        return;
    s->heap[s->heap_size] = var;
    s->heap_pos[var] = s->heap_size;
    s->heap_size++;
    heap_up(s, s->heap_size - 1);
}

static int32_t heap_pop(Solver *s) {
    int32_t top = s->heap[0];
    s->heap_pos[top] = -1;
    s->heap_size--;
    if (s->heap_size > 0) {
        s->heap[0] = s->heap[s->heap_size];
        s->heap_pos[s->heap[0]] = 0;
        heap_down(s, 0);
    }
    return top;
}

/* -- growth ------------------------------------------------------------- */

static void ensure_vars(Solver *s, int32_t num_vars) {
    if (num_vars <= s->num_vars)
        return;
    if (num_vars > s->capacity) {
        int32_t cap = s->capacity ? s->capacity : 16;
        while (cap < num_vars)
            cap *= 2;
        s->assigns = realloc(s->assigns, (size_t)cap);
        s->phase = realloc(s->phase, (size_t)cap);
        s->seen = realloc(s->seen, (size_t)cap);
        s->level = realloc(s->level, (size_t)cap * sizeof(int32_t));
        s->reason = realloc(s->reason, (size_t)cap * sizeof(Clause *));
        s->activity = realloc(s->activity, (size_t)cap * sizeof(double));
        s->heap = realloc(s->heap, (size_t)cap * sizeof(int32_t));
        s->heap_pos = realloc(s->heap_pos, (size_t)cap * sizeof(int32_t));
        s->trail = realloc(s->trail, (size_t)cap * sizeof(int32_t));
        s->trail_lim = realloc(s->trail_lim, (size_t)(2 * cap + 1) * sizeof(int32_t));
        s->analyze_buf = realloc(s->analyze_buf, (size_t)cap * sizeof(int32_t));
        s->conflict = realloc(s->conflict, (size_t)(cap + 1) * sizeof(int32_t));
        s->watches = realloc(s->watches, (size_t)cap * 2 * sizeof(WatchList));
        memset(s->watches + 2 * s->capacity, 0,
               (size_t)(cap - s->capacity) * 2 * sizeof(WatchList));
        s->capacity = cap;
    }
    for (int32_t var = s->num_vars; var < num_vars; var++) {
        s->assigns[var] = VALUE_UNDEF;
        s->phase[var] = 0;
        s->seen[var] = 0;
        s->level[var] = 0;
        s->reason[var] = NULL;
        s->activity[var] = 0.0;
        s->heap_pos[var] = -1;
    }
    int32_t old = s->num_vars;
    s->num_vars = num_vars;
    for (int32_t var = old; var < num_vars; var++)
        heap_insert(s, var);
}

/* -- assignment --------------------------------------------------------- */

static int enqueue(Solver *s, int32_t lit, Clause *reason) {
    int8_t value = lit_value(s, lit);
    if (value == VALUE_TRUE)
        return 1;
    if (value == VALUE_FALSE)
        return 0;
    int32_t var = lit_var(lit);
    s->assigns[var] = (lit & 1) ? VALUE_FALSE : VALUE_TRUE;
    s->level[var] = s->num_levels;
    s->reason[var] = reason;
    s->phase[var] = (lit & 1) ? 0 : 1;
    s->trail[s->trail_size++] = lit;
    return 1;
}

static void cancel_until(Solver *s, int32_t target_level) {
    if (s->num_levels <= target_level)
        return;
    int32_t bound = s->trail_lim[target_level];
    for (int32_t i = s->trail_size - 1; i >= bound; i--) {
        int32_t var = lit_var(s->trail[i]);
        s->assigns[var] = VALUE_UNDEF;
        s->reason[var] = NULL;
        heap_insert(s, var);
    }
    s->trail_size = bound;
    s->qhead = bound;
    s->num_levels = target_level;
}

/* -- propagation -------------------------------------------------------- */

static Clause *propagate(Solver *s) {
    Clause *conflict = NULL;
    while (s->qhead < s->trail_size) {
        int32_t p = s->trail[s->qhead++];
        s->propagations++;
        WatchList *list = &s->watches[p];
        Watcher *data = list->data;
        int32_t i = 0, j = 0, size = list->size;
        while (i < size) {
            Watcher w = data[i];
            if (lit_value(s, w.blocker) == VALUE_TRUE) {
                data[j++] = data[i++];
                continue;
            }
            Clause *c = w.clause;
            int32_t false_lit = lit_neg(p);
            if (c->lits[0] == false_lit) {
                c->lits[0] = c->lits[1];
                c->lits[1] = false_lit;
            }
            i++;
            int32_t first = c->lits[0];
            if (first != w.blocker && lit_value(s, first) == VALUE_TRUE) {
                data[j].clause = c;
                data[j].blocker = first;
                j++;
                continue;
            }
            int moved = 0;
            for (int32_t k = 2; k < c->size; k++) {
                if (lit_value(s, c->lits[k]) != VALUE_FALSE) {
                    c->lits[1] = c->lits[k];
                    c->lits[k] = false_lit;
                    Watcher nw = {c, first};
                    watch_push(&s->watches[lit_neg(c->lits[1])], nw);
                    /* watch_push may realloc OUR list when the clause is
                     * self-watching on p's companion; refresh the cursor. */
                    data = list->data;
                    moved = 1;
                    break;
                }
            }
            if (moved)
                continue;
            data[j].clause = c;
            data[j].blocker = first;
            j++;
            if (lit_value(s, first) == VALUE_FALSE) {
                conflict = c;
                s->qhead = s->trail_size;
                while (i < size)
                    data[j++] = data[i++];
            } else {
                enqueue(s, first, c);
            }
        }
        list->size = j;
    }
    return conflict;
}

/* -- activity ----------------------------------------------------------- */

static void var_bump(Solver *s, int32_t var) {
    s->activity[var] += s->var_inc;
    if (s->activity[var] > 1e100) {
        for (int32_t v = 0; v < s->num_vars; v++)
            s->activity[v] *= 1e-100;
        s->var_inc *= 1e-100;
    }
    if (s->heap_pos[var] >= 0)
        heap_up(s, s->heap_pos[var]);
}

static void cla_bump(Solver *s, Clause *c) {
    c->activity += s->cla_inc;
    if (c->activity > 1e20) {
        for (int32_t i = 0; i < s->num_learnts; i++)
            s->learnts[i]->activity *= 1e-20;
        s->cla_inc *= 1e-20;
    }
}

/* -- clause construction ------------------------------------------------ */

static Clause *clause_new(const int32_t *lits, int32_t size, int32_t learnt) {
    Clause *c = malloc(sizeof(Clause) + (size_t)size * sizeof(int32_t));
    c->activity = 0.0;
    c->size = size;
    c->learnt = learnt;
    memcpy(c->lits, lits, (size_t)size * sizeof(int32_t));
    return c;
}

static void attach(Solver *s, Clause *c) {
    Watcher w0 = {c, c->lits[1]};
    Watcher w1 = {c, c->lits[0]};
    watch_push(&s->watches[lit_neg(c->lits[0])], w0);
    watch_push(&s->watches[lit_neg(c->lits[1])], w1);
}

static void detach(Solver *s, Clause *c) {
    for (int32_t side = 0; side < 2; side++) {
        WatchList *list = &s->watches[lit_neg(c->lits[side])];
        for (int32_t i = 0; i < list->size; i++) {
            if (list->data[i].clause == c) {
                list->data[i] = list->data[--list->size];
                break;
            }
        }
    }
}

static void push_clause(Clause ***array, int32_t *size, int32_t *cap, Clause *c) {
    if (*size == *cap) {
        *cap = *cap ? *cap * 2 : 64;
        *array = realloc(*array, (size_t)*cap * sizeof(Clause *));
    }
    (*array)[(*size)++] = c;
}

/* -- conflict analysis (first UIP) -------------------------------------- */

static int32_t analyze(Solver *s, Clause *conflict, int32_t *out_size) {
    int32_t *learnt = s->analyze_buf;
    int32_t size = 1; /* slot 0 reserved for the asserting literal */
    int32_t counter = 0;
    int32_t p = LIT_UNDEF;
    int32_t index = s->trail_size - 1;

    do {
        if (conflict->learnt)
            cla_bump(s, conflict);
        int32_t start = (p == LIT_UNDEF) ? 0 : 1;
        for (int32_t i = start; i < conflict->size; i++) {
            int32_t q = conflict->lits[i];
            int32_t var = lit_var(q);
            if (!s->seen[var] && s->level[var] > 0) {
                s->seen[var] = 1;
                var_bump(s, var);
                if (s->level[var] >= s->num_levels)
                    counter++;
                else
                    learnt[size++] = q;
            }
        }
        while (!s->seen[lit_var(s->trail[index])])
            index--;
        p = s->trail[index--];
        s->seen[lit_var(p)] = 0;
        counter--;
        if (counter > 0)
            conflict = s->reason[lit_var(p)];
    } while (counter > 0);
    learnt[0] = lit_neg(p);

    int32_t backjump = 0;
    if (size > 1) {
        int32_t max_i = 1;
        for (int32_t i = 2; i < size; i++)
            if (s->level[lit_var(learnt[i])] > s->level[lit_var(learnt[max_i])])
                max_i = i;
        int32_t tmp = learnt[1];
        learnt[1] = learnt[max_i];
        learnt[max_i] = tmp;
        backjump = s->level[lit_var(learnt[1])];
    }
    for (int32_t i = 1; i < size; i++)
        s->seen[lit_var(learnt[i])] = 0;
    *out_size = size;
    return backjump;
}

/* Core of a failed assumption: walk the implication graph below the
 * false assumption and collect the assumption decisions it rests on. */
static void analyze_final(Solver *s, int32_t failed) {
    s->conflict_size = 0;
    s->conflict[s->conflict_size++] = failed;
    if (s->num_levels == 0)
        return;
    s->seen[lit_var(failed)] = 1;
    for (int32_t i = s->trail_size - 1; i >= s->trail_lim[0]; i--) {
        int32_t var = lit_var(s->trail[i]);
        if (!s->seen[var])
            continue;
        Clause *reason = s->reason[var];
        if (reason == NULL) {
            s->conflict[s->conflict_size++] = s->trail[i];
        } else {
            for (int32_t k = 1; k < reason->size; k++)
                if (s->level[lit_var(reason->lits[k])] > 0)
                    s->seen[lit_var(reason->lits[k])] = 1;
        }
        s->seen[var] = 0;
    }
    s->seen[lit_var(failed)] = 0;
}

/* -- learned-clause reduction ------------------------------------------- */

static int cmp_activity(const void *a, const void *b) {
    const Clause *x = *(Clause *const *)a;
    const Clause *y = *(Clause *const *)b;
    if (x->activity < y->activity)
        return -1;
    return x->activity > y->activity;
}

static void reduce_db(Solver *s) {
    qsort(s->learnts, (size_t)s->num_learnts, sizeof(Clause *), cmp_activity);
    double threshold = s->cla_inc / (s->num_learnts ? s->num_learnts : 1);
    int32_t j = 0;
    for (int32_t i = 0; i < s->num_learnts; i++) {
        Clause *c = s->learnts[i];
        int locked = s->reason[lit_var(c->lits[0])] == c &&
                     lit_value(s, c->lits[0]) == VALUE_TRUE;
        int keep = locked || c->size == 2 ||
                   (i >= s->num_learnts / 2 && c->activity >= threshold);
        if (keep) {
            s->learnts[j++] = c;
        } else {
            detach(s, c);
            free(c);
            s->deleted_clauses++;
        }
    }
    s->num_learnts = j;
}

/* -- restarts ----------------------------------------------------------- */

static int64_t luby(int64_t index) {
    int64_t size, seq;
    for (size = 1, seq = 0; size < index + 1; seq++, size = 2 * size + 1)
        ;
    while (size - 1 != index) {
        size = (size - 1) >> 1;
        seq--;
        index = index % size;
    }
    return (int64_t)1 << seq;
}

/* -- public ABI --------------------------------------------------------- */

void *cdcl_new(uint32_t seed, int64_t restart_base) {
    Solver *s = calloc(1, sizeof(Solver));
    s->ok = 1;
    s->var_inc = 1.0;
    s->var_decay = 1.0 / 0.95;
    s->cla_inc = 1.0;
    s->cla_decay = 1.0 / 0.999;
    s->restart_base = restart_base > 0 ? restart_base : 100;
    s->rng = seed ? seed : 0x9e3779b9u;
    s->max_learnts = 2000.0;
    return s;
}

void cdcl_free(void *handle) {
    Solver *s = handle;
    if (!s)
        return;
    for (int32_t i = 0; i < s->num_clauses; i++)
        free(s->clauses[i]);
    for (int32_t i = 0; i < s->num_learnts; i++)
        free(s->learnts[i]);
    for (int32_t i = 0; i < 2 * s->capacity; i++)
        free(s->watches[i].data);
    free(s->clauses);
    free(s->learnts);
    free(s->watches);
    free(s->assigns);
    free(s->phase);
    free(s->seen);
    free(s->level);
    free(s->reason);
    free(s->activity);
    free(s->heap);
    free(s->heap_pos);
    free(s->trail);
    free(s->trail_lim);
    free(s->analyze_buf);
    free(s->conflict);
    free(s);
}

int32_t cdcl_add_variable(void *handle) {
    Solver *s = handle;
    ensure_vars(s, s->num_vars + 1);
    return s->num_vars;
}

int32_t cdcl_num_variables(void *handle) {
    return ((Solver *)handle)->num_vars;
}

static int cmp_lit(const void *a, const void *b) {
    return *(const int32_t *)a - *(const int32_t *)b;
}

int32_t cdcl_add_clause(void *handle, const int32_t *dimacs, int32_t size) {
    Solver *s = handle;
    if (!s->ok)
        return 0;
    cancel_until(s, 0);
    int32_t max_var = 0;
    for (int32_t i = 0; i < size; i++) {
        int32_t var = dimacs[i] > 0 ? dimacs[i] : -dimacs[i];
        if (var > max_var)
            max_var = var;
    }
    ensure_vars(s, max_var);

    /* A clause can repeat literals, so its length is not bounded by the
     * variable count — use a private buffer, not the analyze scratch. */
    int32_t *lits = malloc((size_t)size * sizeof(int32_t));
    int32_t n = 0;
    for (int32_t i = 0; i < size; i++)
        lits[n++] = encode(dimacs[i]);
    qsort(lits, (size_t)n, sizeof(int32_t), cmp_lit);
    int32_t kept = 0;
    int32_t previous = LIT_UNDEF;
    for (int32_t i = 0; i < n; i++) {
        int32_t lit = lits[i];
        if (lit == previous)
            continue;
        if (previous != LIT_UNDEF && lit == lit_neg(previous)) {
            free(lits);
            return 1; /* tautology */
        }
        int8_t value = lit_value(s, lit);
        if (value == VALUE_TRUE) {
            free(lits);
            return 1; /* satisfied at root */
        }
        if (value != VALUE_FALSE)
            lits[kept++] = lit;
        previous = lit;
    }
    if (kept == 0) {
        s->ok = 0;
        free(lits);
        return 0;
    }
    if (kept == 1) {
        if (!enqueue(s, lits[0], NULL) || propagate(s) != NULL)
            s->ok = 0;
        free(lits);
        return s->ok;
    }
    Clause *c = clause_new(lits, kept, 0);
    free(lits);
    push_clause(&s->clauses, &s->num_clauses, &s->cap_clauses, c);
    attach(s, c);
    return 1;
}

int32_t cdcl_solve(void *handle, const int32_t *assumptions, int32_t num_assumptions,
                   int64_t conflict_limit, double time_limit) {
    Solver *s = handle;
    s->conflict_size = 0;
    if (!s->ok)
        return RESULT_UNSAT;
    cancel_until(s, 0);
    for (int32_t i = 0; i < num_assumptions; i++) {
        int32_t var = assumptions[i] > 0 ? assumptions[i] : -assumptions[i];
        ensure_vars(s, var);
    }
    /* Satisfied assumptions still open a (empty) decision level each, so
     * the level stack must hold one slot per assumption on top of the
     * one-per-variable worst case. */
    s->trail_lim = realloc(
        s->trail_lim,
        (size_t)(2 * s->capacity + num_assumptions + 1) * sizeof(int32_t));
    if (propagate(s) != NULL) {
        s->ok = 0;
        return RESULT_UNSAT;
    }

    double deadline = time_limit > 0 ? now_seconds() + time_limit : -1.0;
    int64_t budget = conflict_limit > 0 ? s->conflicts + conflict_limit : -1;
    int64_t next_restart = s->conflicts + s->restart_base * luby(s->restarts);
    double learnt_cap = s->max_learnts;
    if (learnt_cap < (double)s->num_clauses / 3.0)
        learnt_cap = (double)s->num_clauses / 3.0;

    for (;;) {
        Clause *conflict = propagate(s);
        if (conflict != NULL) {
            s->conflicts++;
            if (s->num_levels == 0) {
                s->ok = 0;
                return RESULT_UNSAT;
            }
            int32_t learnt_size = 0;
            int32_t backjump = analyze(s, conflict, &learnt_size);
            cancel_until(s, backjump);
            int32_t *learnt = s->analyze_buf;
            if (learnt_size == 1) {
                enqueue(s, learnt[0], NULL);
            } else {
                Clause *c = clause_new(learnt, learnt_size, 1);
                push_clause(&s->learnts, &s->num_learnts, &s->cap_learnts, c);
                attach(s, c);
                cla_bump(s, c);
                enqueue(s, learnt[0], c);
            }
            s->learned_clauses++;
            s->var_inc *= s->var_decay;
            s->cla_inc *= s->cla_decay;
            if (budget >= 0 && s->conflicts >= budget)
                return RESULT_UNKNOWN;
            if ((s->conflicts & 255) == 0 && deadline > 0 &&
                now_seconds() > deadline)
                return RESULT_UNKNOWN;
            continue;
        }

        if (s->conflicts >= next_restart) {
            s->restarts++;
            next_restart = s->conflicts + s->restart_base * luby(s->restarts);
            cancel_until(s, 0);
            continue;
        }
        if (deadline > 0 && now_seconds() > deadline)
            return RESULT_UNKNOWN;
        if ((double)s->num_learnts >= learnt_cap + (double)s->trail_size) {
            reduce_db(s);
            learnt_cap *= 1.1;
            s->max_learnts = learnt_cap;
        }

        /* Re-walk the assumption prefix, then decide. */
        int32_t next = LIT_UNDEF;
        while (s->num_levels < num_assumptions) {
            int32_t lit = encode(assumptions[s->num_levels]);
            int8_t value = lit_value(s, lit);
            if (value == VALUE_TRUE) {
                s->trail_lim[s->num_levels++] = s->trail_size;
            } else if (value == VALUE_FALSE) {
                analyze_final(s, lit);
                return RESULT_UNSAT;
            } else {
                next = lit;
                break;
            }
        }
        if (next == LIT_UNDEF) {
            while (s->heap_size > 0) {
                int32_t var = s->heap[0];
                if (s->assigns[var] == VALUE_UNDEF && var < s->num_vars) {
                    next = 2 * var + (s->phase[var] ? 0 : 1);
                    break;
                }
                heap_pop(s);
            }
            if (next == LIT_UNDEF)
                return RESULT_SAT; /* all variables assigned */
            s->decisions++;
        }
        s->trail_lim[s->num_levels++] = s->trail_size;
        if (s->num_levels > s->max_decision_level)
            s->max_decision_level = s->num_levels;
        enqueue(s, next, NULL);
    }
}

int32_t cdcl_model_value(void *handle, int32_t variable) {
    Solver *s = handle;
    if (variable < 1 || variable > s->num_vars)
        return 0;
    return s->assigns[variable - 1] == VALUE_TRUE;
}

void cdcl_copy_model(void *handle, int8_t *out, int32_t num_vars) {
    Solver *s = handle;
    for (int32_t var = 0; var < num_vars; var++)
        out[var] = (var < s->num_vars && s->assigns[var] == VALUE_TRUE) ? 1 : 0;
}

int32_t cdcl_failed_size(void *handle) {
    return ((Solver *)handle)->conflict_size;
}

void cdcl_copy_failed(void *handle, int32_t *out) {
    Solver *s = handle;
    for (int32_t i = 0; i < s->conflict_size; i++)
        out[i] = decode(s->conflict[i]);
}

int64_t cdcl_counter(void *handle, int32_t which) {
    Solver *s = handle;
    switch (which) {
    case 0: return s->decisions;
    case 1: return s->propagations;
    case 2: return s->conflicts;
    case 3: return s->restarts;
    case 4: return s->learned_clauses;
    case 5: return s->deleted_clauses;
    case 6: return s->max_decision_level;
    default: return 0;
    }
}
