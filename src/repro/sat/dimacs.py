"""Reading and writing the DIMACS CNF exchange format.

The pebbling encoder can dump its CNF instances to DIMACS so they can be
inspected or solved with an external solver; the test-suite round-trips
formulas through this module.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.errors import CnfError
from repro.sat.cnf import Cnf


def write_dimacs(cnf: Cnf, destination: str | Path | TextIO) -> None:
    """Write ``cnf`` in DIMACS format to a path or text stream."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as stream:
            _write(cnf, stream)
    else:
        _write(cnf, destination)


def dimacs_string(cnf: Cnf) -> str:
    """Return the DIMACS serialisation of ``cnf`` as a string."""
    buffer = io.StringIO()
    _write(cnf, buffer)
    return buffer.getvalue()


def _write(cnf: Cnf, stream: TextIO) -> None:
    for comment in cnf.comments:
        stream.write(f"c {comment}\n")
    stream.write(f"p cnf {cnf.num_variables} {cnf.num_clauses}\n")
    for clause in cnf.clauses:
        stream.write(" ".join(str(literal) for literal in clause.literals))
        stream.write(" 0\n")


def parse_dimacs(source: str | Path | TextIO) -> Cnf:
    """Parse a DIMACS CNF file, path or already-opened stream.

    Strings containing a newline are interpreted as DIMACS *content*;
    other strings are treated as file paths.
    """
    if isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    elif isinstance(source, str):
        text = source if "\n" in source or source.startswith(("c", "p")) else Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    return _parse(text)


def _parse(text: str) -> Cnf:
    cnf = Cnf()
    declared_variables: int | None = None
    declared_clauses: int | None = None
    pending: list[int] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("c"):
            cnf.add_comment(line[1:].strip())
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise CnfError(f"line {line_number}: malformed problem line {line!r}")
            try:
                declared_variables = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise CnfError(f"line {line_number}: malformed problem line {line!r}") from exc
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError as exc:
                raise CnfError(f"line {line_number}: non-integer token {token!r}") from exc
            if literal == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(literal)
    if pending:
        # DIMACS allows a final clause without the trailing 0 in practice.
        cnf.add_clause(pending)
    if declared_variables is not None:
        cnf.pool.reserve_through(declared_variables)
    if declared_clauses is not None and declared_clauses != cnf.num_clauses:
        # Only warn via comment: many real-world files get the count wrong.
        cnf.add_comment(
            f"warning: header declared {declared_clauses} clauses, parsed {cnf.num_clauses}"
        )
    return cnf
