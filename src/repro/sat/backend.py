"""Pluggable incremental-SAT backends behind one narrow protocol.

The pebbling compiler is solver-agnostic: every search loop in
:mod:`repro.pebbling` only needs *incremental solving under assumptions*
plus, for the core-guided schedules, the subset of the assumptions an
UNSAT answer actually used.  :class:`IncrementalSatBackend` freezes that
surface, and a string-keyed registry maps picklable backend *specs* to
implementations so the whole stack (solver → portfolio workers → service →
CLI) can carry a backend across process boundaries as plain data:

``"cdcl[:key=value,...]"``
    The native :class:`~repro.sat.solver.CdclSolver` — the production
    engine, with real conflict-analysis assumption cores.  The optional
    argument tunes the search without code changes
    (``cdcl:restart_base=200,var_decay=0.95,seed=7``); see
    :class:`CdclSpec` for the accepted keys.

``"dpll"``
    The reference :class:`~repro.sat.solver.DpllSolver` wrapped as a
    debug/differential backend: deliberately simple, always conclusive,
    with deletion-minimised assumption cores.  Exponential — small
    instances only.

``"external"`` / ``"external:<command>"``
    Any minisat-style DIMACS binary driven through a tempfile: the
    accumulated clauses plus the assumptions (as units) are written as
    DIMACS CNF, the command is invoked as ``<command> <in.cnf> <out>``,
    and both minisat-style output files (``SAT``/``UNSAT`` + model line)
    and picosat-style stdout (``s SATISFIABLE`` / ``v ...`` lines) parse.
    Without an argument the command comes from the ``REPRO_SAT_EXTERNAL``
    environment variable; when no command is configured the backend
    reports itself unavailable instead of failing mid-search.

``"chaos[:seed,key=value,...]"``
    Deterministic fault injection around any *inner* backend, for
    exercising the retry/anytime machinery on demand:
    ``chaos:7,inner=cdcl,flaky=1,unknown=0.05,delay=0.001``.  Faults are
    drawn from a schedule seeded by ``(seed, scope, epoch, attempt,
    call index)``, so a failing run replays bit-identically — see
    :class:`ChaosSpec` and :func:`set_chaos_scope`.

Specs are validated and availability-probed *before* a search starts
(:func:`require_backend`), so a portfolio worker never silently falls
back to the default engine.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import shlex
import shutil
import subprocess
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.errors import ChaosInjectedError, SolverError
from repro.sat.cnf import Cnf
from repro.sat.dpll import DpllSolver
from repro.sat.solver import CdclSolver, SolveResult, SolverStats, Status

#: Spec used whenever a caller does not choose a backend explicitly.
DEFAULT_BACKEND = "cdcl"

#: Environment variable consulted by the argument-less ``external`` spec.
EXTERNAL_SOLVER_ENV = "REPRO_SAT_EXTERNAL"


class IncrementalSatBackend(ABC):
    """The solving surface the pebbling engine requires of any backend.

    The contract mirrors the subset of :class:`~repro.sat.solver.CdclSolver`
    the search loops use: clauses accumulate across :meth:`solve` calls
    (incrementality), assumptions are per-call unit hypotheses, and an
    UNSAT answer exposes :meth:`failed_assumptions` — a subset of the
    passed assumptions whose conjunction with the accumulated formula is
    unsatisfiable.  ``conflict_limit`` and ``time_limit`` are best-effort
    budgets: a backend that cannot honour one documents so and may return
    conclusive answers anyway (never the reverse).
    """

    #: Registry name (specs render as ``name`` or ``name:argument``).
    name: str = "abstract"

    @abstractmethod
    def add_variable(self) -> int:
        """Allocate a fresh variable and return its index."""

    @abstractmethod
    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; ``False`` when the formula became trivially unsat."""

    @abstractmethod
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        """Solve the accumulated formula under per-call assumptions."""

    @abstractmethod
    def failed_assumptions(self) -> list[int]:
        """Assumption core of the last UNSAT :meth:`solve` call.

        A subset of that call's assumptions whose conjunction with the
        formula is unsatisfiable (empty when the formula alone is).  Only
        defined after an UNSAT answer.
        """

    @property
    def num_variables(self) -> int:
        """Highest variable index known to the backend."""
        return 0

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of ``cnf`` (and reserve its variable range)."""
        while self.num_variables < cnf.num_variables:
            self.add_variable()
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def counters(self) -> dict[str, float]:
        """Counters of the last solve, trimmed to what this backend tracks.

        Backends report only the statistics they actually maintain, so the
        CLI's ``--stats`` line never pads missing CDCL counters with
        zeros-as-lies.
        """
        return {}


# The native solver satisfies the protocol structurally (it predates it);
# registering it as a virtual subclass makes isinstance checks hold without
# an import cycle between repro.sat.solver and this module.
IncrementalSatBackend.register(CdclSolver)


class DpllBackend(IncrementalSatBackend):
    """The reference DPLL solver behind the backend protocol.

    A debug/differential backend: obviously correct and conclusive within
    its budget (``time_limit`` is honoured cooperatively and answers
    UNKNOWN on expiry — essential for racing this exponential oracle;
    ``conflict_limit`` is ignored), usable on small instances.
    :meth:`failed_assumptions` is computed by deletion-based minimisation
    (one re-solve per assumption, the whole pass deadline-bounded), so its
    cores are subset-minimal whenever the probe budget suffices — always
    sound either way.  The test-suite cross-checks the CDCL cores against
    them.
    """

    name = "dpll"

    def __init__(
        self,
        cnf: Cnf | None = None,
        *,
        conflict_limit: int | None = None,  # noqa: ARG002 — protocol surface
        max_variables: int = 20000,
    ) -> None:
        self._solver = DpllSolver(max_variables=max_variables)
        self._declared = 0
        self._last_assumptions: list[int] | None = None
        self._last_stats: SolverStats | None = None
        self._last_status: Status | None = None
        self._last_seconds = 0.0
        self._last_time_limit: float | None = None
        if cnf is not None:
            self.add_cnf(cnf)

    @property
    def num_variables(self) -> int:
        return max(self._declared, self._solver.num_variables)

    def add_variable(self) -> int:
        self._declared = self.num_variables + 1
        return self._declared

    def add_clause(self, literals: Iterable[int]) -> bool:
        self._solver.add_clause(literals)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,  # noqa: ARG002 — not expressible
        time_limit: float | None = None,
    ) -> SolveResult:
        started = time.monotonic()
        result = self._solver.solve(assumptions, time_limit=time_limit)
        self._last_seconds = time.monotonic() - started
        self._last_time_limit = time_limit
        result.stats.solve_time = self._last_seconds
        self._last_assumptions = list(assumptions)
        self._last_stats = result.stats
        self._last_status = result.status
        return result

    def failed_assumptions(self) -> list[int]:
        if self._last_status is not Status.UNSATISFIABLE:
            raise SolverError(
                "failed_assumptions() is only defined after an UNSAT solve() call"
            )
        assert self._last_assumptions is not None
        # Deletion minimisation: drop each assumption whose removal keeps
        # the formula unsatisfiable.  The probe solves are side-effect
        # free, so the core stays answerable repeatedly.  Each probe is an
        # exponential re-solve, so the whole pass is bounded by a deadline
        # proportional to the original solve and clamped to that solve's
        # own time budget — dropping an assumption is an optimisation,
        # keeping it is always sound, and a caller's time budget must not
        # be blown by core *minimisation*.
        core = list(dict.fromkeys(self._last_assumptions))
        budget = max(0.1, 4.0 * self._last_seconds)
        if self._last_time_limit is not None:
            # Clamp to what the solve call left unspent, so solve + core
            # extraction together stay inside one per-call budget.
            budget = min(budget, max(0.0, self._last_time_limit - self._last_seconds))
        deadline = time.monotonic() + budget
        index = 0
        while index < len(core):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break  # return the sound, partially minimised remainder
            candidate = core[:index] + core[index + 1:]
            if self._solver.solve(candidate, time_limit=remaining).is_unsat:
                core = candidate
            else:
                # SAT, or UNKNOWN on probe timeout: keep the assumption.
                index += 1
        return core

    def counters(self) -> dict[str, float]:
        if self._last_stats is None:
            return {}
        return {
            "decisions": self._last_stats.decisions,
            "propagations": self._last_stats.propagations,
            "solve_time": self._last_stats.solve_time,
        }


def _parse_external_output(text: str, returncode: int) -> tuple[Status, list[int]]:
    """Parse a DIMACS solver's answer (output-file or stdout style).

    Understands minisat output files (``SAT``/``UNSAT``/``INDET`` plus a
    model line) and SAT-competition stdout (``s SATISFIABLE`` /
    ``v 1 -2 ... 0``); falls back to the conventional exit codes 10 (SAT)
    and 20 (UNSAT) when the text names no verdict.
    """
    verdict: Status | None = None
    model: list[int] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("s ") or line.startswith("S "):
            line = line[2:].strip()
        word = line.upper()
        if word in ("SAT", "SATISFIABLE"):
            verdict = Status.SATISFIABLE
            continue
        if word in ("UNSAT", "UNSATISFIABLE"):
            verdict = Status.UNSATISFIABLE
            continue
        if word in ("UNKNOWN", "INDET", "INDETERMINATE"):
            verdict = Status.UNKNOWN
            continue
        if line.startswith(("v ", "V ")):
            line = line[2:]
        try:
            literals = [int(token) for token in line.split()]
        except ValueError:
            continue  # some other diagnostic line
        model.extend(literal for literal in literals if literal != 0)
    if verdict is None:
        if returncode == 10:
            verdict = Status.SATISFIABLE
        elif returncode == 20:
            verdict = Status.UNSATISFIABLE
        else:
            raise SolverError(
                "external SAT solver produced no recognisable verdict "
                f"(exit code {returncode}); output started with: {text[:200]!r}"
            )
    return verdict, model


class ExternalDimacsBackend(IncrementalSatBackend):
    """A minisat-style external binary driven through tempfile DIMACS.

    Every :meth:`solve` writes the accumulated clauses plus the call's
    assumptions (as unit clauses) to a fresh DIMACS file and invokes
    ``<command> <in.cnf> <out>``.  The process-spawn-per-call overhead
    makes this backend interesting for *hard* instances (where a fast
    native binary amortises the spawn), for differential testing, and for
    the racing portfolio.

    ``conflict_limit`` is ignored; ``time_limit`` kills the subprocess and
    reports :attr:`~repro.sat.solver.Status.UNKNOWN`.
    :meth:`failed_assumptions` returns the *trivial* core — the full
    assumption list — which is sound (the formula plus all assumptions is
    indeed unsatisfiable) but never prunes: plain DIMACS solvers have no
    assumption interface to do better through.
    """

    name = "external"

    def __init__(
        self,
        command: str,
        *,
        conflict_limit: int | None = None,  # noqa: ARG002 — protocol surface
    ) -> None:
        if not command or not str(command).strip():
            raise SolverError(
                "the external backend needs a solver command: use "
                f"'external:<command>' or set ${EXTERNAL_SOLVER_ENV}"
            )
        self.command = str(command)
        self._argv = shlex.split(self.command)
        self._clauses: list[list[int]] = []
        self._num_vars = 0
        self._last_assumptions: list[int] | None = None
        self._last_status: Status | None = None
        self._last_seconds = 0.0

    @property
    def num_variables(self) -> int:
        return self._num_vars

    def add_variable(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> bool:
        clause: list[int] = []
        for literal in literals:
            if isinstance(literal, bool) or not isinstance(literal, int) or literal == 0:
                raise SolverError(f"invalid literal {literal!r}")
            clause.append(literal)
            if abs(literal) > self._num_vars:
                self._num_vars = abs(literal)
        self._clauses.append(clause)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,  # noqa: ARG002 — not expressible
        time_limit: float | None = None,
    ) -> SolveResult:
        started = time.monotonic()
        self._last_status = None
        self._last_seconds = 0.0
        self._last_assumptions = list(assumptions)
        for literal in assumptions:
            if abs(literal) > self._num_vars:
                self._num_vars = abs(literal)
        stats = SolverStats()
        with tempfile.TemporaryDirectory(prefix="repro-sat-") as workdir:
            in_path = Path(workdir) / "instance.cnf"
            out_path = Path(workdir) / "result.txt"
            lines = [f"p cnf {self._num_vars} {len(self._clauses) + len(assumptions)}"]
            lines.extend(
                " ".join(map(str, clause)) + " 0" for clause in self._clauses
            )
            lines.extend(f"{literal} 0" for literal in assumptions)
            in_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
            try:
                process = subprocess.run(
                    self._argv + [str(in_path), str(out_path)],
                    capture_output=True,
                    text=True,
                    timeout=time_limit,
                )
            except subprocess.TimeoutExpired:
                stats.solve_time = self._last_seconds = time.monotonic() - started
                self._last_status = Status.UNKNOWN
                return SolveResult(Status.UNKNOWN, None, stats)
            except OSError as exc:
                raise SolverError(
                    f"cannot run external SAT solver {self._argv[0]!r}: {exc}"
                ) from exc
            text = ""
            if out_path.exists():
                text = out_path.read_text(encoding="utf-8")
            if not text.strip():
                text = process.stdout
            status, literals = _parse_external_output(text, process.returncode)
        stats.solve_time = self._last_seconds = time.monotonic() - started
        self._last_status = status
        if status is not Status.SATISFIABLE:
            return SolveResult(status, None, stats)
        if not literals:
            raise SolverError(
                f"external SAT solver {self._argv[0]!r} reported SAT "
                "without printing a model"
            )
        model = {variable: False for variable in range(1, self._num_vars + 1)}
        for literal in literals:
            if abs(literal) <= self._num_vars:
                model[abs(literal)] = literal > 0
        return SolveResult(status, model, stats)

    def failed_assumptions(self) -> list[int]:
        if self._last_status is not Status.UNSATISFIABLE:
            raise SolverError(
                "failed_assumptions() is only defined after an UNSAT solve() call"
            )
        assert self._last_assumptions is not None
        return list(dict.fromkeys(self._last_assumptions))

    def counters(self) -> dict[str, float]:
        if self._last_status is None and not self._last_seconds:
            return {}
        return {"solve_time": self._last_seconds}


# ---------------------------------------------------------------------------
# chaos backend — deterministic fault injection
# ---------------------------------------------------------------------------

#: Exit status used by the chaos ``exit`` fault — recognisable in
#: ``BrokenProcessPool`` post-mortems as a deliberate kill.
CHAOS_EXIT_CODE = 73

# The chaos *scope* names the unit of work currently running (a portfolio
# task), plus which retry attempt and which pool epoch it belongs to.  The
# retry layer advances it before every attempt so injected faults do not
# replay identically on retry — a flaky first solve heals on attempt 1, a
# worker kill heals after the pool rebuild bumps the epoch — while the full
# (seed, scope, epoch, attempt, call-index) tuple keeps every draw
# reproducible across runs.  Module-level state is safe here: portfolio
# workers are processes, and within one process attempts run sequentially.
_CHAOS_SCOPE: dict[str, object] = {"token": "", "attempt": 0, "epoch": 0}


def set_chaos_scope(token: str, *, attempt: int = 0, epoch: int = 0) -> None:
    """Name the current unit of work for chaos-fault scheduling."""
    _CHAOS_SCOPE["token"] = str(token)
    _CHAOS_SCOPE["attempt"] = int(attempt)
    _CHAOS_SCOPE["epoch"] = int(epoch)


def chaos_scope() -> tuple[str, int, int]:
    """The current ``(token, attempt, epoch)`` chaos scope."""
    return (
        str(_CHAOS_SCOPE["token"]),
        int(_CHAOS_SCOPE["attempt"]),
        int(_CHAOS_SCOPE["epoch"]),
    )


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed fault schedule of a ``chaos[:seed,key=value,...]`` spec.

    The spec argument is a comma-separated list: one optional bare integer
    (the ``seed``) plus ``key=value`` pairs.  The ``inner`` value is a full
    backend spec and may itself contain colons (``inner=external:minisat``)
    but not commas.
    """

    #: Root of every pseudo-random draw; same seed → same fault schedule.
    seed: int = 0
    #: Backend spec that does the actual solving.
    inner: str = DEFAULT_BACKEND
    #: Raise on the first N ``solve`` calls of attempt 0 / epoch 0.
    flaky: int = 0
    #: Per-call probability of raising :class:`ChaosInjectedError`.
    crash: float = 0.0
    #: Per-call probability of a spurious UNKNOWN (a fake timeout).
    unknown: float = 0.0
    #: Artificial seconds of sleep added to every ``solve`` call.
    delay: float = 0.0
    #: Hard-kill the worker process on the first N calls of epoch 0.
    exit: int = 0

    @classmethod
    def parse(cls, argument: str | None) -> "ChaosSpec":
        values: dict[str, object] = {}
        for raw in (argument or "").split(","):
            token = raw.strip()
            if not token:
                continue
            key, equals, value = token.partition("=")
            if not equals:
                if "seed" in values:
                    raise SolverError(
                        f"chaos: seed given twice in spec argument {argument!r}"
                    )
                try:
                    values["seed"] = int(token)
                except ValueError:
                    raise SolverError(
                        "chaos: expected an integer seed or key=value, "
                        f"got {token!r}"
                    ) from None
                continue
            key, value = key.strip(), value.strip()
            if key in values:
                raise SolverError(f"chaos: {key!r} given twice in {argument!r}")
            if key == "inner":
                values[key] = value
            elif key in ("seed", "flaky", "exit"):
                try:
                    parsed = int(value)
                except ValueError:
                    raise SolverError(
                        f"chaos: {key} wants an integer, got {value!r}"
                    ) from None
                if key != "seed" and parsed < 0:
                    raise SolverError(f"chaos: {key} must be >= 0, got {parsed}")
                values[key] = parsed
            elif key in ("crash", "unknown", "delay"):
                try:
                    rate = float(value)
                except ValueError:
                    raise SolverError(
                        f"chaos: {key} wants a number, got {value!r}"
                    ) from None
                if rate < 0 or (key != "delay" and rate > 1):
                    bound = ">= 0" if key == "delay" else "in [0, 1]"
                    raise SolverError(f"chaos: {key} must be {bound}, got {rate}")
                values[key] = rate
            else:
                raise SolverError(
                    f"chaos: unknown key {key!r}; valid keys: "
                    "inner, flaky, crash, unknown, delay, exit "
                    "(plus one bare integer seed)"
                )
        spec = cls(**values)  # type: ignore[arg-type]
        inner_name, _ = split_backend_spec(spec.inner)
        if inner_name == "chaos":
            raise SolverError("chaos: the inner backend cannot itself be chaos")
        return spec

    def render(self) -> str:
        """The canonical ``chaos:...`` spec string for this schedule."""
        parts = [str(self.seed)]
        if self.inner != DEFAULT_BACKEND:
            parts.append(f"inner={self.inner}")
        for key in ("flaky", "crash", "unknown", "delay", "exit"):
            value = getattr(self, key)
            if value:
                parts.append(f"{key}={value}")
        return "chaos:" + ",".join(parts)


class ChaosBackend(IncrementalSatBackend):
    """Fault-injecting wrapper around an inner backend.

    Every injected fault is a deterministic function of ``(spec.seed,
    chaos scope, solve-call index)``: running the same task with the same
    seed and retry policy replays the identical schedule, which is what
    lets the chaos benchmark assert bit-identical minima and the test
    suite provoke one specific failure mode at a time.  Faults are checked
    in a fixed order per call — delay, exit, flaky, crash, unknown — and
    ``exit`` only fires inside worker processes (never the test runner).
    """

    name = "chaos"

    def __init__(
        self,
        spec: ChaosSpec,
        *,
        conflict_limit: int | None = None,
    ) -> None:
        self.spec = spec
        self._inner = create_backend(spec.inner, conflict_limit=conflict_limit)
        self._calls = 0
        self._injected = {"flaky": 0, "crash": 0, "unknown": 0, "exit": 0}

    @property
    def num_variables(self) -> int:
        return self._inner.num_variables

    def add_variable(self) -> int:
        return self._inner.add_variable()

    def add_clause(self, literals: Iterable[int]) -> bool:
        return self._inner.add_clause(literals)

    def add_cnf(self, cnf: Cnf) -> None:
        self._inner.add_cnf(cnf)

    def failed_assumptions(self) -> list[int]:
        return self._inner.failed_assumptions()

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        index = self._calls
        self._calls += 1
        token, attempt, epoch = chaos_scope()
        # String seeding hashes via SHA-512 internally — stable across
        # processes and interpreter runs, unlike hash() under PYTHONHASHSEED.
        rng = random.Random(
            f"chaos|{self.spec.seed}|{token}|e{epoch}|a{attempt}|{index}"
        )
        if self.spec.delay > 0.0:
            time.sleep(self.spec.delay)
        if (
            self.spec.exit > 0
            and epoch == 0
            and index < self.spec.exit
            and multiprocessing.parent_process() is not None
        ):
            # Simulated hard worker death (OOM-kill, segfault): skip all
            # Python teardown so the parent sees BrokenProcessPool.  Guarded
            # to child processes so an inline/test run is never killed.
            os._exit(CHAOS_EXIT_CODE)
        if (
            self.spec.flaky > 0
            and attempt == 0
            and epoch == 0
            and index < self.spec.flaky
        ):
            self._injected["flaky"] += 1
            raise ChaosInjectedError(
                f"chaos(seed={self.spec.seed}): injected flaky failure on "
                f"solve call {index} of {token!r}"
            )
        if self.spec.crash > 0.0 and rng.random() < self.spec.crash:
            self._injected["crash"] += 1
            raise ChaosInjectedError(
                f"chaos(seed={self.spec.seed}): injected crash on solve "
                f"call {index} of {token!r} (attempt {attempt})"
            )
        if self.spec.unknown > 0.0 and rng.random() < self.spec.unknown:
            self._injected["unknown"] += 1
            stats = SolverStats()
            return SolveResult(Status.UNKNOWN, None, stats)
        return self._inner.solve(
            assumptions, conflict_limit=conflict_limit, time_limit=time_limit
        )

    def counters(self) -> dict[str, float]:
        merged = dict(self._inner.counters())
        merged["chaos_calls"] = float(self._calls)
        for fault, count in self._injected.items():
            if count:
                merged[f"chaos_{fault}"] = float(count)
        return merged


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BackendInfo:
    """One registered backend: construction plus availability probing."""

    name: str
    description: str
    factory: Callable[["str | None", "int | None"], IncrementalSatBackend]
    probe: Callable[["str | None"], "str | None"]  # None = available


def _external_command(argument: str | None) -> str | None:
    return argument or os.environ.get(EXTERNAL_SOLVER_ENV) or None


def _probe_external(argument: str | None) -> str | None:
    command = _external_command(argument)
    if command is None:
        return (
            "no solver command configured (use 'external:<command>' or set "
            f"${EXTERNAL_SOLVER_ENV})"
        )
    try:
        argv = shlex.split(command)
    except ValueError as exc:
        return f"unparseable solver command {command!r}: {exc}"
    if not argv:
        return f"empty solver command {command!r}"
    if shutil.which(argv[0]) is None and not Path(argv[0]).exists():
        return f"solver binary {argv[0]!r} not found on PATH"
    return None


def _make_external(argument: str | None, conflict_limit: int | None) -> IncrementalSatBackend:
    # A missing command (None) is rejected by the constructor's own guard,
    # with the same message the availability probe gives.
    command = _external_command(argument)
    return ExternalDimacsBackend(command, conflict_limit=conflict_limit)  # type: ignore[arg-type]


def _reject_argument(name: str, argument: str | None) -> None:
    if argument is not None:
        raise SolverError(
            f"the {name!r} backend takes no spec argument (got {argument!r})"
        )


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    factory: Callable[["str | None", "int | None"], IncrementalSatBackend],
    *,
    description: str = "",
    probe: Callable[["str | None"], "str | None"] | None = None,
) -> None:
    """Register (or replace) a backend under ``name``.

    ``factory(argument, conflict_limit)`` builds a fresh backend instance;
    ``probe(argument)`` returns ``None`` when the backend is usable on
    this host and a human-readable reason otherwise.
    """
    if not name or ":" in name:
        raise SolverError(f"invalid backend name {name!r}")
    _REGISTRY[name] = BackendInfo(
        name=name,
        description=description,
        factory=factory,
        probe=probe or (lambda argument: None),
    )


@dataclass(frozen=True)
class CdclSpec:
    """Parsed tuning options of a ``cdcl[:key=value,...]`` spec.

    The spec argument is a comma-separated list of ``key=value`` pairs
    mapping onto :class:`~repro.sat.solver.CdclSolver` constructor knobs,
    so bench lanes and ``--race-backends`` can tune the engine from the
    command line: ``cdcl:restart_base=200,var_decay=0.95,seed=7``.
    """

    #: Luby restart unit (conflicts before the first restart).
    restart_base: int = 100
    #: VSIDS variable-activity decay, in (0, 1].
    var_decay: float = 0.95
    #: Learned-clause activity decay, in (0, 1].
    clause_decay: float = 0.999
    #: Seed of the solver's deterministic tie-breaking RNG.
    seed: int = 2019
    #: Minimum learned-clause count before a reduction may run.
    reduce_min_learned: int = 50
    #: Initial learned-clause limit (grows geometrically).
    learned_limit_base: int = 1000
    #: LBD at or below which learned clauses are kept forever.
    glue_max: int = 2
    #: Conflicts between root-level inprocessing passes (0 disables).
    inprocess_interval: int = 3000
    #: Bounded variable elimination during inprocessing (0/1).
    bve: bool = True
    #: Extra resolvents an elimination may add beyond removed clauses.
    bve_grow: int = 0
    #: Clause vivification during inprocessing (0/1).
    vivify: bool = True
    #: Chronological-backtracking jump-distance threshold (0 disables).
    chrono: int = 100
    #: Base conflict interval of the rephasing schedule (0 disables).
    rephase: int = 0
    #: Route to the ctypes-loaded native CDCL core (0/1).
    native: bool = False
    #: Record per-phase time splits in ``stats.phase_times``.
    profile: bool = False

    _INT_KEYS = ("restart_base", "seed", "reduce_min_learned",
                 "learned_limit_base", "glue_max", "inprocess_interval",
                 "bve_grow", "chrono", "rephase")
    _FLOAT_KEYS = ("var_decay", "clause_decay")
    _BOOL_KEYS = ("bve", "vivify", "native", "profile")

    @classmethod
    def parse(cls, argument: str | None) -> "CdclSpec":
        values: dict[str, object] = {}
        for raw in (argument or "").split(","):
            token = raw.strip()
            if not token:
                continue
            key, equals, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if not equals:
                raise SolverError(
                    f"cdcl: expected key=value, got {token!r}; valid keys: "
                    f"{', '.join(cls._INT_KEYS + cls._FLOAT_KEYS + cls._BOOL_KEYS)}"
                )
            if key in values:
                raise SolverError(f"cdcl: {key!r} given twice in {argument!r}")
            if key in cls._INT_KEYS:
                try:
                    parsed = int(value)
                except ValueError:
                    raise SolverError(
                        f"cdcl: {key} wants an integer, got {value!r}"
                    ) from None
                if key == "restart_base" and parsed < 1:
                    raise SolverError(f"cdcl: restart_base must be >= 1, got {parsed}")
                if key in ("reduce_min_learned", "learned_limit_base",
                           "glue_max", "inprocess_interval", "bve_grow",
                           "chrono", "rephase") and parsed < 0:
                    raise SolverError(f"cdcl: {key} must be >= 0, got {parsed}")
                values[key] = parsed
            elif key in cls._FLOAT_KEYS:
                try:
                    rate = float(value)
                except ValueError:
                    raise SolverError(
                        f"cdcl: {key} wants a number, got {value!r}"
                    ) from None
                if not 0.0 < rate <= 1.0:
                    raise SolverError(f"cdcl: {key} must be in (0, 1], got {rate}")
                values[key] = rate
            elif key in cls._BOOL_KEYS:
                if value not in ("0", "1"):
                    raise SolverError(f"cdcl: {key} wants 0 or 1, got {value!r}")
                values[key] = value == "1"
            else:
                raise SolverError(
                    f"cdcl: unknown key {key!r}; valid keys: "
                    f"{', '.join(cls._INT_KEYS + cls._FLOAT_KEYS + cls._BOOL_KEYS)}"
                )
        return cls(**values)  # type: ignore[arg-type]

    def render(self) -> str:
        """The canonical spec string (non-default options only)."""
        parts = []
        for key in self._INT_KEYS + self._FLOAT_KEYS + self._BOOL_KEYS:
            value = getattr(self, key)
            if value != getattr(type(self), key):
                parts.append(f"{key}={int(value) if key in self._BOOL_KEYS else value}")
        return "cdcl:" + ",".join(parts) if parts else "cdcl"

    def build(self, conflict_limit: int | None = None) -> IncrementalSatBackend:
        """Construct the solver these options describe.

        With ``native=1`` this returns the ctypes-loaded C core (the
        registry probe reports unavailability before this is reached,
        but direct callers get the same hard error — never a silent
        fallback to the Python loop).
        """
        if self.native:
            from repro.sat.native import NativeCdclSolver

            return NativeCdclSolver(
                conflict_limit=conflict_limit,
                restart_base=self.restart_base,
                random_seed=self.seed,
            )
        return CdclSolver(
            conflict_limit=conflict_limit,
            restart_base=self.restart_base,
            variable_decay=self.var_decay,
            clause_decay=self.clause_decay,
            random_seed=self.seed,
            reduce_min_learned=self.reduce_min_learned,
            learned_limit_base=self.learned_limit_base,
            glue_max=self.glue_max,
            inprocess_interval=self.inprocess_interval,
            bve=self.bve,
            bve_grow=self.bve_grow,
            vivify=self.vivify,
            chrono=self.chrono,
            rephase=self.rephase,
            profile=self.profile,
        )


def _make_cdcl(argument: str | None, conflict_limit: int | None) -> IncrementalSatBackend:
    return CdclSpec.parse(argument).build(conflict_limit)


def _probe_cdcl(argument: str | None) -> str | None:
    try:
        spec = CdclSpec.parse(argument)
    except SolverError as exc:
        return str(exc)
    if spec.native:
        from repro.sat.native import native_unavailable_reason

        reason = native_unavailable_reason()
        if reason is not None:
            return f"native core unavailable: {reason}"
    return None


def _make_dpll(argument: str | None, conflict_limit: int | None) -> IncrementalSatBackend:
    _reject_argument("dpll", argument)
    return DpllBackend(conflict_limit=conflict_limit)


register_backend(
    "cdcl",
    _make_cdcl,
    description=(
        "native CDCL engine (watched literals, VSIDS, LBD clause DB, "
        "assumption cores); tunable via 'cdcl:restart_base=N,var_decay=F,...'"
    ),
    probe=_probe_cdcl,
)
register_backend(
    "dpll",
    _make_dpll,
    description="reference DPLL oracle (debug/differential; small instances only)",
)
def _make_chaos(argument: str | None, conflict_limit: int | None) -> IncrementalSatBackend:
    return ChaosBackend(ChaosSpec.parse(argument), conflict_limit=conflict_limit)


def _probe_chaos(argument: str | None) -> str | None:
    try:
        spec = ChaosSpec.parse(argument)
    except SolverError as exc:
        return str(exc)
    return backend_unavailable_reason(spec.inner)


register_backend(
    "external",
    _make_external,
    description=(
        "minisat-style DIMACS binary via tempfiles "
        f"('external:<command>' or ${EXTERNAL_SOLVER_ENV})"
    ),
    probe=_probe_external,
)
register_backend(
    "chaos",
    _make_chaos,
    description=(
        "deterministic fault injection around an inner backend "
        "('chaos:<seed>,inner=...,flaky=N,crash=P,unknown=P,delay=S,exit=N')"
    ),
    probe=_probe_chaos,
)


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def split_backend_spec(spec: str) -> tuple[str, str | None]:
    """Split ``"name"`` / ``"name:argument"`` and validate the name."""
    if not isinstance(spec, str) or not spec.strip():
        raise SolverError(
            f"a backend spec must be a non-empty string, got {spec!r}; "
            f"registered backends: {', '.join(backend_names())}"
        )
    name, _, argument = spec.partition(":")
    name = name.strip()
    if name not in _REGISTRY:
        raise SolverError(
            f"unknown SAT backend {name!r}; registered backends: "
            f"{', '.join(backend_names())} (see 'repro-pebble backends')"
        )
    return name, (argument if argument else None)


def backend_unavailable_reason(spec: str) -> str | None:
    """``None`` when ``spec`` is usable on this host, else the reason."""
    name, argument = split_backend_spec(spec)
    return _REGISTRY[name].probe(argument)


def require_backend(spec: str) -> str:
    """Validate ``spec`` and its host availability; return it unchanged.

    Raises :class:`~repro.errors.SolverError` with the probe's reason when
    the backend cannot run here — callers fail fast instead of falling
    back to a different engine mid-search.
    """
    reason = backend_unavailable_reason(spec)
    if reason is not None:
        raise SolverError(f"SAT backend {spec!r} is not usable on this host: {reason}")
    return spec


def create_backend(
    spec: str = DEFAULT_BACKEND, *, conflict_limit: int | None = None
) -> IncrementalSatBackend:
    """Build a fresh backend instance from a registry spec string."""
    name, argument = split_backend_spec(spec)
    return _REGISTRY[name].factory(argument, conflict_limit)


def describe_backends() -> list[dict[str, object]]:
    """Availability table for the CLI's ``backends`` subcommand."""
    rows: list[dict[str, object]] = []
    for name in backend_names():
        info = _REGISTRY[name]
        reason = info.probe(None)
        rows.append(
            {
                "name": name,
                "available": reason is None,
                "detail": reason,
                "description": info.description,
            }
        )
    return rows
