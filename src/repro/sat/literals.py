"""Helpers for DIMACS-style literals.

A *variable* is a positive integer ``1, 2, 3, ...``.  A *literal* is a
non-zero integer whose absolute value is the variable and whose sign gives
the polarity: ``3`` means "variable 3 is true", ``-3`` means "variable 3 is
false".  This is the convention used by the DIMACS CNF format and by most
SAT solvers, and it is the convention used throughout :mod:`repro`.
"""

from __future__ import annotations

from repro.errors import CnfError


def check_literal(literal: int) -> int:
    """Validate ``literal`` and return it.

    Raises :class:`~repro.errors.CnfError` if the literal is zero or not an
    integer (booleans are rejected explicitly because ``True`` would silently
    behave like variable 1).
    """
    # Single fast-path check: ``type() is int`` rejects bool (a subclass)
    # in the same comparison the int check needs anyway.
    if type(literal) is not int:
        raise CnfError(f"literal must be an int, got {literal!r}")
    if literal == 0:
        raise CnfError("literal 0 is reserved as the DIMACS clause terminator")
    return literal


def negate(literal: int) -> int:
    """Return the negation of ``literal``."""
    return -check_literal(literal)


def lit_to_var(literal: int) -> int:
    """Return the variable (a positive integer) underlying ``literal``."""
    return abs(check_literal(literal))


def lit_is_positive(literal: int) -> bool:
    """Return ``True`` when ``literal`` has positive polarity."""
    return check_literal(literal) > 0


def var_to_lit(variable: int, *, positive: bool = True) -> int:
    """Return the literal of ``variable`` with the requested polarity."""
    if isinstance(variable, bool) or not isinstance(variable, int) or variable <= 0:
        raise CnfError(f"variable must be a positive int, got {variable!r}")
    return variable if positive else -variable
