"""ctypes loader and backend wrapper for the native CDCL core.

The C source lives in ``_native/cdcl.c`` and is compiled on demand into
``_native/build/libcdcl-<hash>.so`` the first time the core is requested
(``cc -O2 -shared -fPIC``; the hash covers the source, so editing the C
file triggers a rebuild and stale libraries are simply ignored).  The
build directory is gitignored — nothing binary is ever committed.

Availability is an explicit, probeable property: :func:`native_unavailable_reason`
returns ``None`` when the core is loadable and a human-readable reason
(no compiler, compile error, load error) otherwise.  ``cdcl:native=1``
surfaces that reason through the backend registry probe, and
:class:`NativeCdclSolver` raises :class:`~repro.errors.SolverError` with
the same message — there is deliberately no silent fallback to the
Python loop, so a benchmark labelled "native" can never quietly measure
the wrong engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import shutil
import subprocess
import time
from collections.abc import Iterable, Sequence
from pathlib import Path
from threading import Lock

from repro.errors import SolverError
from repro.sat.solver import SolveResult, SolverStats, Status

_SOURCE = Path(__file__).resolve().parent / "_native" / "cdcl.c"
_BUILD_DIR = _SOURCE.parent / "build"
_COMPILERS = ("cc", "gcc", "clang")

_SAT = 1
_UNSAT = -1
_UNKNOWN = 0

_COUNTER_NAMES = (
    "decisions", "propagations", "conflicts", "restarts",
    "learned_clauses", "deleted_clauses", "max_decision_level",
)

_lock = Lock()
_lib: ctypes.CDLL | None = None
_load_error: str | None = None
_load_attempted = False


def _configure(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.cdcl_new.restype = ctypes.c_void_p
    lib.cdcl_new.argtypes = [ctypes.c_uint32, ctypes.c_int64]
    lib.cdcl_free.restype = None
    lib.cdcl_free.argtypes = [ctypes.c_void_p]
    lib.cdcl_add_variable.restype = ctypes.c_int32
    lib.cdcl_add_variable.argtypes = [ctypes.c_void_p]
    lib.cdcl_num_variables.restype = ctypes.c_int32
    lib.cdcl_num_variables.argtypes = [ctypes.c_void_p]
    lib.cdcl_add_clause.restype = ctypes.c_int32
    lib.cdcl_add_clause.argtypes = [
        ctypes.c_void_p, ctypes.POINTER(ctypes.c_int32), ctypes.c_int32,
    ]
    lib.cdcl_solve.restype = ctypes.c_int32
    lib.cdcl_solve.argtypes = [
        ctypes.c_void_p, ctypes.POINTER(ctypes.c_int32), ctypes.c_int32,
        ctypes.c_int64, ctypes.c_double,
    ]
    lib.cdcl_copy_model.restype = None
    lib.cdcl_copy_model.argtypes = [
        ctypes.c_void_p, ctypes.POINTER(ctypes.c_int8), ctypes.c_int32,
    ]
    lib.cdcl_failed_size.restype = ctypes.c_int32
    lib.cdcl_failed_size.argtypes = [ctypes.c_void_p]
    lib.cdcl_copy_failed.restype = None
    lib.cdcl_copy_failed.argtypes = [
        ctypes.c_void_p, ctypes.POINTER(ctypes.c_int32),
    ]
    lib.cdcl_counter.restype = ctypes.c_int64
    lib.cdcl_counter.argtypes = [ctypes.c_void_p, ctypes.c_int32]
    return lib


def _build_and_load() -> tuple[ctypes.CDLL | None, str | None]:
    if not _SOURCE.exists():
        return None, f"native source missing: {_SOURCE}"
    source = _SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:12]
    library = _BUILD_DIR / f"libcdcl-{digest}.so"
    if not library.exists():
        compiler = next(
            (found for name in _COMPILERS if (found := shutil.which(name))),
            None,
        )
        if compiler is None:
            return None, (
                "no C compiler found (tried: " + ", ".join(_COMPILERS) + ")"
            )
        _BUILD_DIR.mkdir(parents=True, exist_ok=True)
        # Build to a temp name then rename: a crashed compile never leaves
        # a half-written .so that a later load would trip over.
        staging = library.with_suffix(".so.tmp")
        command = [
            compiler, "-O2", "-shared", "-fPIC", "-std=c11",
            "-o", str(staging), str(_SOURCE),
        ]
        proc = subprocess.run(command, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout).strip().splitlines()
            head = detail[0] if detail else "no compiler output"
            return None, f"compile failed ({compiler}): {head}"
        staging.replace(library)
    try:
        return _configure(ctypes.CDLL(str(library))), None
    except OSError as exc:
        return None, f"failed to load {library.name}: {exc}"


def _ensure_loaded() -> tuple[ctypes.CDLL | None, str | None]:
    global _lib, _load_error, _load_attempted
    with _lock:
        if not _load_attempted:
            _lib, _load_error = _build_and_load()
            _load_attempted = True
        return _lib, _load_error


def native_unavailable_reason() -> str | None:
    """``None`` when the native core loads, else why it cannot."""
    _, reason = _ensure_loaded()
    return reason


class NativeCdclSolver:
    """The C core behind the :class:`IncrementalSatBackend` surface.

    Selected with ``cdcl:native=1``.  Supports incremental clause
    addition, assumptions with conflict-analysis cores, and conflict/time
    budgets; it does not implement the Python engine's inprocessing
    (``freeze`` is intentionally absent — the pebbling layer probes for
    it with ``getattr``).
    """

    def __init__(
        self,
        *,
        conflict_limit: int | None = None,
        restart_base: int = 100,
        random_seed: int = 0,
    ) -> None:
        lib, reason = _ensure_loaded()
        if lib is None:
            raise SolverError(f"native core unavailable: {reason}")
        self._lib = lib
        self._handle = lib.cdcl_new(random_seed & 0xFFFFFFFF, restart_base)
        if not self._handle:
            raise SolverError("native core allocation failed")
        self._conflict_limit = conflict_limit
        self._declared = 0
        self._last_status: Status | None = None
        self._last_seconds = 0.0

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        handle = getattr(self, "_handle", None)
        if handle:
            self._lib.cdcl_free(handle)
            self._handle = None

    # -- backend surface ---------------------------------------------------
    @property
    def num_variables(self) -> int:
        return max(self._declared, self._lib.cdcl_num_variables(self._handle))

    def add_variable(self) -> int:
        self._declared = self.num_variables + 1
        return self._declared

    def add_clause(self, literals: Iterable[int]) -> bool:
        clause: list[int] = []
        for literal in literals:
            if (
                isinstance(literal, bool)
                or not isinstance(literal, int)
                or literal == 0
            ):
                raise SolverError(f"invalid literal {literal!r}")
            clause.append(literal)
        array = (ctypes.c_int32 * len(clause))(*clause)
        return bool(
            self._lib.cdcl_add_clause(self._handle, array, len(clause))
        )

    def add_cnf(self, cnf) -> None:
        while self.num_variables < cnf.num_variables:
            self.add_variable()
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        # The C core opens one (possibly empty) decision level per
        # assumption; deduplicating here keeps that stack linear in the
        # variable count without changing the semantics or the core.
        unique = list(dict.fromkeys(assumptions))
        for literal in unique:
            if literal == 0 or not isinstance(literal, int):
                raise SolverError(f"invalid assumption literal {literal!r}")
        array = (ctypes.c_int32 * len(unique))(*unique)
        budget = conflict_limit if conflict_limit is not None else self._conflict_limit
        started = time.monotonic()
        verdict = self._lib.cdcl_solve(
            self._handle,
            array,
            len(unique),
            -1 if budget is None else budget,
            -1.0 if time_limit is None else time_limit,
        )
        self._last_seconds = time.monotonic() - started
        if verdict == _SAT:
            self._last_status = Status.SATISFIABLE
            num_vars = self.num_variables
            buffer = (ctypes.c_int8 * num_vars)()
            self._lib.cdcl_copy_model(self._handle, buffer, num_vars)
            model = {
                variable: bool(buffer[variable - 1])
                for variable in range(1, num_vars + 1)
            }
            return SolveResult(Status.SATISFIABLE, model, self._stats())
        if verdict == _UNSAT:
            self._last_status = Status.UNSATISFIABLE
            return SolveResult(Status.UNSATISFIABLE, None, self._stats())
        self._last_status = Status.UNKNOWN
        return SolveResult(Status.UNKNOWN, None, self._stats())

    def failed_assumptions(self) -> list[int]:
        if self._last_status is not Status.UNSATISFIABLE:
            raise SolverError(
                "failed_assumptions() is only defined after an UNSAT solve() call"
            )
        size = self._lib.cdcl_failed_size(self._handle)
        buffer = (ctypes.c_int32 * max(size, 1))()
        self._lib.cdcl_copy_failed(self._handle, buffer)
        return [buffer[i] for i in range(size)]

    def counters(self) -> dict[str, float]:
        if self._last_status is None:
            return {}
        values = {
            name: float(self._lib.cdcl_counter(self._handle, index))
            for index, name in enumerate(_COUNTER_NAMES)
        }
        values["solve_time"] = self._last_seconds
        return values

    # -- helpers ----------------------------------------------------------
    def _stats(self) -> SolverStats:
        stats = SolverStats()
        stats.decisions = int(self._lib.cdcl_counter(self._handle, 0))
        stats.propagations = int(self._lib.cdcl_counter(self._handle, 1))
        stats.conflicts = int(self._lib.cdcl_counter(self._handle, 2))
        stats.restarts = int(self._lib.cdcl_counter(self._handle, 3))
        stats.learned_clauses = int(self._lib.cdcl_counter(self._handle, 4))
        stats.deleted_clauses = int(self._lib.cdcl_counter(self._handle, 5))
        stats.max_decision_level = int(self._lib.cdcl_counter(self._handle, 6))
        stats.solve_time = self._last_seconds
        return stats


# Structural registration: isinstance checks against the backend protocol
# must hold for the native core exactly as they do for the Python engine.
from repro.sat.backend import IncrementalSatBackend  # noqa: E402

IncrementalSatBackend.register(NativeCdclSolver)
