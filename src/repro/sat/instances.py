"""Parametric CNF stress-instance generators.

These formulas exercise the solver itself rather than the pebbling
encoding; they are shared by the unit tests and the tracked benchmark
harness (``benchmarks/run_bench.py``) so both always speak about the
same instances.
"""

from __future__ import annotations

from repro.sat.cnf import Cnf


def pigeonhole(pigeons: int, holes: int) -> Cnf:
    """The classic pigeonhole formula (unsatisfiable when pigeons > holes).

    Variable ``slot[p, h]`` means pigeon ``p`` sits in hole ``h``; every
    pigeon needs a hole and no two pigeons share one.  Proofs require
    exponential resolution, making these the canonical conflict-analysis
    stress test.
    """
    cnf = Cnf()
    slot = {
        (pigeon, hole): cnf.new_variable()
        for pigeon in range(pigeons)
        for hole in range(holes)
    }
    for pigeon in range(pigeons):
        cnf.add_clause([slot[(pigeon, hole)] for hole in range(holes)])
    for hole in range(holes):
        for first in range(pigeons):
            for second in range(first + 1, pigeons):
                cnf.add_clause([-slot[(first, hole)], -slot[(second, hole)]])
    return cnf


def random_3sat(num_variables: int, num_clauses: int, seed: int) -> Cnf:
    """A deterministic pseudo-random 3-SAT instance.

    Uses a self-contained xorshift32 generator so the same ``seed``
    reproduces the same formula on every platform and Python version
    (``random.Random`` guarantees this too, but an explicit generator keeps
    the benchmark instances hash-for-hash stable even if the stdlib ever
    changes).
    """
    state = seed or 1

    def rng(bound: int) -> int:
        nonlocal state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        state &= 0xFFFFFFFF
        return state % bound

    cnf = Cnf()
    for _ in range(num_variables):
        cnf.new_variable()
    for _ in range(num_clauses):
        clause: list[int] = []
        while len(clause) < 3:
            variable = rng(num_variables) + 1
            if variable in {abs(literal) for literal in clause}:
                continue
            clause.append(variable if rng(2) else -variable)
        cnf.add_clause(clause)
    return cnf
