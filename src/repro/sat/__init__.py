"""SAT-solving substrate.

The paper uses Z3 as a black-box satisfiability oracle.  This subpackage
provides an equivalent, self-contained substrate:

* :mod:`repro.sat.literals` -- DIMACS-style literal helpers.
* :mod:`repro.sat.cnf` -- CNF containers and DIMACS reading/writing.
* :mod:`repro.sat.tseitin` -- Boolean expression to CNF conversion.
* :mod:`repro.sat.cards` -- cardinality-constraint encodings (at-most-k).
* :mod:`repro.sat.solver` -- a CDCL SAT solver with two-watched-literal
  propagation, first-UIP clause learning, VSIDS branching, Luby restarts,
  incremental solving under assumptions and failed-assumption cores.
* :mod:`repro.sat.dpll` -- a tiny reference solver used to cross-check the
  CDCL implementation in the test-suite.
* :mod:`repro.sat.backend` -- the :class:`IncrementalSatBackend` protocol
  plus a string-keyed registry of backends (native CDCL, the DPLL oracle,
  and external minisat-style DIMACS binaries), so every layer above can
  carry a solver choice as a picklable spec string.

All public entry points accept and produce plain DIMACS integers
(``1, -1, 2, ...``), which keeps encodings written on top of this package
easy to read and to dump for external solvers.
"""

from repro.sat.backend import (
    DEFAULT_BACKEND,
    ChaosBackend,
    ChaosSpec,
    DpllBackend,
    ExternalDimacsBackend,
    IncrementalSatBackend,
    backend_names,
    backend_unavailable_reason,
    chaos_scope,
    create_backend,
    describe_backends,
    register_backend,
    require_backend,
    set_chaos_scope,
)
from repro.sat.cards import (
    CardinalityEncoding,
    at_least_k,
    at_most_k,
    at_most_k_weighted,
    at_most_one,
    exactly_k,
    exactly_one,
)
from repro.sat.cnf import Cnf, Clause, VariablePool
from repro.sat.dimacs import parse_dimacs, write_dimacs
from repro.sat.dpll import DpllSolver
from repro.sat.literals import lit_is_positive, lit_to_var, negate, var_to_lit
from repro.sat.solver import CdclSolver, SolveResult, SolverStats, Status
from repro.sat.tseitin import BoolExpr, TseitinEncoder, and_, iff, implies, not_, or_, var, xor_

__all__ = [
    "BoolExpr",
    "CardinalityEncoding",
    "CdclSolver",
    "ChaosBackend",
    "ChaosSpec",
    "Clause",
    "Cnf",
    "DEFAULT_BACKEND",
    "DpllBackend",
    "DpllSolver",
    "ExternalDimacsBackend",
    "IncrementalSatBackend",
    "SolveResult",
    "SolverStats",
    "Status",
    "TseitinEncoder",
    "VariablePool",
    "and_",
    "backend_names",
    "backend_unavailable_reason",
    "chaos_scope",
    "create_backend",
    "describe_backends",
    "register_backend",
    "require_backend",
    "set_chaos_scope",
    "at_least_k",
    "at_most_k",
    "at_most_k_weighted",
    "at_most_one",
    "exactly_k",
    "exactly_one",
    "iff",
    "implies",
    "lit_is_positive",
    "lit_to_var",
    "negate",
    "not_",
    "or_",
    "parse_dimacs",
    "var",
    "var_to_lit",
    "write_dimacs",
    "xor_",
]
