"""CNF formula containers.

A :class:`Cnf` is a list of clauses over DIMACS literals together with a
variable pool.  Encoders (Tseitin, cardinality constraints, the pebbling
encoding) build a :class:`Cnf` incrementally through :meth:`Cnf.add_clause`
and :meth:`Cnf.new_variable`, and hand the result to a solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import CnfError
from repro.sat.literals import check_literal, lit_to_var


@dataclass(frozen=True)
class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed on construction; a clause containing both
    a literal and its negation is a *tautology* (see :meth:`is_tautology`).
    """

    literals: tuple[int, ...]

    def __init__(self, literals: Iterable[int]):
        seen: dict[int, None] = {}
        setdefault = seen.setdefault
        for literal in literals:
            if type(literal) is not int or literal == 0:
                check_literal(literal)  # raises with the precise message
            setdefault(literal, None)
        object.__setattr__(self, "literals", tuple(seen))

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __contains__(self, literal: int) -> bool:
        return literal in self.literals

    def is_tautology(self) -> bool:
        """Return ``True`` when the clause contains ``x`` and ``-x``."""
        literal_set = set(self.literals)
        return any(-literal in literal_set for literal in literal_set)

    def is_empty(self) -> bool:
        """Return ``True`` for the empty (unsatisfiable) clause."""
        return not self.literals

    def variables(self) -> set[int]:
        """Return the set of variables mentioned by the clause."""
        return {lit_to_var(literal) for literal in self.literals}

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate the clause under a complete ``{variable: bool}`` map.

        Raises :class:`~repro.errors.CnfError` if a variable is missing.
        """
        for literal in self.literals:
            variable = lit_to_var(literal)
            if variable not in assignment:
                raise CnfError(f"assignment is missing variable {variable}")
            if assignment[variable] == (literal > 0):
                return True
        return False


class VariablePool:
    """Allocates fresh DIMACS variables and optionally names them.

    Encoders frequently need auxiliary variables (Tseitin outputs,
    cardinality-counter bits).  The pool hands out consecutive integers and
    remembers an optional human-readable name per variable, which makes
    debugging encodings and pretty-printing models considerably easier.
    """

    def __init__(self, first_variable: int = 1):
        if first_variable < 1:
            raise CnfError("first_variable must be >= 1")
        self._next = first_variable
        self._names: dict[int, str] = {}
        self._by_name: dict[str, int] = {}

    @property
    def num_variables(self) -> int:
        """Number of variables allocated so far (highest index)."""
        return self._next - 1

    def new(self, name: str | None = None) -> int:
        """Allocate and return a fresh variable, optionally named."""
        variable = self._next
        self._next += 1
        if name is not None:
            self.set_name(variable, name)
        return variable

    def new_many(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables, named ``prefix[i]`` if given."""
        if count < 0:
            raise CnfError("count must be non-negative")
        names = [None if prefix is None else f"{prefix}[{i}]" for i in range(count)]
        return [self.new(name) for name in names]

    def set_name(self, variable: int, name: str) -> None:
        """Attach ``name`` to ``variable`` (names must be unique)."""
        if name in self._by_name and self._by_name[name] != variable:
            raise CnfError(f"variable name {name!r} already used")
        self._names[variable] = name
        self._by_name[name] = variable

    def name_of(self, variable: int) -> str | None:
        """Return the name of ``variable`` or ``None``."""
        return self._names.get(variable)

    def by_name(self, name: str) -> int:
        """Return the variable registered under ``name``."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise CnfError(f"no variable named {name!r}") from exc

    def reserve_through(self, variable: int) -> None:
        """Make sure the pool will not reuse indices up to ``variable``."""
        if variable >= self._next:
            self._next = variable + 1


@dataclass
class Cnf:
    """A CNF formula: a clause list plus a variable pool.

    The class is deliberately simple — encoders append clauses, solvers read
    ``clauses`` and ``num_variables``.  Convenience helpers cover the common
    logical gadgets used by the pebbling encoding (implications,
    equivalences).
    """

    pool: VariablePool = field(default_factory=VariablePool)
    clauses: list[Clause] = field(default_factory=list)
    comments: list[str] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        """Highest variable index used by the formula."""
        return self.pool.num_variables

    @property
    def num_clauses(self) -> int:
        """Number of clauses currently in the formula."""
        return len(self.clauses)

    def new_variable(self, name: str | None = None) -> int:
        """Allocate a fresh variable through the pool."""
        return self.pool.new(name)

    def new_variables(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables through the pool."""
        return self.pool.new_many(count, prefix)

    def add_clause(self, literals: Iterable[int]) -> Clause:
        """Add a clause (a disjunction of DIMACS literals) and return it."""
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        # One pool reservation per clause (reserve_through is monotone),
        # not one per literal — this method is the hot path of every
        # encoder.  Clause construction already validated the literals.
        max_var = 0
        for literal in clause.literals:
            variable = -literal if literal < 0 else literal
            if variable > max_var:
                max_var = variable
        if max_var:
            self.pool.reserve_through(max_var)
        self.clauses.append(clause)
        return clause

    def add_clauses(self, clause_list: Iterable[Iterable[int]]) -> None:
        """Add every clause in ``clause_list``."""
        for literals in clause_list:
            self.add_clause(literals)

    def add_unit(self, literal: int) -> Clause:
        """Force ``literal`` to be true."""
        return self.add_clause([literal])

    def add_implication(self, antecedent: int, consequent: int) -> Clause:
        """Add ``antecedent -> consequent``."""
        return self.add_clause([-antecedent, consequent])

    def add_equivalence(self, left: int, right: int) -> None:
        """Add ``left <-> right``."""
        self.add_clause([-left, right])
        self.add_clause([left, -right])

    def add_comment(self, text: str) -> None:
        """Record a human-readable comment (written out to DIMACS)."""
        self.comments.append(text)

    def variables(self) -> set[int]:
        """Return all variables mentioned in clauses."""
        result: set[int] = set()
        for clause in self.clauses:
            result.update(clause.variables())
        return result

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate the whole formula under a complete assignment."""
        return all(clause.evaluate(assignment) for clause in self.clauses)

    def copy(self) -> "Cnf":
        """Return a shallow copy sharing no mutable state with ``self``."""
        fresh = Cnf()
        fresh.pool.reserve_through(self.num_variables)
        for variable in range(1, self.num_variables + 1):
            name = self.pool.name_of(variable)
            if name is not None:
                fresh.pool.set_name(variable, name)
        fresh.clauses = list(self.clauses)
        fresh.comments = list(self.comments)
        return fresh

    def as_lists(self) -> list[list[int]]:
        """Return clauses as plain lists of ints (handy for solvers/tests)."""
        return [list(clause.literals) for clause in self.clauses]

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def stats(self) -> dict[str, int]:
        """Return a small dictionary of size statistics."""
        literal_count = sum(len(clause) for clause in self.clauses)
        return {
            "variables": self.num_variables,
            "clauses": self.num_clauses,
            "literals": literal_count,
        }


def clauses_from_lists(clause_lists: Sequence[Sequence[int]]) -> list[Clause]:
    """Convert raw literal lists into :class:`Clause` objects."""
    return [Clause(literals) for literals in clause_lists]
