"""A CDCL (conflict-driven clause learning) SAT solver.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation with blocker literals
  (most watcher visits are answered from the cached blocker without
  touching the clause at all),
* first-UIP conflict analysis with clause learning,
* conflict-clause minimisation (self-subsumption against reasons),
* VSIDS-style variable activities kept in an indexed binary max-heap
  with lazy re-insertion on backtrack, plus phase saving,
* Luby-sequence restarts,
* activity-based learned-clause database reduction over a flat clause
  arena (clause activities live in a list parallel to the arena,
  indexed by clause slot),
* incremental solving under assumptions,
* conflict and time budgets so callers can implement timeouts
  (the paper stops each pebbling instance after a wall-clock budget);
  the wall clock is only consulted every few conflicts, so the hot
  loop does not pay a ``time.monotonic()`` call per iteration.

It is written in pure Python and optimised for the constant factors that
dominate CPython execution: hot loops cache attribute lookups in locals,
watcher lists are compacted in place instead of being rebuilt, and
propagation enqueues assignments inline.  It solves the CNF instances
produced by the pebbling encoding for DAGs with up to a few hundred nodes
in seconds, which is sufficient for the scaled-down evaluation documented
in EXPERIMENTS.md.

Literal conventions
-------------------
The public API uses DIMACS literals.  Internally a literal ``l`` is encoded
as ``2*|l| + (l < 0)`` so that literals can index Python lists directly and
negation is a single XOR.

Clause storage
--------------
Clauses live in a flat arena ``self._arena``: a list of clauses indexed by
*slot*.  Watcher lists, implication reasons and learned-clause activities
all refer to clauses by slot, so clause metadata is a list access instead
of an ``id()``-keyed dictionary lookup.  Slots of deleted learned clauses
are recycled through a free list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.sat.cnf import Cnf


class Status(Enum):
    """Result status of a solver call."""

    SATISFIABLE = "sat"
    UNSATISFIABLE = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters describing the work performed by the solver."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0
    blocker_hits: int = 0
    heap_decisions: int = 0
    deadline_checks_skipped: int = 0

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
            "solve_time": self.solve_time,
            "blocker_hits": self.blocker_hits,
            "heap_decisions": self.heap_decisions,
            "deadline_checks_skipped": self.deadline_checks_skipped,
        }


@dataclass
class SolveResult:
    """Outcome of a :meth:`CdclSolver.solve` call.

    ``model`` maps every problem variable to a Boolean when the status is
    :attr:`Status.SATISFIABLE`, and is ``None`` otherwise.
    """

    status: Status
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        """``True`` when a satisfying assignment was found."""
        return self.status is Status.SATISFIABLE

    @property
    def is_unsat(self) -> bool:
        """``True`` when the formula was proven unsatisfiable."""
        return self.status is Status.UNSATISFIABLE

    @property
    def is_unknown(self) -> bool:
        """``True`` when the solver gave up (conflict/time budget)."""
        return self.status is Status.UNKNOWN


_UNASSIGNED = -1
_NO_REASON = -1
_NO_CONFLICT = -1

#: The wall clock is consulted once every this many main-loop iterations.
_DEADLINE_CHECK_INTERVAL = 64


def _encode(literal: int) -> int:
    """DIMACS literal -> internal literal."""
    return (abs(literal) << 1) | (literal < 0)


def _decode(encoded: int) -> int:
    """Internal literal -> DIMACS literal."""
    variable = encoded >> 1
    return -variable if encoded & 1 else variable


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if index <= 0:
        raise SolverError("luby index must be >= 1")
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if (1 << k) - 1 == index:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


class CdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True

    The solver is incremental: more clauses may be added after a
    :meth:`solve` call and subsequent calls reuse learned clauses.
    Assumptions allow solving under temporary unit hypotheses without
    permanently adding them.  After an UNSAT answer under assumptions,
    :meth:`failed_assumptions` returns the subset of the assumptions that
    the final conflict analysis proved responsible (the solver's UNSAT
    core over the assumption literals), which is the backend surface the
    core-guided pebbling searches build on.
    """

    #: Registry name under :mod:`repro.sat.backend` (the native backend).
    name = "cdcl"

    def __init__(
        self,
        cnf: Cnf | None = None,
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        restart_base: int = 100,
        clause_decay: float = 0.999,
        variable_decay: float = 0.95,
        random_seed: int = 2019,
        reduce_min_learned: int = 50,
        learned_limit_base: int = 1000,
    ) -> None:
        self._num_vars = 0
        # Truth values indexed by *encoded literal* (1 true, 0 false,
        # -1 unassigned): the propagation inner loop answers "is this
        # literal true?" with a single list access instead of a variable
        # lookup plus sign fix-up.  Entries for ``l`` and ``l ^ 1`` are
        # kept complementary while assigned.
        self._lit_values: list[int] = [_UNASSIGNED] * 4
        # Indexed by variable (1-based).
        self._levels: list[int] = [0, 0]
        self._reasons: list[int] = [_NO_REASON, _NO_REASON]
        self._activity: list[float] = [0.0, 0.0]
        self._phase: list[bool] = [False, False]
        self._seen: list[bool] = [False, False]
        # Variable-order heap: ``_heap`` holds variables in binary max-heap
        # order by activity, ``_heap_pos`` maps a variable to its heap index
        # (-1 when not enqueued).
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1, -1]
        # Indexed by encoded literal: lists of ``(blocker, slot)`` pairs.
        self._watches: list[list[tuple[int, int]]] = [[], [], [], []]
        # Flat clause arena indexed by slot; ``None`` marks a freed slot.
        self._arena: list[list[int] | None] = []
        self._clause_act: list[float] = []
        self._learned_flag: list[bool] = []
        self._learned_slots: list[int] = []
        self._free_slots: list[int] = []
        self._num_problem_clauses = 0
        self._trail: list[int] = []
        self._trail_limits: list[int] = []
        self._propagation_head = 0
        self._var_inc = 1.0
        self._var_decay = variable_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._restart_base = restart_base
        self._reduce_min_learned = reduce_min_learned
        self._learned_limit_base = learned_limit_base
        self._ok = True
        self._pending_units: list[int] = []
        self.default_conflict_limit = conflict_limit
        self.default_time_limit = time_limit
        self.stats = SolverStats()
        self._rng_state = random_seed or 1
        self._failed_assumptions: list[int] | None = None
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Highest variable index known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return self._num_problem_clauses

    @property
    def num_learned_clauses(self) -> int:
        """Number of currently retained learned clauses."""
        return len(self._learned_slots)

    def _ensure_var(self, variable: int) -> None:
        while self._num_vars < variable:
            self._num_vars += 1
            self._lit_values.append(_UNASSIGNED)
            self._lit_values.append(_UNASSIGNED)
            self._levels.append(0)
            self._reasons.append(_NO_REASON)
            self._activity.append(0.0)
            self._phase.append(False)
            self._seen.append(False)
            self._heap_pos.append(-1)
            self._watches.append([])
            self._watches.append([])
            self._heap_insert(self._num_vars)

    def add_variable(self) -> int:
        """Allocate a fresh variable and return its index."""
        self._ensure_var(self._num_vars + 1)
        return self._num_vars

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of ``cnf`` to the solver."""
        self._ensure_var(cnf.num_variables)
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; return ``False`` if the formula became trivially unsat.

        The clause is simplified: duplicate literals are merged and
        tautological clauses are dropped.
        """
        if not self._ok:
            return False
        unique: dict[int, None] = {}
        for literal in literals:
            if isinstance(literal, bool) or not isinstance(literal, int) or literal == 0:
                raise SolverError(f"invalid literal {literal!r}")
            unique.setdefault(literal, None)
        clause = list(unique)
        for literal in clause:
            self._ensure_var(abs(literal))
        literal_set = set(clause)
        if any(-literal in literal_set for literal in clause):
            return True  # tautology
        # Root-level simplification: literals already false at decision
        # level 0 can never become true again, so they are dropped; a
        # literal true at level 0 satisfies the clause forever.  Without
        # this, a clause added incrementally over variables fixed by an
        # earlier solve call would watch permanently-false literals and
        # never propagate.
        lit_values = self._lit_values
        levels = self._levels
        encoded = []
        for literal in clause:
            enc = _encode(literal)
            value = lit_values[enc]
            if value >= 0 and levels[enc >> 1] == 0:
                if value == 1:
                    return True  # satisfied at the root level
                continue
            encoded.append(enc)
        if not encoded:
            self._ok = False
            return False
        if len(encoded) == 1:
            self._pending_units.append(_decode(encoded[0]))
            return True
        self._attach(encoded, learned=False)
        return True

    def _attach(self, encoded_clause: list[int], *, learned: bool) -> int:
        """Store a clause in the arena and watch its first two literals.

        Returns the clause slot.  The blocker stored with each watcher is
        the *other* watched literal: when it is already true the clause is
        satisfied and propagation never needs to load the clause.
        """
        if self._free_slots:
            slot = self._free_slots.pop()
            self._arena[slot] = encoded_clause
            self._clause_act[slot] = self._cla_inc if learned else 0.0
            self._learned_flag[slot] = learned
        else:
            slot = len(self._arena)
            self._arena.append(encoded_clause)
            self._clause_act.append(self._cla_inc if learned else 0.0)
            self._learned_flag.append(learned)
        # Binary clauses are marked with the one's complement of their slot:
        # propagation can then resolve them from the watcher pair alone
        # (the blocker IS the only other literal) without loading the arena.
        tag = ~slot if len(encoded_clause) == 2 else slot
        self._watches[encoded_clause[0] ^ 1].append((encoded_clause[1], tag))
        self._watches[encoded_clause[1] ^ 1].append((encoded_clause[0], tag))
        if learned:
            self._learned_slots.append(slot)
        else:
            self._num_problem_clauses += 1
        return slot

    # ------------------------------------------------------------------
    # assignment handling
    # ------------------------------------------------------------------
    def _value_of(self, encoded: int) -> int:
        """Return 1 (true), 0 (false) or -1 (unassigned) for a literal."""
        return self._lit_values[encoded]

    def _enqueue(self, encoded: int, reason_slot: int = _NO_REASON) -> bool:
        lit_values = self._lit_values
        value = lit_values[encoded]
        if value != _UNASSIGNED:
            return value == 1
        variable = encoded >> 1
        lit_values[encoded] = 1
        lit_values[encoded ^ 1] = 0
        self._levels[variable] = len(self._trail_limits)
        self._reasons[variable] = reason_slot
        self._phase[variable] = not (encoded & 1)
        self._trail.append(encoded)
        return True

    def _propagate(self) -> int:
        """Unit propagation; return a conflicting clause slot or -1."""
        lit_values = self._lit_values
        levels = self._levels
        reasons = self._reasons
        phase = self._phase
        watches = self._watches
        arena = self._arena
        trail = self._trail
        trail_limits_depth = len(self._trail_limits)
        propagations = 0
        blocker_hits = 0
        conflict = _NO_CONFLICT
        head = self._propagation_head
        while head < len(trail):
            propagated = trail[head]
            head += 1
            propagations += 1
            watch_list = watches[propagated]
            total = len(watch_list)
            read = write = 0
            while read < total:
                entry = watch_list[read]
                read += 1
                blocker = entry[0]
                value = lit_values[blocker]
                if value > 0:
                    # The cached blocker is true: the clause is satisfied
                    # without ever being loaded from the arena.
                    watch_list[write] = entry
                    write += 1
                    blocker_hits += 1
                    continue
                slot = entry[1]
                if slot < 0:
                    # Binary clause: the blocker is the only other literal,
                    # so it is unit (blocker unassigned) or conflicting
                    # (blocker false) right away.
                    watch_list[write] = entry
                    write += 1
                    if value < 0:
                        lit_values[blocker] = 1
                        lit_values[blocker ^ 1] = 0
                        variable = blocker >> 1
                        levels[variable] = trail_limits_depth
                        reasons[variable] = ~slot
                        phase[variable] = not (blocker & 1)
                        trail.append(blocker)
                        continue
                    conflict = ~slot
                    while read < total:
                        watch_list[write] = watch_list[read]
                        write += 1
                        read += 1
                    break
                clause = arena[slot]
                false_literal = propagated ^ 1
                if clause[0] == false_literal:
                    clause[0] = clause[1]
                    clause[1] = false_literal
                first = clause[0]
                if first != blocker:
                    value = lit_values[first]
                    if value > 0:
                        watch_list[write] = (first, slot)
                        write += 1
                        continue
                # Look for a new literal to watch (any non-false literal).
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if lit_values[candidate] != 0:
                        clause[1] = candidate
                        clause[position] = false_literal
                        watches[candidate ^ 1].append((first, slot))
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting on ``first``.
                watch_list[write] = (first, slot)
                write += 1
                if value < 0:
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    variable = first >> 1
                    levels[variable] = trail_limits_depth
                    reasons[variable] = slot
                    phase[variable] = not (first & 1)
                    trail.append(first)
                else:
                    conflict = slot
                    while read < total:
                        watch_list[write] = watch_list[read]
                        write += 1
                        read += 1
                    break
            del watch_list[write:]
            if conflict >= 0:
                head = len(trail)
                break
        self._propagation_head = head
        self.stats.propagations += propagations
        self.stats.blocker_hits += blocker_hits
        return conflict

    # ------------------------------------------------------------------
    # variable-order heap (indexed binary max-heap over activity)
    # ------------------------------------------------------------------
    def _heap_up(self, index: int) -> None:
        heap = self._heap
        position = self._heap_pos
        activity = self._activity
        variable = heap[index]
        score = activity[variable]
        while index > 0:
            parent_index = (index - 1) >> 1
            parent = heap[parent_index]
            if activity[parent] >= score:
                break
            heap[index] = parent
            position[parent] = index
            index = parent_index
        heap[index] = variable
        position[variable] = index

    def _heap_down(self, index: int) -> None:
        heap = self._heap
        position = self._heap_pos
        activity = self._activity
        size = len(heap)
        variable = heap[index]
        score = activity[variable]
        while True:
            child_index = 2 * index + 1
            if child_index >= size:
                break
            right_index = child_index + 1
            if right_index < size and activity[heap[right_index]] > activity[heap[child_index]]:
                child_index = right_index
            child = heap[child_index]
            if activity[child] <= score:
                break
            heap[index] = child
            position[child] = index
            index = child_index
        heap[index] = variable
        position[variable] = index

    def _heap_insert(self, variable: int) -> None:
        if self._heap_pos[variable] >= 0:
            return
        self._heap.append(variable)
        self._heap_pos[variable] = len(self._heap) - 1
        self._heap_up(len(self._heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        top = heap[0]
        self._heap_pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_down(0)
        return top

    # The heap is maintained incrementally — every unassigned variable is
    # always enqueued: ``_ensure_var`` inserts fresh variables, decisions
    # pop variables, and ``_backtrack`` lazily re-inserts whatever it
    # unassigns.  Variables assigned by propagation may linger in the heap;
    # ``_pick_branch_variable`` skips them when popped.

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_variable(self, variable: int) -> None:
        activity = self._activity
        activity[variable] += self._var_inc
        if activity[variable] > 1e100:
            # Rescaling multiplies every activity by the same factor, so the
            # heap order is unaffected.
            for index in range(1, self._num_vars + 1):
                activity[index] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[variable] >= 0:
            self._heap_up(self._heap_pos[variable])

    def _decay_variable_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, slot: int) -> None:
        if not self._learned_flag[slot]:
            return
        clause_act = self._clause_act
        clause_act[slot] += self._cla_inc
        if clause_act[slot] > 1e20:
            for other in self._learned_slots:
                clause_act[other] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict_slot: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (encoded literals, asserting literal
        first) and the backjump level.
        """
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        levels = self._levels
        reasons = self._reasons
        arena = self._arena
        current_level = len(self._trail_limits)
        counter = 0
        literal = -1
        trail_index = len(self._trail) - 1
        clause = arena[conflict_slot]
        self._bump_clause(conflict_slot)

        while True:
            assert clause is not None
            start = 0 if literal == -1 else 1
            for position in range(start, len(clause)):
                other = clause[position]
                variable = other >> 1
                if not seen[variable] and levels[variable] > 0:
                    seen[variable] = True
                    self._bump_variable(variable)
                    if levels[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(other)
            # Pick the next literal from the trail to resolve on.
            while not seen[self._trail[trail_index] >> 1]:
                trail_index -= 1
            literal = self._trail[trail_index]
            trail_index -= 1
            variable = literal >> 1
            seen[variable] = False
            counter -= 1
            if counter == 0:
                break
            reason_slot = reasons[variable]
            clause = arena[reason_slot] if reason_slot >= 0 else None
            if clause is not None:
                self._bump_clause(reason_slot)
                # When resolving, position 0 of the reason holds ``literal``
                # itself; make sure that is the case.
                if clause[0] != literal:
                    clause = [literal] + [lit for lit in clause if lit != literal]
        learned[0] = literal ^ 1

        # Recursive clause minimisation (MiniSat-style): drop every literal
        # whose negation is implied by the *rest* of the clause through a
        # chain of reason clauses.  ``abstract_levels`` is a 32-bit Bloom
        # filter over decision levels used to abort hopeless recursions
        # early.  ``seen`` markers double as the "in clause or proven
        # redundant" set; speculative marks are recorded in ``to_clear``.
        abstract_levels = 0
        for other in learned[1:]:
            abstract_levels |= 1 << (levels[other >> 1] & 31)
        to_clear: list[int] = []
        minimized = [learned[0]]
        for other in learned[1:]:
            if reasons[other >> 1] < 0 or not self._literal_redundant(
                other, abstract_levels, to_clear
            ):
                minimized.append(other)

        # Reset the 'seen' markers for every literal collected during the
        # analysis (including the ones dropped by minimisation), otherwise
        # stale markers corrupt the next conflict analysis.
        for other in learned:
            seen[other >> 1] = False
        for variable in to_clear:
            seen[variable] = False
        learned = minimized

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Find the literal with the highest level below the current one
            # and move it to position 1 (it becomes the second watch).
            best_index = 1
            best_level = levels[learned[1] >> 1]
            for position in range(2, len(learned)):
                level = levels[learned[position] >> 1]
                if level > best_level:
                    best_level = level
                    best_index = position
            learned[1], learned[best_index] = learned[best_index], learned[1]
            backjump_level = best_level
        return learned, backjump_level

    def _literal_redundant(
        self, literal: int, abstract_levels: int, to_clear: list[int]
    ) -> bool:
        """Is ``literal`` implied by the other marked literals of the clause?

        Walks the implication graph backwards from ``literal``; every
        antecedent must eventually hit a literal that is already marked
        (in the learned clause / proven redundant) or assigned at level 0.
        Newly proven-redundant variables stay marked in ``seen`` (recorded
        in ``to_clear``) so later candidates reuse the work.
        """
        seen = self._seen
        levels = self._levels
        reasons = self._reasons
        arena = self._arena
        stack = [literal]
        top = len(to_clear)
        while stack:
            current = stack.pop()
            reason = arena[reasons[current >> 1]]
            assert reason is not None
            current_variable = current >> 1
            for other in reason:
                variable = other >> 1
                if variable == current_variable or seen[variable] or levels[variable] == 0:
                    continue
                if reasons[variable] < 0 or not (
                    (1 << (levels[variable] & 31)) & abstract_levels
                ):
                    # A decision literal, or one from a level with no
                    # representative in the clause: not redundant.  Undo the
                    # speculative marks made during this candidate's walk.
                    for marked in to_clear[top:]:
                        seen[marked] = False
                    del to_clear[top:]
                    return False
                seen[variable] = True
                to_clear.append(variable)
                stack.append(other)
        return True

    def _backtrack(self, level: int) -> None:
        if len(self._trail_limits) <= level:
            return
        limit = self._trail_limits[level]
        lit_values = self._lit_values
        reasons = self._reasons
        heap_pos = self._heap_pos
        for encoded in reversed(self._trail[limit:]):
            variable = encoded >> 1
            lit_values[encoded] = _UNASSIGNED
            lit_values[encoded ^ 1] = _UNASSIGNED
            reasons[variable] = _NO_REASON
            # Lazy re-insertion: a variable popped off the heap during the
            # search becomes eligible again the moment it is unassigned.
            if heap_pos[variable] < 0:
                self._heap_insert(variable)
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagation_head = min(self._propagation_head, len(self._trail))

    # ------------------------------------------------------------------
    # decision heuristics
    # ------------------------------------------------------------------
    def _random(self) -> float:
        # xorshift32: deterministic, cheap, good enough for tie-breaking.
        state = self._rng_state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        self._rng_state = state & 0xFFFFFFFF
        return self._rng_state / 0xFFFFFFFF

    def _pick_branch_variable(self) -> int:
        """Pop unassigned variables with the highest activity off the heap."""
        lit_values = self._lit_values
        heap = self._heap
        while heap:
            variable = self._heap_pop()
            if lit_values[variable << 1] == _UNASSIGNED:
                self.stats.heap_decisions += 1
                return variable
        return 0

    # ------------------------------------------------------------------
    # learned clause database management
    # ------------------------------------------------------------------
    def _reduce_learned(self) -> None:
        if len(self._learned_slots) < self._reduce_min_learned:
            return
        arena = self._arena
        clause_act = self._clause_act
        locked = {slot for slot in self._reasons if slot >= 0}
        ranked = sorted(self._learned_slots, key=clause_act.__getitem__)
        removed: set[int] = set()
        for slot in ranked[: len(ranked) // 2]:
            clause = arena[slot]
            if slot in locked or clause is None or len(clause) <= 2:
                continue
            self._detach(slot)
            arena[slot] = None
            self._learned_flag[slot] = False
            self._clause_act[slot] = 0.0
            self._free_slots.append(slot)
            removed.add(slot)
        if not removed:
            return
        self._learned_slots = [slot for slot in self._learned_slots if slot not in removed]
        self.stats.deleted_clauses += len(removed)

    def _detach(self, slot: int) -> None:
        clause = self._arena[slot]
        assert clause is not None
        tag = ~slot if len(clause) == 2 else slot
        for watch_literal in (clause[0] ^ 1, clause[1] ^ 1):
            watch_list = self._watches[watch_literal]
            for index, entry in enumerate(watch_list):
                if entry[1] == tag:
                    watch_list[index] = watch_list[-1]
                    watch_list.pop()
                    break

    # ------------------------------------------------------------------
    # main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        """Solve the current formula, optionally under assumptions.

        ``conflict_limit`` and ``time_limit`` bound the search; when either
        budget is exhausted the result status is :attr:`Status.UNKNOWN`.
        """
        start_time = time.monotonic()
        stats = self.stats = SolverStats()
        conflict_limit = conflict_limit if conflict_limit is not None else self.default_conflict_limit
        time_limit = time_limit if time_limit is not None else self.default_time_limit
        # Every UNSAT exit below records its assumption core first; paths
        # where the formula alone is contradictory record the empty core.
        self._failed_assumptions = None

        if not self._ok:
            self._failed_assumptions = []
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        # Start from a clean assignment (incremental interface keeps
        # clauses, not the trail).
        self._backtrack(0)
        for literal in self._pending_units:
            if not self._enqueue(_encode(literal)):
                self._ok = False
                self._failed_assumptions = []
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNSATISFIABLE, None, stats)
        self._pending_units.clear()
        if self._propagate() != _NO_CONFLICT:
            self._ok = False
            self._failed_assumptions = []
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        encoded_assumptions = [_encode(literal) for literal in assumptions]
        for literal in assumptions:
            self._ensure_var(abs(literal))

        restart_count = 0
        conflicts_until_restart = self._restart_base * luby(restart_count + 1)
        conflicts_since_restart = 0
        learned_limit = max(self._learned_limit_base, self.num_clauses // 2)
        iterations = 0

        while True:
            iterations += 1
            if time_limit is not None:
                # Deadline batching: the monotonic clock is read on the
                # first iteration and then once every
                # ``_DEADLINE_CHECK_INTERVAL`` iterations.
                if iterations % _DEADLINE_CHECK_INTERVAL == 1:
                    if (time.monotonic() - start_time) > time_limit:
                        self._backtrack(0)
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNKNOWN, None, stats)
                else:
                    stats.deadline_checks_skipped += 1
            if conflict_limit is not None and stats.conflicts >= conflict_limit:
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNKNOWN, None, stats)

            conflict_slot = self._propagate()
            if conflict_slot != _NO_CONFLICT:
                stats.conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_limits:
                    # Conflict at decision level 0: the trail below the first
                    # pseudo-decision only ever holds formula-derived facts,
                    # so the formula alone is contradictory (empty core) and
                    # this call is conclusive either way.
                    self._failed_assumptions = []
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    if not encoded_assumptions:
                        self._ok = False
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                learned, backjump_level = self._analyze(conflict_slot)
                self._backtrack(backjump_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0]):
                        # Learned units are implied by the formula alone.
                        self._failed_assumptions = []
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNSATISFIABLE, None, stats)
                    self._pending_units.append(_decode(learned[0]))
                else:
                    slot = self._attach(learned, learned=True)
                    stats.learned_clauses += 1
                    self._enqueue(learned[0], slot)
                self._decay_variable_activity()
                self._decay_clause_activity()
                if len(self._learned_slots) > learned_limit:
                    self._reduce_learned()
                    learned_limit = int(learned_limit * 1.3)
                continue

            if conflicts_since_restart >= conflicts_until_restart:
                restart_count += 1
                stats.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._backtrack(0)
                continue

            # Place pending assumptions as pseudo-decisions.
            next_assumption = self._next_unassigned_assumption(encoded_assumptions)
            if next_assumption is not None:
                value = self._value_of(next_assumption)
                if value == 0:
                    # The core must be read off the implication graph before
                    # backtracking tears the trail down.
                    self._failed_assumptions = self._analyze_final(next_assumption)
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                self._trail_limits.append(len(self._trail))
                self._enqueue(next_assumption)
                continue

            variable = self._pick_branch_variable()
            if variable == 0:
                model = self._extract_model()
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.SATISFIABLE, model, stats)
            stats.decisions += 1
            self._trail_limits.append(len(self._trail))
            if len(self._trail_limits) > stats.max_decision_level:
                stats.max_decision_level = len(self._trail_limits)
            phase = self._phase[variable]
            encoded = (variable << 1) | (0 if phase else 1)
            self._enqueue(encoded)

    def _analyze_final(self, failed: int) -> list[int]:
        """Assumption literals whose conjunction the search refuted.

        ``failed`` is the encoded assumption found false while placing
        assumptions.  Walking the implication graph backwards from its
        (true) negation, every pseudo-decision reached is an assumption
        that contributed to the refutation — real decisions cannot appear,
        because assumptions are (re)placed before any branching decision
        is made.  The returned DIMACS literals are a subset of the passed
        assumptions, and the formula conjoined with them is unsatisfiable
        (the minimisation is the conflict-analysis restriction itself; the
        core is not guaranteed to be subset-minimal).
        """
        core = [_decode(failed)]
        variable = failed >> 1
        levels = self._levels
        if levels[variable] == 0:
            # The negation is a root-level fact of the formula: the failed
            # assumption alone is already contradictory.
            return core
        seen = self._seen
        reasons = self._reasons
        arena = self._arena
        seen[variable] = True
        marked = [variable]
        for encoded in reversed(self._trail):
            trail_variable = encoded >> 1
            if not seen[trail_variable]:
                continue
            reason_slot = reasons[trail_variable]
            if reason_slot < 0:
                # A pseudo-decision above level 0 is an assumption; its
                # assigned polarity is the assumed literal itself (covers
                # contradictory assumption pairs too).
                if levels[trail_variable] > 0:
                    core.append(_decode(encoded))
            else:
                reason = arena[reason_slot]
                assert reason is not None
                for other in reason:
                    other_variable = other >> 1
                    if (
                        other_variable != trail_variable
                        and levels[other_variable] > 0
                        and not seen[other_variable]
                    ):
                        seen[other_variable] = True
                        marked.append(other_variable)
        for cleared in marked:
            seen[cleared] = False
        return core

    def failed_assumptions(self) -> list[int]:
        """The assumption core of the most recent UNSAT :meth:`solve` call.

        The returned literals are a subset of the assumptions passed to
        that call, and adding them to the formula as units makes it
        unsatisfiable; an empty list means the formula is unsatisfiable on
        its own.  Raises :class:`~repro.errors.SolverError` when the last
        call did not return UNSAT.
        """
        if self._failed_assumptions is None:
            raise SolverError(
                "failed_assumptions() is only defined after an UNSAT solve() call"
            )
        return list(self._failed_assumptions)

    def counters(self) -> dict[str, float]:
        """Counters of the most recent solve (the full CDCL counter set)."""
        return self.stats.as_dict()

    def _next_unassigned_assumption(self, encoded_assumptions: list[int]) -> int | None:
        for encoded in encoded_assumptions:
            value = self._value_of(encoded)
            if value == _UNASSIGNED or value == 0:
                return encoded
        return None

    def _extract_model(self) -> dict[int, bool]:
        model: dict[int, bool] = {}
        for variable in range(1, self._num_vars + 1):
            value = self._lit_values[variable << 1]
            model[variable] = bool(value) if value != _UNASSIGNED else bool(self._phase[variable])
        return model


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    *,
    conflict_limit: int | None = None,
    time_limit: float | None = None,
) -> SolveResult:
    """One-shot convenience wrapper: build a solver, add ``cnf``, solve."""
    solver = CdclSolver(cnf)
    return solver.solve(
        assumptions,
        conflict_limit=conflict_limit,
        time_limit=time_limit,
    )
