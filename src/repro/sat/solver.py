"""A CDCL (conflict-driven clause learning) SAT solver.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation with blocker literals and a
  dedicated binary-clause watch layer (binary implications resolve from
  the watcher pair alone, without touching the clause arena),
* first-UIP conflict analysis with clause learning and per-clause
  literal-blocks-distance (LBD/"glue") computed at analyze time,
* conflict-clause minimisation (self-subsumption against reasons),
* VSIDS-style variable activities kept in an indexed binary max-heap
  with lazy re-insertion on backtrack, plus phase saving,
* Luby-sequence restarts,
* glucose-style learned-clause database reduction: glue clauses
  (LBD <= ``glue_max``) are kept forever, the rest are ranked by
  (LBD, activity) under a geometrically growing limit,
* root-level inprocessing between restarts: bounded subsumption and
  self-subsumption over problem and learned clauses, occurrence-list
  based and deadline-bounded,
* bounded variable elimination (SatELite-style) at the root: a variable
  whose resolvent count does not outgrow its occurrence count is
  resolved away; the removed clauses go on an elimination stack used
  for model reconstruction, and any later mention of an eliminated
  variable (new clause or assumption) restores it transparently,
* clause vivification at the root: unit-propagation probing that
  shortens or removes irredundant and low-LBD learned clauses,
* chronological backtracking: conflicts whose assertion level is far
  below the conflict level backtrack a single level instead (the
  learned clause is still asserting there),
* rephasing schedules: the saved phases are periodically reset to the
  best-trail snapshot, inverted, original, or random targets on a
  geometrically growing conflict cadence,
* incremental solving under assumptions,
* conflict and time budgets so callers can implement timeouts
  (the paper stops each pebbling instance after a wall-clock budget);
  the wall clock is only consulted every few conflicts, so the hot
  loop does not pay a ``time.monotonic()`` call per iteration.

It is written in pure Python and optimised for the constant factors that
dominate CPython execution: hot loops cache attribute lookups in locals,
watcher lists are compacted in place instead of being rebuilt, and
propagation enqueues assignments inline.

Literal conventions
-------------------
The public API uses DIMACS literals.  Internally a literal ``l`` is encoded
as ``2*|l| + (l < 0)`` so that literals can index arrays directly and
negation is a single XOR.

Hot-state layout
----------------
Per-variable state lives in preallocated flat arenas grown in power-of-two
chunks rather than per-variable containers resized ad hoc: truth values in
one flat list indexed by encoded literal, decision levels / reasons / heap
positions / activities / saved phases and the trail in flat lists indexed
by variable, and analyze markers in a ``bytearray``.  Plain lists — not
``array`` typecodes — are deliberate: on CPython a list index costs ~1.5-2x
less than the same access on an ``array`` (small ints are cached, so the
stored references are free, and no per-access box/unbox happens), and at
these working-set sizes interpreter dispatch dominates cache behaviour.
Watcher lists are flat stride-2 lists
``[blocker, slot, blocker, slot, ...]`` — no tuple allocation per watcher —
compacted in place during propagation; ``_detach`` is O(1) amortised via
swap-remove on the flat layout.

Clause storage
--------------
Clauses live in a flat arena ``self._arena``: a list of clauses indexed by
*slot*.  Watcher lists, implication reasons, learned-clause activities and
LBD scores all refer to clauses by slot, so clause metadata is an array
access instead of an ``id()``-keyed dictionary lookup.  Slots of deleted
clauses are recycled through a free list.  Binary clauses are watched in
``self._bin_watches`` (the stored "blocker" is the only other literal, so
propagation resolves them without loading the arena); clauses of length
three and up are watched in ``self._watches``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.obs import trace as _trace
from repro.sat.cnf import Cnf


class Status(Enum):
    """Result status of a solver call."""

    SATISFIABLE = "sat"
    UNSATISFIABLE = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Counters describing the work performed by the solver.

    The ``lbd_*`` fields histogram the literal-blocks-distance of learned
    clauses at learn time: ``lbd_glue`` counts LBD <= 2, ``lbd_mid``
    counts 3..6, ``lbd_high`` counts >= 7, and ``lbd_sum`` accumulates the
    raw values so callers can derive the mean.  ``phase_times`` is only
    populated when the solver was constructed with ``profile=True``; it
    maps phase names (``propagate``/``analyze``/``reduce``/``inprocess``/
    ``bve``/``vivify``) to seconds spent in that phase during the last
    solve call (``bve`` and ``vivify`` are sub-slices of ``inprocess``).
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0
    solve_time: float = 0.0
    blocker_hits: int = 0
    heap_decisions: int = 0
    deadline_checks_skipped: int = 0
    lbd_glue: int = 0
    lbd_mid: int = 0
    lbd_high: int = 0
    lbd_sum: int = 0
    subsumed_clauses: int = 0
    strengthened_clauses: int = 0
    root_simplified: int = 0
    inprocessings: int = 0
    eliminated_variables: int = 0
    restored_variables: int = 0
    bve_resolvents: int = 0
    vivified_clauses: int = 0
    chrono_backtracks: int = 0
    rephases: int = 0
    phase_times: dict[str, float] | None = None

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary.

        ``phase_times`` is flattened into ``time_<phase>`` keys and only
        present when profiling was enabled (no zeros-as-lies).
        """
        data: dict[str, float] = {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
            "solve_time": self.solve_time,
            "blocker_hits": self.blocker_hits,
            "heap_decisions": self.heap_decisions,
            "deadline_checks_skipped": self.deadline_checks_skipped,
            "lbd_glue": self.lbd_glue,
            "lbd_mid": self.lbd_mid,
            "lbd_high": self.lbd_high,
            "lbd_sum": self.lbd_sum,
            "subsumed_clauses": self.subsumed_clauses,
            "strengthened_clauses": self.strengthened_clauses,
            "root_simplified": self.root_simplified,
            "inprocessings": self.inprocessings,
            "eliminated_variables": self.eliminated_variables,
            "restored_variables": self.restored_variables,
            "bve_resolvents": self.bve_resolvents,
            "vivified_clauses": self.vivified_clauses,
            "chrono_backtracks": self.chrono_backtracks,
            "rephases": self.rephases,
        }
        if self.phase_times is not None:
            for phase_name, seconds in self.phase_times.items():
                data[f"time_{phase_name}"] = seconds
        return data


@dataclass
class SolveResult:
    """Outcome of a :meth:`CdclSolver.solve` call.

    ``model`` maps every problem variable to a Boolean when the status is
    :attr:`Status.SATISFIABLE`, and is ``None`` otherwise.
    """

    status: Status
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        """``True`` when a satisfying assignment was found."""
        return self.status is Status.SATISFIABLE

    @property
    def is_unsat(self) -> bool:
        """``True`` when the formula was proven unsatisfiable."""
        return self.status is Status.UNSATISFIABLE

    @property
    def is_unknown(self) -> bool:
        """``True`` when the solver gave up (conflict/time budget)."""
        return self.status is Status.UNKNOWN


_UNASSIGNED = -1
_NO_REASON = -1
_NO_CONFLICT = -1

#: The wall clock is consulted once every this many main-loop iterations.
_DEADLINE_CHECK_INTERVAL = 64

#: Initial number of variable slots in the typed arenas.
_INITIAL_VAR_CAPACITY = 64

#: Wall-clock budget of a single inprocessing pass (seconds).
_INPROCESS_BUDGET = 0.3

#: A variable is a BVE candidate only when neither polarity occurs in
#: more than this many clauses (keeps the resolvent products small).
_BVE_OCC_LIMIT = 16

#: Variables whose elimination would create a resolvent longer than
#: this are skipped.
_BVE_CLAUSE_LIMIT = 24

#: Learned clauses with LBD above this are not worth vivifying.
_VIVIFY_LBD_LIMIT = 6

#: Rephasing mode cycle; ``best`` resets to the deepest-trail snapshot.
_REPHASE_CYCLE = ("best", "invert", "best", "random", "best", "original")


def _encode(literal: int) -> int:
    """DIMACS literal -> internal literal."""
    return (abs(literal) << 1) | (literal < 0)


def _decode(encoded: int) -> int:
    """Internal literal -> DIMACS literal."""
    variable = encoded >> 1
    return -variable if encoded & 1 else variable


def luby(index: int) -> int:
    """Return the ``index``-th element (1-based) of the Luby restart sequence.

    The sequence is 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
    """
    if index <= 0:
        raise SolverError("luby index must be >= 1")
    while True:
        k = 1
        while (1 << k) - 1 < index:
            k += 1
        if (1 << k) - 1 == index:
            return 1 << (k - 1)
        index -= (1 << (k - 1)) - 1


class CdclSolver:
    """Conflict-driven clause-learning SAT solver.

    Typical use::

        solver = CdclSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True

    The solver is incremental: more clauses may be added after a
    :meth:`solve` call and subsequent calls reuse learned clauses.
    Assumptions allow solving under temporary unit hypotheses without
    permanently adding them.  After an UNSAT answer under assumptions,
    :meth:`failed_assumptions` returns the subset of the assumptions that
    the final conflict analysis proved responsible (the solver's UNSAT
    core over the assumption literals), which is the backend surface the
    core-guided pebbling searches build on.

    ``glue_max`` bounds the LBD below which learned clauses are kept
    forever, ``inprocess_interval`` is the number of conflicts between
    root-level simplification passes (0 disables inprocessing), and
    ``profile=True`` records per-phase wall-clock splits in
    ``stats.phase_times``.

    The simplification/search knobs added by the round-three work:

    ``bve``
        enables bounded variable elimination during inprocessing.
        Eliminated variables are restored transparently when a later
        clause or assumption mentions them; :meth:`freeze` exempts
        named variables (the pebbling layer freezes its state and guard
        variables).  ``bve_grow`` is the number of extra resolvents an
        elimination may add beyond the clauses it removes.
    ``vivify``
        enables root-level clause vivification during inprocessing.
    ``chrono``
        jump-distance threshold for chronological backtracking: a
        conflict whose assertion level is more than ``chrono`` levels
        below the conflict level backtracks a single level instead.
        ``0`` disables.
    ``rephase``
        base conflict interval of the rephasing schedule (``0``
        disables): every interval the saved phases are reset to the
        best-trail snapshot / inverted / original / random targets, and
        the interval grows geometrically.
    """

    #: Registry name under :mod:`repro.sat.backend` (the native backend).
    name = "cdcl"

    def __init__(
        self,
        cnf: Cnf | None = None,
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
        restart_base: int = 100,
        clause_decay: float = 0.999,
        variable_decay: float = 0.95,
        random_seed: int = 2019,
        reduce_min_learned: int = 50,
        learned_limit_base: int = 1000,
        glue_max: int = 2,
        inprocess_interval: int = 3000,
        bve: bool = True,
        bve_grow: int = 0,
        vivify: bool = True,
        chrono: int = 100,
        rephase: int = 0,
        profile: bool = False,
    ) -> None:
        capacity = _INITIAL_VAR_CAPACITY
        self._num_vars = 0
        self._var_capacity = capacity
        # Truth values indexed by *encoded literal* (1 true, 0 false,
        # -1 unassigned): the propagation inner loop answers "is this
        # literal true?" with a single flat-list access.  Entries for
        # ``l`` and ``l ^ 1`` are kept complementary while assigned.
        # The hot per-variable state lives in preallocated flat *lists*
        # grown by doubling — on CPython a list indexing op is ~1.5-2x
        # cheaper than the same op on an ``array``/``bytearray`` (the
        # small-int cache makes the stored references free, and no
        # box/unbox conversion happens per access), and the interpreter
        # dispatch cost dwarfs cache effects at these sizes.
        self._lit_values: list[int] = [_UNASSIGNED] * (2 * capacity)
        # Indexed by variable (1-based).
        self._levels: list[int] = [0] * capacity
        self._reasons: list[int] = [_NO_REASON] * capacity
        self._activity: list[float] = [0.0] * capacity
        self._phase: list[int] = [0] * capacity
        self._seen = bytearray(capacity)
        # Variable-order heap: ``_heap`` holds variables in binary max-heap
        # order by activity, ``_heap_pos`` maps a variable to its heap index
        # (-1 when not enqueued).
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1] * capacity
        # Watcher lists indexed by encoded literal: flat stride-2 arrays
        # ``[blocker, slot, ...]``.  ``_watches`` holds clauses of length
        # >= 3; ``_bin_watches`` holds binary clauses, where the "blocker"
        # is the only other literal and implications resolve without
        # loading the arena.
        self._watches: list[list[int]] = [[] for _ in range(2 * capacity)]
        self._bin_watches: list[list[int]] = [[] for _ in range(2 * capacity)]
        # Flat clause arena indexed by slot; ``None`` marks a freed slot.
        self._arena: list[list[int] | None] = []
        self._clause_act: list[float] = []
        self._learned_flag: list[bool] = []
        self._lbd: list[int] = []
        self._learned_slots: list[int] = []
        self._free_slots: list[int] = []
        self._num_problem_clauses = 0
        # Preallocated trail: ``_trail[:_trail_size]`` holds the assigned
        # literals in assignment order (capacity tracks the variable
        # arenas — every variable is assigned at most once).
        self._trail: list[int] = [0] * capacity
        self._trail_size = 0
        self._trail_limits: list[int] = []
        self._propagation_head = 0
        self._var_inc = 1.0
        self._var_decay = variable_decay
        self._cla_inc = 1.0
        self._cla_decay = clause_decay
        self._restart_base = restart_base
        self._reduce_min_learned = reduce_min_learned
        self._learned_limit_base = learned_limit_base
        self._learned_limit = 0
        self._glue_max = glue_max
        self._glue_count = 0
        self._inprocess_interval = inprocess_interval
        self._total_conflicts = 0
        self._last_inprocess_conflicts = 0
        self._bve = bve
        self._bve_grow = bve_grow
        self._vivify = vivify
        self._chrono = chrono
        # Bounded variable elimination state: ``_eliminated`` marks
        # variables currently resolved away, ``_frozen`` marks variables
        # exempt from elimination, and ``_elim_stack`` records, per
        # eliminated variable, the removed irredundant clauses split by
        # polarity (encoded literals) — the substrate of both model
        # reconstruction and restore-on-mention.
        self._eliminated = bytearray(capacity)
        self._frozen = bytearray(capacity)
        self._elim_stack: list[tuple[int, list[list[int]], list[list[int]]]] = []
        self._current_assumption_vars: frozenset[int] | set[int] = frozenset()
        # Rephasing state: the saved-phase snapshot of the deepest trail
        # seen since the last rephase, and the geometric schedule.
        self._rephase_base = rephase
        self._rephase_interval = rephase
        self._rephase_next = rephase
        self._rephase_count = 0
        self._best_trail = 0
        self._best_phase: list[int] = [0] * capacity
        self._profile = profile
        self._ok = True
        self._pending_units: list[int] = []
        self.default_conflict_limit = conflict_limit
        self.default_time_limit = time_limit
        self.stats = SolverStats()
        self._rng_state = random_seed or 1
        self._failed_assumptions: list[int] | None = None
        if cnf is not None:
            self.add_cnf(cnf)

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Highest variable index known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of problem (non-learned) clauses."""
        return self._num_problem_clauses

    @property
    def num_learned_clauses(self) -> int:
        """Number of currently retained learned clauses."""
        return len(self._learned_slots)

    def _grow(self, min_variable: int) -> None:
        """Grow every per-variable arena so ``min_variable`` is indexable."""
        old = self._var_capacity
        new = old
        while new <= min_variable:
            new *= 2
        grow = new - old
        self._lit_values.extend([_UNASSIGNED] * (2 * grow))
        self._levels.extend([0] * grow)
        self._reasons.extend([_NO_REASON] * grow)
        self._activity.extend([0.0] * grow)
        self._phase.extend([0] * grow)
        self._seen.extend(bytes(grow))
        self._eliminated.extend(bytes(grow))
        self._frozen.extend(bytes(grow))
        self._best_phase.extend([0] * grow)
        self._heap_pos.extend((-1,) * grow)
        self._trail.extend((0,) * grow)
        self._watches.extend([] for _ in range(2 * grow))
        self._bin_watches.extend([] for _ in range(2 * grow))
        self._var_capacity = new

    def _ensure_var(self, variable: int) -> None:
        if variable <= self._num_vars:
            return
        if variable >= self._var_capacity:
            self._grow(variable)
        for fresh in range(self._num_vars + 1, variable + 1):
            self._heap_insert(fresh)
        self._num_vars = variable

    def add_variable(self) -> int:
        """Allocate a fresh variable and return its index."""
        self._ensure_var(self._num_vars + 1)
        return self._num_vars

    def add_cnf(self, cnf: Cnf) -> None:
        """Add every clause of ``cnf`` to the solver."""
        self._ensure_var(cnf.num_variables)
        for clause in cnf.clauses:
            self.add_clause(clause.literals)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; return ``False`` if the formula became trivially unsat.

        The clause is simplified: duplicate literals are merged and
        tautological clauses are dropped.
        """
        if not self._ok:
            return False
        # Single validation/dedup/tautology pass — this method is called
        # once per emitted frame clause by the incremental encoders, so
        # every redundant sweep over the literals shows up in profiles.
        seen: set[int] = set()
        clause: list[int] = []
        max_var = 0
        tautology = False
        for literal in literals:
            if type(literal) is not int or literal == 0:
                raise SolverError(f"invalid literal {literal!r}")
            if literal in seen:
                continue
            if -literal in seen:
                tautology = True
            seen.add(literal)
            variable = -literal if literal < 0 else literal
            if variable > max_var:
                max_var = variable
            clause.append(literal)
        if max_var > self._num_vars:
            self._ensure_var(max_var)
        if tautology:
            return True
        if self._elim_stack:
            # Restore-on-mention: a clause over an eliminated variable
            # invalidates its elimination, so the variable (and everything
            # eliminated after it) is put back before the clause lands.
            eliminated = self._eliminated
            for literal in clause:
                variable = -literal if literal < 0 else literal
                if eliminated[variable]:
                    self._restore_variable(variable)
            if not self._ok:
                return False
        # Root-level simplification: literals already false at decision
        # level 0 can never become true again, so they are dropped; a
        # literal true at level 0 satisfies the clause forever.  Without
        # this, a clause added incrementally over variables fixed by an
        # earlier solve call would watch permanently-false literals and
        # never propagate.
        lit_values = self._lit_values
        levels = self._levels
        encoded = []
        for literal in clause:
            enc = (literal + literal) if literal > 0 else (1 - literal - literal)
            value = lit_values[enc]
            if value >= 0 and levels[enc >> 1] == 0:
                if value == 1:
                    return True  # satisfied at the root level
                continue
            encoded.append(enc)
        if not encoded:
            self._ok = False
            return False
        if len(encoded) == 1:
            self._pending_units.append(_decode(encoded[0]))
            return True
        self._attach(encoded, learned=False)
        return True

    def _attach(self, encoded_clause: list[int], *, learned: bool, lbd: int = 0) -> int:
        """Store a clause in the arena and watch its first two literals.

        Returns the clause slot.  The blocker stored with each watcher is
        the *other* watched literal: when it is already true the clause is
        satisfied and propagation never needs to load the clause.
        """
        if self._free_slots:
            slot = self._free_slots.pop()
            self._arena[slot] = encoded_clause
            self._clause_act[slot] = self._cla_inc if learned else 0.0
            self._learned_flag[slot] = learned
            self._lbd[slot] = lbd
        else:
            slot = len(self._arena)
            self._arena.append(encoded_clause)
            self._clause_act.append(self._cla_inc if learned else 0.0)
            self._learned_flag.append(learned)
            self._lbd.append(lbd)
        self._watch_clause(encoded_clause, slot)
        if learned:
            self._learned_slots.append(slot)
            if lbd <= self._glue_max:
                self._glue_count += 1
        else:
            self._num_problem_clauses += 1
        return slot

    def _watch_clause(self, encoded_clause: list[int], slot: int) -> None:
        """Append the watcher pairs for ``encoded_clause`` at ``slot``."""
        first, second = encoded_clause[0], encoded_clause[1]
        lists = self._bin_watches if len(encoded_clause) == 2 else self._watches
        watch_list = lists[first ^ 1]
        watch_list.append(second)
        watch_list.append(slot)
        watch_list = lists[second ^ 1]
        watch_list.append(first)
        watch_list.append(slot)

    # ------------------------------------------------------------------
    # assignment handling
    # ------------------------------------------------------------------
    def _value_of(self, encoded: int) -> int:
        """Return 1 (true), 0 (false) or -1 (unassigned) for a literal."""
        return self._lit_values[encoded]

    def _enqueue(self, encoded: int, reason_slot: int = _NO_REASON) -> bool:
        lit_values = self._lit_values
        value = lit_values[encoded]
        if value != _UNASSIGNED:
            return value == 1
        variable = encoded >> 1
        lit_values[encoded] = 1
        lit_values[encoded ^ 1] = 0
        self._levels[variable] = len(self._trail_limits)
        self._reasons[variable] = reason_slot
        self._phase[variable] = (encoded & 1) ^ 1
        self._trail[self._trail_size] = encoded
        self._trail_size += 1
        return True

    def _propagate(self) -> int:
        """Unit propagation; return a conflicting clause slot or -1."""
        lit_values = self._lit_values
        levels = self._levels
        reasons = self._reasons
        phase = self._phase
        watches = self._watches
        bin_watches = self._bin_watches
        arena = self._arena
        trail = self._trail
        depth = len(self._trail_limits)
        propagations = 0
        blocker_hits = 0
        conflict = _NO_CONFLICT
        head = self._propagation_head
        size = self._trail_size
        while head < size:
            propagated = trail[head]
            head += 1
            propagations += 1
            # Binary pass: the stored "blocker" is the only other literal,
            # so the clause is satisfied, unit or conflicting right away
            # and the arena is never loaded.  Binary watchers are never
            # moved, so no compaction is needed.
            bin_list = bin_watches[propagated]
            pairs = iter(bin_list)
            for other, slot in zip(pairs, pairs):
                value = lit_values[other]
                if value > 0:
                    blocker_hits += 1
                    continue
                if value < 0:
                    lit_values[other] = 1
                    lit_values[other ^ 1] = 0
                    variable = other >> 1
                    levels[variable] = depth
                    reasons[variable] = slot
                    phase[variable] = (other & 1) ^ 1
                    trail[size] = other
                    size += 1
                    continue
                conflict = slot
                break
            if conflict >= 0:
                break
            watch_list = watches[propagated]
            total = len(watch_list)
            read = write = 0
            false_literal = propagated ^ 1
            while read < total:
                blocker = watch_list[read]
                value = lit_values[blocker]
                if value > 0:
                    # The cached blocker is true: the clause is satisfied
                    # without ever being loaded from the arena.  Until the
                    # first watcher relocates, write tracks read and the
                    # pair is already in place — no copy needed.
                    if write != read:
                        watch_list[write] = blocker
                        watch_list[write + 1] = watch_list[read + 1]
                    write += 2
                    read += 2
                    blocker_hits += 1
                    continue
                slot = watch_list[read + 1]
                read += 2
                clause = arena[slot]
                if clause[0] == false_literal:
                    clause[0] = clause[1]
                    clause[1] = false_literal
                first = clause[0]
                if first != blocker:
                    value = lit_values[first]
                    if value > 0:
                        watch_list[write] = first
                        watch_list[write + 1] = slot
                        write += 2
                        continue
                # Look for a new literal to watch (any non-false literal).
                found = False
                for position in range(2, len(clause)):
                    candidate = clause[position]
                    if lit_values[candidate] != 0:
                        clause[1] = candidate
                        clause[position] = false_literal
                        moved = watches[candidate ^ 1]
                        moved.append(first)
                        moved.append(slot)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting on ``first``.
                watch_list[write] = first
                watch_list[write + 1] = slot
                write += 2
                if value < 0:
                    lit_values[first] = 1
                    lit_values[first ^ 1] = 0
                    variable = first >> 1
                    levels[variable] = depth
                    reasons[variable] = slot
                    phase[variable] = (first & 1) ^ 1
                    trail[size] = first
                    size += 1
                else:
                    conflict = slot
                    # Preserve the unvisited tail with one C-level slice
                    # move instead of a Python copy loop.
                    if write != read:
                        watch_list[write : write + total - read] = (
                            watch_list[read:total]
                        )
                    write += total - read
                    read = total
                    break
            del watch_list[write:]
            if conflict >= 0:
                break
        self._trail_size = size
        # On a conflict the remaining trail entries are skipped: they were
        # all enqueued at the current decision depth, so the backjump that
        # follows removes them anyway.
        self._propagation_head = size if conflict >= 0 else head
        self.stats.propagations += propagations
        self.stats.blocker_hits += blocker_hits
        return conflict

    # ------------------------------------------------------------------
    # variable-order heap (indexed binary max-heap over activity)
    # ------------------------------------------------------------------
    def _heap_up(self, index: int) -> None:
        heap = self._heap
        position = self._heap_pos
        activity = self._activity
        variable = heap[index]
        score = activity[variable]
        while index > 0:
            parent_index = (index - 1) >> 1
            parent = heap[parent_index]
            if activity[parent] >= score:
                break
            heap[index] = parent
            position[parent] = index
            index = parent_index
        heap[index] = variable
        position[variable] = index

    def _heap_down(self, index: int) -> None:
        heap = self._heap
        position = self._heap_pos
        activity = self._activity
        size = len(heap)
        variable = heap[index]
        score = activity[variable]
        while True:
            child_index = 2 * index + 1
            if child_index >= size:
                break
            right_index = child_index + 1
            if right_index < size and activity[heap[right_index]] > activity[heap[child_index]]:
                child_index = right_index
            child = heap[child_index]
            if activity[child] <= score:
                break
            heap[index] = child
            position[child] = index
            index = child_index
        heap[index] = variable
        position[variable] = index

    def _heap_insert(self, variable: int) -> None:
        if self._heap_pos[variable] >= 0:
            return
        self._heap.append(variable)
        self._heap_pos[variable] = len(self._heap) - 1
        self._heap_up(len(self._heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        top = heap[0]
        self._heap_pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_down(0)
        return top

    def _heap_remove(self, variable: int) -> None:
        """Remove ``variable`` from the heap (used by variable elimination)."""
        index = self._heap_pos[variable]
        if index < 0:
            return
        heap = self._heap
        self._heap_pos[variable] = -1
        last = heap.pop()
        if index < len(heap):
            heap[index] = last
            self._heap_pos[last] = index
            self._heap_down(index)
            if self._heap_pos[last] == index:
                self._heap_up(index)

    # The heap is maintained incrementally — every unassigned variable is
    # always enqueued: ``_ensure_var`` inserts fresh variables, decisions
    # pop variables, and ``_backtrack`` lazily re-inserts whatever it
    # unassigns.  Variables assigned by propagation may linger in the heap;
    # ``_pick_branch_variable`` skips them when popped.  Eliminated
    # variables are removed outright and re-inserted on restore.

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_variable(self, variable: int) -> None:
        activity = self._activity
        activity[variable] += self._var_inc
        if activity[variable] > 1e100:
            # Rescaling multiplies every activity by the same factor, so the
            # heap order is unaffected.
            for index in range(1, self._num_vars + 1):
                activity[index] *= 1e-100
            self._var_inc *= 1e-100
        if self._heap_pos[variable] >= 0:
            self._heap_up(self._heap_pos[variable])

    def _decay_variable_activity(self) -> None:
        self._var_inc /= self._var_decay

    def _bump_clause(self, slot: int) -> None:
        if not self._learned_flag[slot]:
            return
        clause_act = self._clause_act
        clause_act[slot] += self._cla_inc
        if clause_act[slot] > 1e20:
            for other in self._learned_slots:
                clause_act[other] *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self._cla_inc /= self._cla_decay

    def _analyze(self, conflict_slot: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns the learned clause (encoded literals, asserting literal
        first), the backjump level, and the clause's literal-blocks-distance
        (the number of distinct decision levels among its literals).
        """
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        levels = self._levels
        reasons = self._reasons
        arena = self._arena
        trail = self._trail
        current_level = len(self._trail_limits)
        counter = 0
        literal = -1
        trail_index = self._trail_size - 1
        clause = arena[conflict_slot]
        self._bump_clause(conflict_slot)

        while True:
            assert clause is not None
            start = 0 if literal == -1 else 1
            for position in range(start, len(clause)):
                other = clause[position]
                variable = other >> 1
                if not seen[variable] and levels[variable] > 0:
                    seen[variable] = 1
                    self._bump_variable(variable)
                    if levels[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(other)
            # Pick the next literal from the trail to resolve on.
            while not seen[trail[trail_index] >> 1]:
                trail_index -= 1
            literal = trail[trail_index]
            trail_index -= 1
            variable = literal >> 1
            seen[variable] = 0
            counter -= 1
            if counter == 0:
                break
            reason_slot = reasons[variable]
            clause = arena[reason_slot] if reason_slot >= 0 else None
            if clause is not None:
                self._bump_clause(reason_slot)
                # When resolving, position 0 of the reason holds ``literal``
                # itself; make sure that is the case.
                if clause[0] != literal:
                    clause = [literal] + [lit for lit in clause if lit != literal]
        learned[0] = literal ^ 1

        # Recursive clause minimisation (MiniSat-style): drop every literal
        # whose negation is implied by the *rest* of the clause through a
        # chain of reason clauses.  ``abstract_levels`` is a 32-bit Bloom
        # filter over decision levels used to abort hopeless recursions
        # early.  ``seen`` markers double as the "in clause or proven
        # redundant" set; speculative marks are recorded in ``to_clear``.
        abstract_levels = 0
        for other in learned[1:]:
            abstract_levels |= 1 << (levels[other >> 1] & 31)
        to_clear: list[int] = []
        minimized = [learned[0]]
        for other in learned[1:]:
            if reasons[other >> 1] < 0 or not self._literal_redundant(
                other, abstract_levels, to_clear
            ):
                minimized.append(other)

        # Reset the 'seen' markers for every literal collected during the
        # analysis (including the ones dropped by minimisation), otherwise
        # stale markers corrupt the next conflict analysis.
        for other in learned:
            seen[other >> 1] = 0
        for variable in to_clear:
            seen[variable] = 0
        learned = minimized

        # Literal-blocks-distance: the number of distinct decision levels
        # in the minimised clause (the asserting literal contributes the
        # current level).  Glue clauses (lbd <= glue_max) are retained
        # forever by ``_reduce_learned``.
        distinct_levels = {current_level}
        for other in learned[1:]:
            distinct_levels.add(levels[other >> 1])
        lbd = len(distinct_levels)

        if len(learned) == 1:
            backjump_level = 0
        else:
            # Find the literal with the highest level below the current one
            # and move it to position 1 (it becomes the second watch).
            best_index = 1
            best_level = levels[learned[1] >> 1]
            for position in range(2, len(learned)):
                level = levels[learned[position] >> 1]
                if level > best_level:
                    best_level = level
                    best_index = position
            learned[1], learned[best_index] = learned[best_index], learned[1]
            backjump_level = best_level
        return learned, backjump_level, lbd

    def _literal_redundant(
        self, literal: int, abstract_levels: int, to_clear: list[int]
    ) -> bool:
        """Is ``literal`` implied by the other marked literals of the clause?

        Walks the implication graph backwards from ``literal``; every
        antecedent must eventually hit a literal that is already marked
        (in the learned clause / proven redundant) or assigned at level 0.
        Newly proven-redundant variables stay marked in ``seen`` (recorded
        in ``to_clear``) so later candidates reuse the work.
        """
        seen = self._seen
        levels = self._levels
        reasons = self._reasons
        arena = self._arena
        stack = [literal]
        top = len(to_clear)
        while stack:
            current = stack.pop()
            reason = arena[reasons[current >> 1]]
            assert reason is not None
            current_variable = current >> 1
            for other in reason:
                variable = other >> 1
                if variable == current_variable or seen[variable] or levels[variable] == 0:
                    continue
                if reasons[variable] < 0 or not (
                    (1 << (levels[variable] & 31)) & abstract_levels
                ):
                    # A decision literal, or one from a level with no
                    # representative in the clause: not redundant.  Undo the
                    # speculative marks made during this candidate's walk.
                    for marked in to_clear[top:]:
                        seen[marked] = 0
                    del to_clear[top:]
                    return False
                seen[variable] = 1
                to_clear.append(variable)
                stack.append(other)
        return True

    def _backtrack(self, level: int) -> None:
        if len(self._trail_limits) <= level:
            return
        limit = self._trail_limits[level]
        lit_values = self._lit_values
        reasons = self._reasons
        heap_pos = self._heap_pos
        trail = self._trail
        for index in range(self._trail_size - 1, limit - 1, -1):
            encoded = trail[index]
            variable = encoded >> 1
            lit_values[encoded] = _UNASSIGNED
            lit_values[encoded ^ 1] = _UNASSIGNED
            reasons[variable] = _NO_REASON
            # Lazy re-insertion: a variable popped off the heap during the
            # search becomes eligible again the moment it is unassigned.
            if heap_pos[variable] < 0:
                self._heap_insert(variable)
        self._trail_size = limit
        del self._trail_limits[level:]
        if self._propagation_head > limit:
            self._propagation_head = limit

    # ------------------------------------------------------------------
    # decision heuristics
    # ------------------------------------------------------------------
    def _random(self) -> float:
        # xorshift32: deterministic, cheap, good enough for tie-breaking.
        state = self._rng_state
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        self._rng_state = state & 0xFFFFFFFF
        return self._rng_state / 0xFFFFFFFF

    def _pick_branch_variable(self) -> int:
        """Pop unassigned variables with the highest activity off the heap."""
        lit_values = self._lit_values
        heap = self._heap
        while heap:
            variable = self._heap_pop()
            if lit_values[variable << 1] == _UNASSIGNED:
                self.stats.heap_decisions += 1
                return variable
        return 0

    # ------------------------------------------------------------------
    # learned clause database management
    # ------------------------------------------------------------------
    def _locked_slots(self) -> set[int]:
        """Slots currently serving as the reason of a trail assignment."""
        locked: set[int] = set()
        reasons = self._reasons
        trail = self._trail
        for index in range(self._trail_size):
            slot = reasons[trail[index] >> 1]
            if slot >= 0:
                locked.add(slot)
        return locked

    def _reduce_learned(self) -> None:
        """Glucose-style reduction: drop the worse half by (LBD, activity).

        Glue clauses (LBD <= ``glue_max``), binary clauses and clauses
        locked as reasons are never deleted.
        """
        learned_slots = self._learned_slots
        if len(learned_slots) < self._reduce_min_learned:
            return
        arena = self._arena
        lbd = self._lbd
        clause_act = self._clause_act
        glue_max = self._glue_max
        locked = self._locked_slots()
        candidates = [
            slot
            for slot in learned_slots
            if lbd[slot] > glue_max and slot not in locked and len(arena[slot]) > 2
        ]
        if len(candidates) < 2:
            return
        # Highest LBD first; ties broken by lowest activity first.
        candidates.sort(key=lambda slot: (-lbd[slot], clause_act[slot]))
        removed = set(candidates[: len(candidates) // 2])
        if not removed:
            return
        if len(removed) > 16:
            self._detach_batch(removed)
        else:
            for slot in removed:
                self._detach(slot)
        for slot in removed:
            self._free_slot(slot)
        self._learned_slots = [slot for slot in learned_slots if slot not in removed]
        self.stats.deleted_clauses += len(removed)
        if _trace.active():
            _trace.event(
                "solver.reduce",
                deleted=len(removed),
                kept=len(self._learned_slots),
                conflicts=self._total_conflicts,
            )

    def _free_slot(self, slot: int) -> None:
        """Release an (already detached) clause slot back to the free list."""
        if self._learned_flag[slot]:
            if self._lbd[slot] <= self._glue_max:
                self._glue_count -= 1
            self._learned_flag[slot] = False
        else:
            self._num_problem_clauses -= 1
        self._arena[slot] = None
        self._clause_act[slot] = 0.0
        self._lbd[slot] = 0
        self._free_slots.append(slot)

    def _promote(self, slot: int) -> None:
        """Make a learned clause irredundant (it subsumed a problem clause)."""
        if not self._learned_flag[slot]:
            return
        self._learned_flag[slot] = False
        if self._lbd[slot] <= self._glue_max:
            self._glue_count -= 1
        self._clause_act[slot] = 0.0
        self._num_problem_clauses += 1

    def _detach(self, slot: int) -> None:
        """Remove the two watcher pairs of ``slot`` (swap-remove, O(1) each)."""
        clause = self._arena[slot]
        assert clause is not None
        lists = self._bin_watches if len(clause) == 2 else self._watches
        for watch_literal in (clause[0] ^ 1, clause[1] ^ 1):
            watch_list = lists[watch_literal]
            for index in range(1, len(watch_list), 2):
                if watch_list[index] == slot:
                    watch_list[index - 1] = watch_list[-2]
                    watch_list[index] = watch_list[-1]
                    del watch_list[-2:]
                    break

    def _detach_batch(self, removed: set[int]) -> None:
        """Drop every watcher pair referencing a slot in ``removed``.

        One compacting sweep over all watch lists — cheaper than repeated
        ``_detach`` scans when a reduction removes many clauses at once.
        """
        for lists in (self._watches, self._bin_watches):
            for watch_list in lists:
                if not watch_list:
                    continue
                total = len(watch_list)
                write = 0
                for read in range(0, total, 2):
                    if watch_list[read + 1] not in removed:
                        watch_list[write] = watch_list[read]
                        watch_list[write + 1] = watch_list[read + 1]
                        write += 2
                if write != total:
                    del watch_list[write:]

    # ------------------------------------------------------------------
    # root-level inprocessing (subsumption + self-subsumption)
    # ------------------------------------------------------------------
    def _shrink_clause(self, slot: int, kept: list[int]) -> bool:
        """Replace the clause in ``slot`` with ``kept`` (no false literals).

        Handles re-watching, the unit and empty cases, and LBD/glue
        bookkeeping.  Returns ``False`` when the shrink proved the formula
        unsatisfiable.
        """
        self._detach(slot)
        if not kept:
            self._free_slot(slot)
            self._ok = False
            return False
        if len(kept) == 1:
            self._free_slot(slot)
            if not self._enqueue(kept[0]):
                self._ok = False
                return False
            return True
        self._arena[slot] = kept
        self._watch_clause(kept, slot)
        if self._learned_flag[slot]:
            new_lbd = min(self._lbd[slot], len(kept))
            if self._lbd[slot] > self._glue_max >= new_lbd:
                self._glue_count += 1
            self._lbd[slot] = new_lbd
        return True

    def _rebuild_learned_slots(self) -> None:
        self._learned_slots = [
            slot
            for slot in self._learned_slots
            if self._arena[slot] is not None and self._learned_flag[slot]
        ]

    def _inprocess(self, deadline: float | None) -> bool:
        """Bounded subsumption pass at decision level 0.

        Must only be called with an empty ``_trail_limits`` (every current
        assignment is a permanent root fact, so assumption machinery is
        untouched).  Runs three phases: root simplification (drop satisfied
        clauses, strip false literals), forward subsumption (``C ⊆ D``
        deletes ``D``; a learned subsumer of a problem clause is promoted
        to irredundant first), and self-subsumption
        (``(C \\ {l}) ⊆ D`` with ``¬l ∈ D`` strengthens ``D`` by ``¬l``).
        Returns ``False`` when the formula was proven unsatisfiable.
        """
        stats = self.stats
        arena = self._arena
        lit_values = self._lit_values
        reasons = self._reasons
        trail = self._trail
        learned_flag = self._learned_flag
        # Root facts never participate in conflict analysis again (their
        # level-0 variables are skipped by every implication-graph walk),
        # so their reason slots can be released.  This unlocks every clause
        # for simplification and guarantees no freed slot stays reachable
        # through ``_reasons``.
        for index in range(self._trail_size):
            reasons[trail[index] >> 1] = _NO_REASON

        # Phase 1: root simplification.
        for slot in range(len(arena)):
            clause = arena[slot]
            if clause is None:
                continue
            satisfied = False
            falsified = False
            for lit in clause:
                value = lit_values[lit]
                if value == 1:
                    satisfied = True
                    break
                if value == 0:
                    falsified = True
            if satisfied:
                self._detach(slot)
                self._free_slot(slot)
                stats.root_simplified += 1
            elif falsified:
                kept = [lit for lit in clause if lit_values[lit] != 0]
                if not self._shrink_clause(slot, kept):
                    self._rebuild_learned_slots()
                    return False
                stats.root_simplified += 1
        if self._propagate() != _NO_CONFLICT:
            self._rebuild_learned_slots()
            self._ok = False
            return False

        # Occurrence lists, 64-bit signatures and literal sets over the
        # live clauses.  Signatures give a cheap necessary condition for
        # the subset tests: ``sig(C) & ~sig(D) == 0`` whenever C ⊆ D.
        occur: dict[int, list[int]] = {}
        sigs: dict[int, int] = {}
        clause_sets: dict[int, set[int]] = {}
        live: list[int] = []
        for slot in range(len(arena)):
            clause = arena[slot]
            if clause is None:
                continue
            signature = 0
            for lit in clause:
                signature |= 1 << (lit & 63)
                occur.setdefault(lit, []).append(slot)
            sigs[slot] = signature
            clause_sets[slot] = set(clause)
            live.append(slot)
        # Shortest clauses subsume the most; process them first so the
        # deadline cuts off the least profitable work.
        live.sort(key=lambda slot: len(clause_sets[slot]))

        monotonic = time.monotonic
        for processed, c_slot in enumerate(live):
            if deadline is not None and processed % 32 == 31 and monotonic() > deadline:
                break
            if arena[c_slot] is None:
                continue
            c_set = clause_sets[c_slot]
            c_sig = sigs[c_slot]
            c_len = len(c_set)
            # Phase 2: forward subsumption through the rarest literal of C
            # (every superset of C must contain it).
            rare = min(c_set, key=lambda lit: len(occur.get(lit, ())))
            for d_slot in occur.get(rare, ()):
                if d_slot == c_slot or arena[d_slot] is None:
                    continue
                d_set = clause_sets[d_slot]
                if len(d_set) < c_len or (c_sig & ~sigs[d_slot]):
                    continue
                if c_set <= d_set:
                    if learned_flag[c_slot] and not learned_flag[d_slot]:
                        # Keeping only the learned subsumer would weaken the
                        # formula if a later reduction deleted it; make it
                        # irredundant first.
                        self._promote(c_slot)
                    self._detach(d_slot)
                    self._free_slot(d_slot)
                    stats.subsumed_clauses += 1
            # Phase 3: self-subsumption — resolving C and D on l yields a
            # clause that subsumes D, so D can drop ¬l.
            for lit in list(c_set):
                negated = lit ^ 1
                rest_sig = c_sig & ~(1 << (lit & 63))
                for d_slot in occur.get(negated, ()):
                    if d_slot == c_slot:
                        continue
                    clause_d = arena[d_slot]
                    if clause_d is None:
                        continue
                    d_set = clause_sets[d_slot]
                    if negated not in d_set:
                        continue  # stale occurrence left by a strengthening
                    if len(d_set) < c_len or (rest_sig & ~sigs[d_slot]):
                        continue
                    if not (c_set - {lit}) <= d_set:
                        continue
                    kept = []
                    satisfied = False
                    for other in clause_d:
                        if other == negated:
                            continue
                        value = lit_values[other]
                        if value == 1:
                            satisfied = True
                            break
                        if value != 0:
                            kept.append(other)
                    if satisfied:
                        # A root unit enqueued earlier in this pass already
                        # satisfies D; drop it instead of strengthening.
                        self._detach(d_slot)
                        self._free_slot(d_slot)
                        stats.root_simplified += 1
                        continue
                    if not self._shrink_clause(d_slot, kept):
                        self._rebuild_learned_slots()
                        return False
                    stats.strengthened_clauses += 1
                    if arena[d_slot] is not None:
                        remaining = set(arena[d_slot])
                        clause_sets[d_slot] = remaining
                        signature = 0
                        for other in remaining:
                            signature |= 1 << (other & 63)
                        sigs[d_slot] = signature
        # Phase 4/5: bounded variable elimination, then vivification.
        # Both share the pass deadline; their profile times are sub-slices
        # of the enclosing ``inprocess`` phase.
        phase_times = stats.phase_times
        perf = time.perf_counter
        if self._bve:
            mark = perf() if phase_times is not None else 0.0
            bve_ok = self._bve_pass(deadline)
            if phase_times is not None:
                phase_times["bve"] += perf() - mark
            if not bve_ok:
                self._rebuild_learned_slots()
                return False
        if self._vivify:
            mark = perf() if phase_times is not None else 0.0
            vivify_ok = self._vivify_pass(deadline)
            if phase_times is not None:
                phase_times["vivify"] += perf() - mark
            if not vivify_ok:
                self._rebuild_learned_slots()
                return False
        self._rebuild_learned_slots()
        stats.inprocessings += 1
        if _trace.active():
            _trace.event(
                "solver.inprocess",
                pass_number=stats.inprocessings,
                subsumed=stats.subsumed_clauses,
                strengthened=stats.strengthened_clauses,
                root_simplified=stats.root_simplified,
                eliminated=stats.eliminated_variables,
                vivified=stats.vivified_clauses,
            )
        return True

    # ------------------------------------------------------------------
    # bounded variable elimination
    # ------------------------------------------------------------------
    def freeze(self, variables: Iterable[int]) -> None:
        """Exempt ``variables`` from elimination, restoring them if needed.

        The pebbling layer freezes every named state variable and every
        assumption guard; anything else (cardinality ladders, move
        auxiliaries) remains fair game for BVE.  Accepts variables or
        literals (the sign is ignored).
        """
        for literal in variables:
            variable = -literal if literal < 0 else literal
            if variable == 0:
                raise SolverError("cannot freeze variable 0")
            self._ensure_var(variable)
            self._frozen[variable] = 1
            if self._eliminated[variable]:
                self._restore_variable(variable)

    def _restore_variable(self, variable: int) -> None:
        """Undo eliminations until ``variable`` is live again.

        Entries are popped off the elimination stack in reverse order;
        a stored clause only ever references variables eliminated later
        (already restored by the time it is re-attached) or never, so
        suffix-popping re-creates an equivalent formula.
        """
        stack = self._elim_stack
        eliminated = self._eliminated
        while stack and eliminated[variable]:
            entry_var, pos_clauses, neg_clauses = stack.pop()
            eliminated[entry_var] = 0
            self._heap_insert(entry_var)
            self.stats.restored_variables += 1
            for encoded_clause in pos_clauses:
                self._reattach_stored(encoded_clause)
            for encoded_clause in neg_clauses:
                self._reattach_stored(encoded_clause)

    def _reattach_stored(self, encoded_clause: list[int]) -> None:
        """Re-add a stored clause, simplifying against current root facts."""
        lit_values = self._lit_values
        levels = self._levels
        kept: list[int] = []
        for enc in encoded_clause:
            value = lit_values[enc]
            if value >= 0 and levels[enc >> 1] == 0:
                if value == 1:
                    return  # satisfied at the root level
                continue
            kept.append(enc)
        if not kept:
            self._ok = False
            return
        if len(kept) == 1:
            if not self._enqueue(kept[0]):
                self._ok = False
            return
        self._attach(kept, learned=False)

    def _bve_pass(self, deadline: float | None) -> bool:
        """Bounded variable elimination at decision level 0.

        A variable is eliminated when the set of non-tautological
        resolvents of its irredundant occurrences is no larger than the
        clauses removed (plus ``bve_grow``).  Learned clauses over the
        variable are deleted outright — they stay implied by the
        remaining formula, but resolving them would bloat the output.
        Frozen variables, current assumptions and root-assigned
        variables are never touched.  Returns ``False`` on UNSAT.
        """
        arena = self._arena
        lit_values = self._lit_values
        learned_flag = self._learned_flag
        eliminated = self._eliminated
        frozen = self._frozen
        assumption_vars = self._current_assumption_vars
        stats = self.stats
        occur: dict[int, list[int]] = {}
        for slot in range(len(arena)):
            clause = arena[slot]
            if clause is None:
                continue
            for lit in clause:
                occur.setdefault(lit, []).append(slot)
        candidates: list[tuple[int, int]] = []
        for variable in range(1, self._num_vars + 1):
            if eliminated[variable] or frozen[variable]:
                continue
            if variable in assumption_vars:
                continue
            if lit_values[variable << 1] != _UNASSIGNED:
                continue
            num_pos = len(occur.get(variable << 1, ()))
            num_neg = len(occur.get((variable << 1) | 1, ()))
            if num_pos + num_neg == 0:
                continue
            if num_pos > _BVE_OCC_LIMIT or num_neg > _BVE_OCC_LIMIT:
                continue
            candidates.append((num_pos * num_neg, variable))
        candidates.sort()
        monotonic = time.monotonic
        units: list[int] = []
        for processed, (_, variable) in enumerate(candidates):
            if deadline is not None and processed % 8 == 7 and monotonic() > deadline:
                break
            if lit_values[variable << 1] != _UNASSIGNED:
                continue
            plit = variable << 1
            nlit = plit | 1
            # Occurrence lists go stale as eliminations delete clauses and
            # attach resolvents into recycled slots, so membership is
            # re-checked against the arena; a recycled slot can appear
            # twice in a list (old clause and resolvent sharing a
            # literal), hence the order-preserving dedup.
            pos_slots = [
                slot
                for slot in dict.fromkeys(occur.get(plit, ()))
                if arena[slot] is not None and plit in arena[slot]
            ]
            neg_slots = [
                slot
                for slot in dict.fromkeys(occur.get(nlit, ()))
                if arena[slot] is not None and nlit in arena[slot]
            ]
            pos_irr = [slot for slot in pos_slots if not learned_flag[slot]]
            neg_irr = [slot for slot in neg_slots if not learned_flag[slot]]
            limit = len(pos_irr) + len(neg_irr) + self._bve_grow
            resolvents: list[list[int]] = []
            too_many = False
            for p_slot in pos_irr:
                p_clause = arena[p_slot]
                assert p_clause is not None
                p_rest = [lit for lit in p_clause if lit != plit]
                for n_slot in neg_irr:
                    n_clause = arena[n_slot]
                    assert n_clause is not None
                    resolved = list(p_rest)
                    merged = set(p_rest)
                    tautology = False
                    for lit in n_clause:
                        if lit == nlit:
                            continue
                        if lit ^ 1 in merged:
                            tautology = True
                            break
                        if lit not in merged:
                            merged.add(lit)
                            resolved.append(lit)
                    if tautology:
                        continue
                    if len(resolved) > _BVE_CLAUSE_LIMIT:
                        too_many = True
                        break
                    resolvents.append(resolved)
                    if len(resolvents) > limit:
                        too_many = True
                        break
                if too_many:
                    break
            if too_many:
                continue
            # Commit: store the irredundant originals, drop everything
            # mentioning the variable, attach the resolvents.
            stored_pos = [list(arena[slot]) for slot in pos_irr]  # type: ignore[arg-type]
            stored_neg = [list(arena[slot]) for slot in neg_irr]  # type: ignore[arg-type]
            for slot in pos_slots:
                self._detach(slot)
                self._free_slot(slot)
            for slot in neg_slots:
                self._detach(slot)
                self._free_slot(slot)
            eliminated[variable] = 1
            self._heap_remove(variable)
            self._elim_stack.append((variable, stored_pos, stored_neg))
            stats.eliminated_variables += 1
            for resolved in resolvents:
                kept: list[int] = []
                satisfied = False
                for lit in resolved:
                    value = lit_values[lit]
                    if value == 1:
                        satisfied = True
                        break
                    if value == 0:
                        continue
                    kept.append(lit)
                if satisfied:
                    continue
                if not kept:
                    self._ok = False
                    return False
                if len(kept) == 1:
                    if not self._enqueue(kept[0]):
                        self._ok = False
                        return False
                    units.append(kept[0])
                    continue
                slot = self._attach(kept, learned=False)
                for lit in kept:
                    occur.setdefault(lit, []).append(slot)
                stats.bve_resolvents += 1
        if units and self._propagate() != _NO_CONFLICT:
            self._ok = False
            return False
        return True

    # ------------------------------------------------------------------
    # clause vivification
    # ------------------------------------------------------------------
    def _vivify_pass(self, deadline: float | None) -> bool:
        """Unit-propagation probing that shortens clauses at the root.

        For each candidate clause (irredundant, or learned with LBD <=
        ``_VIVIFY_LBD_LIMIT``), the clause is detached and the negations
        of its literals are asserted one decision level at a time:

        * a conflict proves the assumed prefix plus the current literal
          already forms a clause — the rest is dropped;
        * a literal implied true closes the clause the same way;
        * a literal implied false is redundant and removed.

        The probe uses every clause in the database (learned included),
        which is sound even for strengthening irredundant clauses: the
        shortened clause is implied by the formula, and the original is
        subsumed by it.  Returns ``False`` on UNSAT.
        """
        arena = self._arena
        lit_values = self._lit_values
        learned_flag = self._learned_flag
        lbd = self._lbd
        stats = self.stats
        candidates = [
            slot
            for slot in range(len(arena))
            if arena[slot] is not None
            and len(arena[slot]) >= 3  # type: ignore[arg-type]
            and (not learned_flag[slot] or lbd[slot] <= _VIVIFY_LBD_LIMIT)
        ]
        monotonic = time.monotonic
        for processed, slot in enumerate(candidates):
            if deadline is not None and processed % 4 == 3 and monotonic() > deadline:
                break
            clause = arena[slot]
            if clause is None or len(clause) < 3:
                continue
            lits = list(clause)
            self._detach(slot)
            assumed: list[int] = []
            new_lits: list[int] | None = None
            satisfied_root = False
            for enc in lits:
                value = lit_values[enc]
                if value == 1:
                    # Implied by the negated prefix; at an empty prefix the
                    # clause is satisfied at the root outright.
                    if assumed:
                        new_lits = assumed + [enc]
                    else:
                        satisfied_root = True
                    break
                if value == 0:
                    continue  # redundant under the prefix: drop it
                assumed.append(enc)
                self._trail_limits.append(self._trail_size)
                self._enqueue(enc ^ 1)
                if self._propagate() != _NO_CONFLICT:
                    new_lits = list(assumed)
                    break
            self._backtrack(0)
            if satisfied_root:
                self._free_slot(slot)
                stats.root_simplified += 1
            else:
                if new_lits is None:
                    new_lits = assumed
                if len(new_lits) >= len(lits):
                    # Nothing learned: put the original watchers back.
                    self._watch_clause(lits, slot)
                else:
                    self._watch_clause(lits, slot)
                    if not self._shrink_clause(slot, new_lits):
                        return False
                    stats.vivified_clauses += 1
            # Keep level-0 propagation complete before the next probe —
            # a shrink may have enqueued a fresh root unit.
            if self._propagate() != _NO_CONFLICT:
                self._ok = False
                return False
        return True

    # ------------------------------------------------------------------
    # rephasing
    # ------------------------------------------------------------------
    def _apply_rephase(self) -> None:
        """Reset saved phases per the schedule and restart the cadence."""
        mode = _REPHASE_CYCLE[self._rephase_count % len(_REPHASE_CYCLE)]
        phase = self._phase
        count = self._num_vars + 1
        if mode == "best":
            if self._best_trail > 0:
                phase[1:count] = self._best_phase[1:count]
        elif mode == "invert":
            for variable in range(1, count):
                phase[variable] ^= 1
        elif mode == "original":
            for variable in range(1, count):
                phase[variable] = 0
        else:  # random
            random = self._random
            for variable in range(1, count):
                phase[variable] = 1 if random() < 0.5 else 0
        self._rephase_count += 1
        self._rephase_interval = int(self._rephase_interval * 1.5) + 1
        self._rephase_next = self._total_conflicts + self._rephase_interval
        self._best_trail = 0
        self.stats.rephases += 1
        if _trace.active():
            _trace.event(
                "solver.rephase",
                mode=mode,
                count=self._rephase_count,
                next_interval=self._rephase_interval,
                conflicts=self._total_conflicts,
            )

    # ------------------------------------------------------------------
    # explicit simplification entry point
    # ------------------------------------------------------------------
    def simplify(self, budget: float = _INPROCESS_BUDGET) -> bool:
        """Run one root-level inprocessing pass immediately.

        Equivalent to what :meth:`solve` triggers every
        ``inprocess_interval`` conflicts, minus the conflict counting.
        Returns ``False`` when the pass proved the formula UNSAT.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        for literal in self._pending_units:
            if not self._enqueue(_encode(literal)):
                self._ok = False
                return False
        self._pending_units.clear()
        if self._propagate() != _NO_CONFLICT:
            self._ok = False
            return False
        self._current_assumption_vars = frozenset()
        if not self._inprocess(time.monotonic() + budget):
            self._ok = False
            return False
        return True

    # ------------------------------------------------------------------
    # debug invariants (test support)
    # ------------------------------------------------------------------
    def _debug_check_watches(self) -> None:
        """Assert the watcher invariants; raises AssertionError on violation.

        Every live clause must be watched exactly twice — on the negations
        of its first two literals, in the binary lists for binary clauses
        and in the long lists otherwise — and no watcher pair may reference
        a freed slot.  Test helper; not called from the hot path.
        """
        counts: dict[int, int] = {}
        for literal, watch_list in enumerate(self._watches):
            if len(watch_list) % 2:
                raise AssertionError(f"odd watch list length at literal {literal}")
            for index in range(0, len(watch_list), 2):
                slot = watch_list[index + 1]
                clause = self._arena[slot]
                if clause is None:
                    raise AssertionError(f"watcher references freed slot {slot}")
                if len(clause) == 2:
                    raise AssertionError(f"binary clause {slot} in long watch list")
                if (literal ^ 1) not in (clause[0], clause[1]):
                    raise AssertionError(
                        f"slot {slot} watched on literal {literal ^ 1} "
                        "which is not in its first two positions"
                    )
                counts[slot] = counts.get(slot, 0) + 1
        for literal, watch_list in enumerate(self._bin_watches):
            if len(watch_list) % 2:
                raise AssertionError(f"odd binary watch list length at literal {literal}")
            for index in range(0, len(watch_list), 2):
                slot = watch_list[index + 1]
                clause = self._arena[slot]
                if clause is None:
                    raise AssertionError(f"binary watcher references freed slot {slot}")
                if len(clause) != 2:
                    raise AssertionError(f"non-binary clause {slot} in binary watch list")
                if (literal ^ 1) not in clause or watch_list[index] not in clause:
                    raise AssertionError(f"binary watcher of slot {slot} is inconsistent")
                counts[slot] = counts.get(slot, 0) + 1
        for slot, clause in enumerate(self._arena):
            expected = 0 if clause is None else 2
            actual = counts.get(slot, 0)
            if actual != expected:
                raise AssertionError(
                    f"slot {slot} watched {actual} times, expected {expected}"
                )

    # ------------------------------------------------------------------
    # main search loop
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        conflict_limit: int | None = None,
        time_limit: float | None = None,
    ) -> SolveResult:
        """Solve the current formula, optionally under assumptions.

        ``conflict_limit`` and ``time_limit`` bound the search; when either
        budget is exhausted the result status is :attr:`Status.UNKNOWN`.
        """
        start_time = time.monotonic()
        stats = self.stats = SolverStats()
        conflict_limit = conflict_limit if conflict_limit is not None else self.default_conflict_limit
        time_limit = time_limit if time_limit is not None else self.default_time_limit
        profile = self._profile
        phase_times: dict[str, float] | None = None
        if profile:
            phase_times = {
                "propagate": 0.0,
                "analyze": 0.0,
                "reduce": 0.0,
                "inprocess": 0.0,
                "bve": 0.0,
                "vivify": 0.0,
            }
            stats.phase_times = phase_times
        perf = time.perf_counter
        # Every UNSAT exit below records its assumption core first; paths
        # where the formula alone is contradictory record the empty core.
        self._failed_assumptions = None

        if not self._ok:
            self._failed_assumptions = []
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        # Start from a clean assignment (incremental interface keeps
        # clauses, not the trail).
        self._backtrack(0)
        if self._elim_stack:
            # Assumptions over eliminated variables void their
            # eliminations (restore-on-mention keeps cores sound).
            eliminated = self._eliminated
            for literal in assumptions:
                variable = -literal if literal < 0 else literal
                if variable <= self._num_vars and eliminated[variable]:
                    self._restore_variable(variable)
            if not self._ok:
                self._failed_assumptions = []
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNSATISFIABLE, None, stats)
        self._current_assumption_vars = {
            -literal if literal < 0 else literal for literal in assumptions
        }
        for literal in self._pending_units:
            if not self._enqueue(_encode(literal)):
                self._ok = False
                self._failed_assumptions = []
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNSATISFIABLE, None, stats)
        self._pending_units.clear()
        if self._propagate() != _NO_CONFLICT:
            self._ok = False
            self._failed_assumptions = []
            stats.solve_time = time.monotonic() - start_time
            return SolveResult(Status.UNSATISFIABLE, None, stats)

        encoded_assumptions = [_encode(literal) for literal in assumptions]
        for literal in assumptions:
            self._ensure_var(abs(literal))

        restart_count = 0
        conflicts_until_restart = self._restart_base * luby(restart_count + 1)
        conflicts_since_restart = 0
        # The learned-clause limit grows geometrically across reductions
        # and persists across solve calls; glue clauses are exempt from
        # both the trigger and the deletion.
        self._learned_limit = max(
            self._learned_limit, self._learned_limit_base, self.num_clauses // 2
        )
        iterations = 0

        while True:
            iterations += 1
            if time_limit is not None:
                # Deadline batching: the monotonic clock is read on the
                # first iteration and then once every
                # ``_DEADLINE_CHECK_INTERVAL`` iterations.
                if iterations % _DEADLINE_CHECK_INTERVAL == 1:
                    if (time.monotonic() - start_time) > time_limit:
                        self._backtrack(0)
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNKNOWN, None, stats)
                else:
                    stats.deadline_checks_skipped += 1
            if conflict_limit is not None and stats.conflicts >= conflict_limit:
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.UNKNOWN, None, stats)

            if profile:
                mark = perf()
                conflict_slot = self._propagate()
                phase_times["propagate"] += perf() - mark
            else:
                conflict_slot = self._propagate()
            if conflict_slot != _NO_CONFLICT:
                stats.conflicts += 1
                self._total_conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_limits:
                    # Conflict at decision level 0: the trail below the first
                    # pseudo-decision only ever holds formula-derived facts,
                    # so the formula alone is contradictory (empty core) and
                    # every future call is conclusive too.
                    self._failed_assumptions = []
                    self._ok = False
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                if profile:
                    mark = perf()
                    learned, backjump_level, lbd_value = self._analyze(conflict_slot)
                    phase_times["analyze"] += perf() - mark
                else:
                    learned, backjump_level, lbd_value = self._analyze(conflict_slot)
                current_level = len(self._trail_limits)
                if (
                    self._chrono > 0
                    and len(learned) > 1
                    and current_level - backjump_level > self._chrono
                ):
                    # Chronological backtracking: undo only the conflicting
                    # level.  Every non-asserting literal of the learned
                    # clause lives at a level <= backjump_level, so the
                    # clause is still unit at ``current_level - 1``.
                    stats.chrono_backtracks += 1
                    self._backtrack(current_level - 1)
                else:
                    self._backtrack(backjump_level)
                stats.lbd_sum += lbd_value
                if lbd_value <= 2:
                    stats.lbd_glue += 1
                elif lbd_value <= 6:
                    stats.lbd_mid += 1
                else:
                    stats.lbd_high += 1
                if len(learned) == 1:
                    if not self._enqueue(learned[0]):
                        # Learned units are implied by the formula alone.
                        self._ok = False
                        self._failed_assumptions = []
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNSATISFIABLE, None, stats)
                    self._pending_units.append(_decode(learned[0]))
                else:
                    slot = self._attach(learned, learned=True, lbd=lbd_value)
                    stats.learned_clauses += 1
                    self._enqueue(learned[0], slot)
                self._decay_variable_activity()
                self._decay_clause_activity()
                if len(self._learned_slots) - self._glue_count > self._learned_limit:
                    if profile:
                        mark = perf()
                        self._reduce_learned()
                        phase_times["reduce"] += perf() - mark
                    else:
                        self._reduce_learned()
                    self._learned_limit = int(self._learned_limit * 1.3) + 1
                continue

            if self._rephase_base > 0 and self._trail_size > self._best_trail:
                # Deepest trail since the last rephase: snapshot the saved
                # phases as the "best" target.
                self._best_trail = self._trail_size
                self._best_phase[:] = self._phase

            if conflicts_since_restart >= conflicts_until_restart:
                restart_count += 1
                stats.restarts += 1
                conflicts_since_restart = 0
                conflicts_until_restart = self._restart_base * luby(restart_count + 1)
                self._backtrack(0)
                if self._rephase_base > 0 and self._total_conflicts >= self._rephase_next:
                    self._apply_rephase()
                if _trace.active():
                    _trace.event(
                        "solver.restart",
                        restart=restart_count,
                        conflicts=self._total_conflicts,
                        next_interval=conflicts_until_restart,
                    )
                if (
                    self._inprocess_interval > 0
                    and self._total_conflicts - self._last_inprocess_conflicts
                    >= self._inprocess_interval
                ):
                    self._last_inprocess_conflicts = self._total_conflicts
                    budget = _INPROCESS_BUDGET
                    if time_limit is not None:
                        remaining = time_limit - (time.monotonic() - start_time)
                        if remaining <= 0.05:
                            continue
                        budget = min(budget, 0.5 * remaining)
                    inprocess_deadline = time.monotonic() + budget
                    if profile:
                        mark = perf()
                        inprocess_ok = self._inprocess(inprocess_deadline)
                        phase_times["inprocess"] += perf() - mark
                    else:
                        inprocess_ok = self._inprocess(inprocess_deadline)
                    if not inprocess_ok:
                        self._ok = False
                        self._failed_assumptions = []
                        stats.solve_time = time.monotonic() - start_time
                        return SolveResult(Status.UNSATISFIABLE, None, stats)
                continue

            # Place pending assumptions as pseudo-decisions.
            next_assumption = self._next_unassigned_assumption(encoded_assumptions)
            if next_assumption is not None:
                value = self._lit_values[next_assumption]
                if value == 0:
                    # The core must be read off the implication graph before
                    # backtracking tears the trail down.
                    self._failed_assumptions = self._analyze_final(next_assumption)
                    self._backtrack(0)
                    stats.solve_time = time.monotonic() - start_time
                    return SolveResult(Status.UNSATISFIABLE, None, stats)
                self._trail_limits.append(self._trail_size)
                self._enqueue(next_assumption)
                continue

            variable = self._pick_branch_variable()
            if variable == 0:
                model = self._extract_model()
                self._backtrack(0)
                stats.solve_time = time.monotonic() - start_time
                return SolveResult(Status.SATISFIABLE, model, stats)
            stats.decisions += 1
            self._trail_limits.append(self._trail_size)
            if len(self._trail_limits) > stats.max_decision_level:
                stats.max_decision_level = len(self._trail_limits)
            encoded = (variable << 1) | (self._phase[variable] ^ 1)
            self._enqueue(encoded)

    def _analyze_final(self, failed: int) -> list[int]:
        """Assumption literals whose conjunction the search refuted.

        ``failed`` is the encoded assumption found false while placing
        assumptions.  Walking the implication graph backwards from its
        (true) negation, every pseudo-decision reached is an assumption
        that contributed to the refutation — real decisions cannot appear,
        because assumptions are (re)placed before any branching decision
        is made.  The returned DIMACS literals are a subset of the passed
        assumptions, and the formula conjoined with them is unsatisfiable
        (the minimisation is the conflict-analysis restriction itself; the
        core is not guaranteed to be subset-minimal).
        """
        core = [_decode(failed)]
        variable = failed >> 1
        levels = self._levels
        if levels[variable] == 0:
            # The negation is a root-level fact of the formula: the failed
            # assumption alone is already contradictory.
            return core
        seen = self._seen
        reasons = self._reasons
        arena = self._arena
        trail = self._trail
        seen[variable] = 1
        marked = [variable]
        for index in range(self._trail_size - 1, -1, -1):
            encoded = trail[index]
            trail_variable = encoded >> 1
            if not seen[trail_variable]:
                continue
            reason_slot = reasons[trail_variable]
            if reason_slot < 0:
                # A pseudo-decision above level 0 is an assumption; its
                # assigned polarity is the assumed literal itself (covers
                # contradictory assumption pairs too).
                if levels[trail_variable] > 0:
                    core.append(_decode(encoded))
            else:
                reason = arena[reason_slot]
                assert reason is not None
                for other in reason:
                    other_variable = other >> 1
                    if (
                        other_variable != trail_variable
                        and levels[other_variable] > 0
                        and not seen[other_variable]
                    ):
                        seen[other_variable] = 1
                        marked.append(other_variable)
        for cleared in marked:
            seen[cleared] = 0
        return core

    def failed_assumptions(self) -> list[int]:
        """The assumption core of the most recent UNSAT :meth:`solve` call.

        The returned literals are a subset of the assumptions passed to
        that call, and adding them to the formula as units makes it
        unsatisfiable; an empty list means the formula is unsatisfiable on
        its own.  Raises :class:`~repro.errors.SolverError` when the last
        call did not return UNSAT.
        """
        if self._failed_assumptions is None:
            raise SolverError(
                "failed_assumptions() is only defined after an UNSAT solve() call"
            )
        return list(self._failed_assumptions)

    def counters(self) -> dict[str, float]:
        """Counters of the most recent solve (the full CDCL counter set)."""
        return self.stats.as_dict()

    def _next_unassigned_assumption(self, encoded_assumptions: list[int]) -> int | None:
        for encoded in encoded_assumptions:
            value = self._lit_values[encoded]
            if value == _UNASSIGNED or value == 0:
                return encoded
        return None

    def _extract_model(self) -> dict[int, bool]:
        model: dict[int, bool] = {}
        lit_values = self._lit_values
        phase = self._phase
        for variable in range(1, self._num_vars + 1):
            value = lit_values[variable << 1]
            model[variable] = bool(value) if value != _UNASSIGNED else bool(phase[variable])
        # Model reconstruction for eliminated variables, newest first: a
        # stored clause only references variables eliminated later (already
        # reconstructed) or never, and since every resolvent is satisfied,
        # one of the two polarities must satisfy all stored clauses —
        # default to False (every negative occurrence is happy) and flip
        # only when a positive-occurrence clause would otherwise be unsat.
        for variable, pos_clauses, _neg_clauses in reversed(self._elim_stack):
            model[variable] = False
            for clause in pos_clauses:
                satisfied = False
                for enc in clause:
                    other = enc >> 1
                    if other == variable:
                        continue
                    if model[other] == ((enc & 1) == 0):
                        satisfied = True
                        break
                if not satisfied:
                    model[variable] = True
                    break
        return model


def solve_cnf(
    cnf: Cnf,
    assumptions: Sequence[int] = (),
    *,
    conflict_limit: int | None = None,
    time_limit: float | None = None,
) -> SolveResult:
    """One-shot convenience wrapper: build a solver, add ``cnf``, solve."""
    solver = CdclSolver(cnf)
    return solver.solve(
        assumptions,
        conflict_limit=conflict_limit,
        time_limit=time_limit,
    )
