"""Serialisation of dependency DAGs.

Supports a small JSON schema (round-trippable, used by the CLI and by the
workload registry) and Graphviz DOT export for visual inspection of the
DAGs in the paper's figures.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from repro.errors import DagError
from repro.dag.graph import Dag


def dag_to_dict(dag: Dag) -> dict:
    """Return a JSON-serialisable description of ``dag``."""
    dag.validate()
    return {
        "name": dag.name,
        "nodes": [
            {
                "id": _node_key(node),
                "operation": dag.node(node).operation,
                "weight": dag.node(node).weight,
                "dependencies": [_node_key(dep) for dep in dag.dependencies(node)],
            }
            for node in dag.topological_order()
        ],
        "outputs": [_node_key(node) for node in dag.outputs()],
    }


def _node_key(node: object) -> str:
    return node if isinstance(node, str) else str(node)


def dag_from_dict(data: Mapping) -> Dag:
    """Rebuild a :class:`Dag` from :func:`dag_to_dict` output."""
    try:
        dag = Dag(name=data.get("name", "dag"))
        for entry in data["nodes"]:
            dag.add_node(
                entry["id"],
                entry.get("dependencies", []),
                operation=entry.get("operation", "op"),
                weight=entry.get("weight", 1.0),
            )
        if data.get("outputs"):
            dag.set_outputs(data["outputs"])
    except (KeyError, TypeError) as exc:
        raise DagError(f"malformed DAG description: {exc}") from exc
    dag.validate()
    return dag


def dag_to_json(dag: Dag, path: str | Path | None = None, *, indent: int = 2) -> str:
    """Serialise ``dag`` to JSON; optionally also write it to ``path``."""
    text = json.dumps(dag_to_dict(dag), indent=indent)
    if path is not None:
        Path(path).write_text(text + "\n", encoding="utf-8")
    return text


def dag_from_json(source: str | Path) -> Dag:
    """Load a DAG from a JSON string or file path."""
    if isinstance(source, Path):
        text = source.read_text(encoding="utf-8")
    elif source.lstrip().startswith("{"):
        text = source
    else:
        text = Path(source).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DagError(f"invalid JSON: {exc}") from exc
    return dag_from_dict(data)


def dag_to_dot(dag: Dag, *, highlight: set | None = None) -> str:
    """Return a Graphviz DOT rendering of ``dag``.

    ``highlight`` marks a set of nodes (e.g. a pebbling configuration) that
    are drawn filled.
    """
    highlight = highlight or set()
    outputs = set(dag.outputs())
    lines = [f'digraph "{dag.name}" {{', "  rankdir=BT;"]
    for node in dag.topological_order():
        record = dag.node(node)
        attributes = [f'label="{node}\\n{record.operation}"']
        if node in highlight:
            attributes.append('style=filled fillcolor="indianred1"')
        elif node in outputs:
            attributes.append('style=filled fillcolor="lightblue"')
        lines.append(f'  "{node}" [{" ".join(attributes)}];')
    for producer, consumer in dag.edges():
        lines.append(f'  "{producer}" -> "{consumer}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
