"""Dependency-DAG substrate.

The reversible pebbling game is played on a directed acyclic graph whose
nodes are computation steps and whose edges express data dependencies
(an edge ``v -> w`` means *w needs the value computed by v*, matching the
paper's definition of children ``C(v) = {w | w -> v}`` read as fan-ins).

* :mod:`repro.dag.graph` -- the :class:`~repro.dag.graph.Dag` container,
  topological utilities and structural statistics.
* :mod:`repro.dag.io` -- JSON and Graphviz-DOT import/export.
* :mod:`repro.dag.generators` -- parameterised synthetic DAG families used
  by tests and by the scaled ISCAS-like rows of the Table I harness.
"""

from repro.dag.generators import (
    layered_random_dag,
    linear_chain,
    random_binary_dag,
    tree_dag,
)
from repro.dag.graph import Dag, DagNode, DagStatistics
from repro.dag.io import dag_from_dict, dag_from_json, dag_to_dict, dag_to_dot, dag_to_json

__all__ = [
    "Dag",
    "DagNode",
    "DagStatistics",
    "dag_from_dict",
    "dag_from_json",
    "dag_to_dict",
    "dag_to_dot",
    "dag_to_json",
    "layered_random_dag",
    "linear_chain",
    "random_binary_dag",
    "tree_dag",
]
