"""The dependency DAG on which the reversible pebbling game is played.

Terminology (kept consistent with the paper):

* every *node* is one unit of computation (one "part" of the decomposed
  algorithm, one gate, one arithmetic operation, ...);
* *primary inputs are not nodes* — a node with no dependencies only reads
  primary inputs, which are always available and never pebbled;
* ``dependencies(v)`` (the paper's *children* ``C(v)``) are the nodes whose
  values ``v`` reads; they must be pebbled for ``v`` to be (un)pebbled;
* ``dependents(v)`` are the nodes that read ``v``'s value;
* *outputs* are the nodes whose values must remain pebbled at the end of
  the game.  By default these are the sinks of the graph, but a subset can
  be designated explicitly (useful for logic networks whose primary outputs
  are not sinks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from repro.errors import DagError

NodeId = Hashable


@dataclass
class DagNode:
    """A single computation node.

    ``operation`` is a free-form label ("add", "mul", "AND", ...) used by
    cost models and by the Fig. 5 operation-count reports; ``weight`` is a
    relative cost used by weighted statistics; ``payload`` carries anything
    else (e.g. the logic-network node it came from).
    """

    identifier: NodeId
    operation: str = "op"
    weight: float = 1.0
    payload: object | None = None


class Dag:
    """A mutable directed acyclic dependency graph.

    Nodes must be added before they are referenced as dependencies unless
    ``allow_forward_references`` is passed to :meth:`add_node`, in which
    case a placeholder node is created and must be defined later (this is
    convenient for parsers).  Cycles are rejected as soon as they would be
    created.
    """

    def __init__(self, name: str = "dag"):
        self.name = name
        self._nodes: dict[NodeId, DagNode] = {}
        self._dependencies: dict[NodeId, tuple[NodeId, ...]] = {}
        self._dependents: dict[NodeId, list[NodeId]] = {}
        self._outputs: list[NodeId] | None = None
        self._placeholders: set[NodeId] = set()
        self._topological_cache: list[NodeId] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        identifier: NodeId,
        dependencies: Sequence[NodeId] = (),
        *,
        operation: str = "op",
        weight: float = 1.0,
        payload: object | None = None,
        allow_forward_references: bool = False,
    ) -> DagNode:
        """Add a node and its dependency edges; return the node record."""
        was_placeholder = identifier in self._placeholders
        if identifier in self._nodes and not was_placeholder:
            raise DagError(f"node {identifier!r} already exists")
        for dependency in dependencies:
            if dependency == identifier:
                raise DagError(f"node {identifier!r} cannot depend on itself")
            if dependency not in self._nodes:
                if not allow_forward_references:
                    raise DagError(
                        f"node {identifier!r} depends on unknown node {dependency!r}"
                    )
                self._nodes[dependency] = DagNode(dependency)
                self._dependencies[dependency] = ()
                self._dependents[dependency] = []
                self._placeholders.add(dependency)
        node = DagNode(identifier, operation=operation, weight=weight, payload=payload)
        self._nodes[identifier] = node
        self._placeholders.discard(identifier)
        unique_dependencies = tuple(dict.fromkeys(dependencies))
        self._dependencies[identifier] = unique_dependencies
        self._dependents.setdefault(identifier, [])
        for dependency in unique_dependencies:
            self._dependents[dependency].append(identifier)
        self._topological_cache = None
        if self._creates_cycle(identifier):
            # Roll back the insertion to keep the graph consistent.
            for dependency in unique_dependencies:
                self._dependents[dependency].remove(identifier)
            if was_placeholder:
                # Restore the placeholder that the forward reference created.
                self._nodes[identifier] = DagNode(identifier)
                self._dependencies[identifier] = ()
                self._placeholders.add(identifier)
            else:
                del self._nodes[identifier]
                del self._dependencies[identifier]
                self._dependents.pop(identifier, None)
            raise DagError(f"adding node {identifier!r} would create a cycle")
        return node

    def set_outputs(self, outputs: Iterable[NodeId]) -> None:
        """Designate the output nodes (defaults to all sinks when unset)."""
        output_list = list(dict.fromkeys(outputs))
        for output in output_list:
            if output not in self._nodes:
                raise DagError(f"unknown output node {output!r}")
        if not output_list:
            raise DagError("a DAG needs at least one output")
        self._outputs = output_list

    def _creates_cycle(self, start: NodeId) -> bool:
        # Depth-first walk along dependencies starting from ``start``.
        stack = [start]
        visited: set[NodeId] = set()
        while stack:
            current = stack.pop()
            for dependency in self._dependencies.get(current, ()):
                if dependency == start:
                    return True
                if dependency not in visited:
                    visited.add(dependency)
                    stack.append(dependency)
        return False

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, identifier: NodeId) -> bool:
        return identifier in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the DAG."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of dependency edges."""
        return sum(len(deps) for deps in self._dependencies.values())

    def node(self, identifier: NodeId) -> DagNode:
        """Return the :class:`DagNode` record for ``identifier``."""
        try:
            return self._nodes[identifier]
        except KeyError as exc:
            raise DagError(f"unknown node {identifier!r}") from exc

    def nodes(self) -> list[NodeId]:
        """Return all node identifiers in insertion order."""
        return list(self._nodes)

    def dependencies(self, identifier: NodeId) -> tuple[NodeId, ...]:
        """Nodes whose values ``identifier`` reads (the paper's C(v))."""
        self.node(identifier)
        return self._dependencies[identifier]

    # The paper calls the fan-ins of a node its "children".
    children = dependencies

    def dependents(self, identifier: NodeId) -> tuple[NodeId, ...]:
        """Nodes that read the value computed by ``identifier``."""
        self.node(identifier)
        return tuple(self._dependents[identifier])

    def edges(self) -> list[tuple[NodeId, NodeId]]:
        """Return dependency edges as ``(producer, consumer)`` pairs."""
        result = []
        for consumer, producers in self._dependencies.items():
            for producer in producers:
                result.append((producer, consumer))
        return result

    def sources(self) -> list[NodeId]:
        """Nodes with no dependencies (they read only primary inputs)."""
        return [node for node in self._nodes if not self._dependencies[node]]

    def sinks(self) -> list[NodeId]:
        """Nodes whose value no other node reads."""
        return [node for node in self._nodes if not self._dependents[node]]

    def outputs(self) -> list[NodeId]:
        """Designated outputs (defaults to the sinks)."""
        if self._outputs is not None:
            return list(self._outputs)
        return self.sinks()

    def is_output(self, identifier: NodeId) -> bool:
        """Return ``True`` when ``identifier`` is an output node."""
        return identifier in set(self.outputs())

    def has_placeholders(self) -> bool:
        """Return ``True`` while forward-referenced nodes remain undefined."""
        return bool(self._placeholders)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.DagError` if the graph is malformed."""
        if not self._nodes:
            raise DagError("the DAG has no nodes")
        if self._placeholders:
            raise DagError(
                f"undefined forward-referenced nodes: {sorted(map(str, self._placeholders))}"
            )
        self.topological_order()  # raises on cycles
        if not self.outputs():
            raise DagError("the DAG has no outputs")

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> list[NodeId]:
        """Return the nodes in dependency order (Kahn's algorithm).

        Ties are broken by insertion order, which keeps the Bennett baseline
        deterministic.
        """
        if self._topological_cache is not None:
            return list(self._topological_cache)
        in_degree = {node: len(self._dependencies[node]) for node in self._nodes}
        ready = [node for node in self._nodes if in_degree[node] == 0]
        order: list[NodeId] = []
        ready_index = 0
        while ready_index < len(ready):
            current = ready[ready_index]
            ready_index += 1
            order.append(current)
            for dependent in self._dependents[current]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._nodes):
            raise DagError("the graph contains a cycle")
        self._topological_cache = order
        return list(order)

    def reverse_topological_order(self) -> list[NodeId]:
        """Topological order reversed (outputs towards sources)."""
        return list(reversed(self.topological_order()))

    def transitive_fanin(self, identifier: NodeId) -> set[NodeId]:
        """All nodes reachable from ``identifier`` through dependencies."""
        self.node(identifier)
        result: set[NodeId] = set()
        stack = list(self._dependencies[identifier])
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._dependencies[current])
        return result

    def transitive_fanout(self, identifier: NodeId) -> set[NodeId]:
        """All nodes that transitively depend on ``identifier``."""
        self.node(identifier)
        result: set[NodeId] = set()
        stack = list(self._dependents[identifier])
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._dependents[current])
        return result

    def depth(self) -> int:
        """Length (in nodes) of the longest dependency chain."""
        levels = self.levels()
        return max(levels.values(), default=0)

    def levels(self) -> dict[NodeId, int]:
        """Map each node to ``1 + max(level of dependencies)`` (sources = 1)."""
        levels: dict[NodeId, int] = {}
        for node in self.topological_order():
            dependencies = self._dependencies[node]
            if dependencies:
                levels[node] = 1 + max(levels[dependency] for dependency in dependencies)
            else:
                levels[node] = 1
        return levels

    def cone(self, outputs: Iterable[NodeId]) -> "Dag":
        """Return the sub-DAG feeding the given ``outputs``."""
        wanted: set[NodeId] = set()
        for output in outputs:
            self.node(output)
            wanted.add(output)
            wanted |= self.transitive_fanin(output)
        result = Dag(name=f"{self.name}_cone")
        for node in self.topological_order():
            if node not in wanted:
                continue
            record = self._nodes[node]
            result.add_node(
                node,
                [dep for dep in self._dependencies[node] if dep in wanted],
                operation=record.operation,
                weight=record.weight,
                payload=record.payload,
            )
        result.set_outputs([output for output in outputs])
        return result

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def relabel(self, mapping: Mapping[NodeId, NodeId] | Callable[[NodeId], NodeId]) -> "Dag":
        """Return a copy of the DAG with node identifiers renamed."""
        rename = mapping if callable(mapping) else (lambda node: mapping.get(node, node))
        renamed: dict[NodeId, NodeId] = {}
        for node in self._nodes:
            new_name = rename(node)
            if new_name in renamed.values():
                raise DagError(f"relabelling maps two nodes onto {new_name!r}")
            renamed[node] = new_name
        result = Dag(name=self.name)
        for node in self.topological_order():
            record = self._nodes[node]
            result.add_node(
                renamed[node],
                [renamed[dep] for dep in self._dependencies[node]],
                operation=record.operation,
                weight=record.weight,
                payload=record.payload,
            )
        result.set_outputs([renamed[output] for output in self.outputs()])
        return result

    def copy(self) -> "Dag":
        """Return an independent copy of the DAG."""
        return self.relabel(lambda node: node)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def statistics(self) -> "DagStatistics":
        """Return structural statistics (used in reports and EXPERIMENTS.md)."""
        fanouts = [len(self._dependents[node]) for node in self._nodes]
        fanins = [len(self._dependencies[node]) for node in self._nodes]
        return DagStatistics(
            name=self.name,
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            num_outputs=len(self.outputs()),
            num_sources=len(self.sources()),
            depth=self.depth(),
            max_fanin=max(fanins, default=0),
            max_fanout=max(fanouts, default=0),
            total_weight=sum(self._nodes[node].weight for node in self._nodes),
        )

    def operation_counts(self) -> dict[str, int]:
        """Return ``{operation label: node count}``."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            counts[node.operation] = counts.get(node.operation, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"Dag(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, outputs={len(self.outputs())})"
        )


@dataclass(frozen=True)
class DagStatistics:
    """Structural summary of a :class:`Dag`."""

    name: str
    num_nodes: int
    num_edges: int
    num_outputs: int
    num_sources: int
    depth: int
    max_fanin: int
    max_fanout: int
    total_weight: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """Return the statistics as a plain dictionary."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_outputs": self.num_outputs,
            "num_sources": self.num_sources,
            "depth": self.depth,
            "max_fanin": self.max_fanin,
            "max_fanout": self.max_fanout,
            "total_weight": self.total_weight,
        }
