"""Parameterised synthetic DAG families.

These generators serve two purposes:

* property-based tests pebble random DAGs and check strategy validity and
  baseline invariants on them;
* the Table I harness needs ISCAS-sized dependency graphs.  The original
  ISCAS-85 netlists (and the mockturtle XMG extraction used by the paper)
  are not available offline, so `layered_random_dag` produces deterministic
  stand-ins with a requested node count, output count, depth and fan-in
  distribution (see DESIGN.md, substitution table).

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random

from repro.errors import DagError
from repro.dag.graph import Dag


def linear_chain(length: int, *, operation: str = "op", name: str | None = None) -> Dag:
    """A chain ``n1 -> n2 -> ... -> n_length`` (worst case for pebble reuse)."""
    if length < 1:
        raise DagError("length must be >= 1")
    dag = Dag(name=name or f"chain_{length}")
    previous: list[str] = []
    for index in range(1, length + 1):
        identifier = f"n{index}"
        dag.add_node(identifier, previous, operation=operation)
        previous = [identifier]
    return dag


def tree_dag(
    num_leaves: int,
    *,
    arity: int = 2,
    operation: str = "op",
    name: str | None = None,
) -> Dag:
    """A reduction tree over ``num_leaves`` leaf nodes (e.g. a wide AND).

    Leaf nodes read only primary inputs; internal nodes combine ``arity``
    previous results until a single root remains.  The 9-input AND oracle of
    Fig. 6 is ``tree_dag`` applied to eight 2-input leaf groups — see
    :mod:`repro.workloads`.
    """
    if num_leaves < 1:
        raise DagError("num_leaves must be >= 1")
    if arity < 2:
        raise DagError("arity must be >= 2")
    dag = Dag(name=name or f"tree_{num_leaves}_{arity}")
    current = []
    for index in range(num_leaves):
        identifier = f"leaf{index}"
        dag.add_node(identifier, [], operation=operation)
        current.append(identifier)
    level = 0
    counter = 0
    while len(current) > 1:
        level += 1
        next_level = []
        for start in range(0, len(current), arity):
            group = current[start : start + arity]
            if len(group) == 1:
                next_level.append(group[0])
                continue
            identifier = f"n{level}_{counter}"
            counter += 1
            dag.add_node(identifier, group, operation=operation)
            next_level.append(identifier)
        current = next_level
    return dag


def random_binary_dag(
    num_nodes: int,
    *,
    seed: int = 0,
    source_fraction: float = 0.25,
    operation: str = "op",
    name: str | None = None,
) -> Dag:
    """A random DAG in which every non-source node has exactly two fan-ins.

    This mimics the structure of two-input gate networks (the paper's
    single-target-gate decompositions).  Roughly ``source_fraction`` of the
    nodes are sources.
    """
    if num_nodes < 1:
        raise DagError("num_nodes must be >= 1")
    if not 0.0 < source_fraction <= 1.0:
        raise DagError("source_fraction must be in (0, 1]")
    rng = random.Random(seed)
    dag = Dag(name=name or f"random_binary_{num_nodes}_{seed}")
    num_sources = max(1, int(round(num_nodes * source_fraction)))
    identifiers: list[str] = []
    for index in range(num_nodes):
        identifier = f"n{index}"
        if index < num_sources or index < 2:
            dag.add_node(identifier, [], operation=operation)
        else:
            left, right = rng.sample(identifiers, 2)
            dag.add_node(identifier, [left, right], operation=operation)
        identifiers.append(identifier)
    return dag


def layered_random_dag(
    num_nodes: int,
    num_outputs: int,
    *,
    depth: int = 8,
    max_fanin: int = 2,
    seed: int = 0,
    operation: str = "op",
    name: str | None = None,
) -> Dag:
    """A layered random DAG with a prescribed node count, output count and depth.

    Nodes are distributed over ``depth`` layers; a node in layer ``l > 1``
    draws between one and ``max_fanin`` dependencies from earlier layers
    (biased towards the immediately preceding layer, which mirrors gate-level
    netlists).  Exactly ``num_outputs`` nodes are designated outputs, chosen
    from the deepest layers.  Every non-output node is guaranteed at least
    one dependent so the DAG has no irrelevant dangling work.
    """
    if num_nodes < 1:
        raise DagError("num_nodes must be >= 1")
    if not 1 <= num_outputs <= num_nodes:
        raise DagError("num_outputs must be between 1 and num_nodes")
    if depth < 1:
        raise DagError("depth must be >= 1")
    if max_fanin < 1:
        raise DagError("max_fanin must be >= 1")
    depth = min(depth, num_nodes)
    rng = random.Random(seed)
    dag = Dag(name=name or f"layered_{num_nodes}_{num_outputs}_{seed}")

    # Spread nodes across layers (every layer gets at least one node).
    layer_sizes = [1] * depth
    for _ in range(num_nodes - depth):
        layer_sizes[rng.randrange(depth)] += 1

    layers: list[list[str]] = []
    counter = 0
    for layer_index, size in enumerate(layer_sizes):
        layer: list[str] = []
        for _ in range(size):
            identifier = f"n{counter}"
            counter += 1
            if layer_index == 0:
                dag.add_node(identifier, [], operation=operation)
            else:
                fanin_count = rng.randint(1, max_fanin)
                pool_layer = layer_index - 1
                dependencies: list[str] = []
                for _ in range(fanin_count):
                    if rng.random() < 0.7 or pool_layer == 0:
                        source_layer = pool_layer
                    else:
                        source_layer = rng.randrange(pool_layer)
                    dependencies.append(rng.choice(layers[source_layer]))
                dag.add_node(identifier, list(dict.fromkeys(dependencies)), operation=operation)
            layer.append(identifier)
        layers.append(layer)

    # Choose outputs from the deepest layers first.
    outputs: list[str] = []
    for layer in reversed(layers):
        for identifier in reversed(layer):
            if len(outputs) < num_outputs:
                outputs.append(identifier)
    dag.set_outputs(outputs)

    # Give every dangling non-output node a consumer so that all nodes matter:
    # rebuild the DAG once, appending each dangling node to the dependency
    # list of a random node in a later layer.
    output_set = set(outputs)
    layer_of = {identifier: index for index, layer in enumerate(layers) for identifier in layer}
    extra_dependencies: dict[str, list[str]] = {}
    for identifier in dag.nodes():
        if identifier in output_set or dag.dependents(identifier):
            continue
        later = [other for other, other_layer in layer_of.items() if other_layer > layer_of[identifier]]
        if not later:
            outputs.append(identifier)
            output_set.add(identifier)
            continue
        consumer = rng.choice(later)
        extra_dependencies.setdefault(consumer, []).append(identifier)

    if extra_dependencies:
        # Rebuild in layer order: every edge (original or extra) goes from an
        # earlier layer to a later one, so this order is always valid.
        rewired = Dag(name=dag.name)
        for layer in layers:
            for identifier in layer:
                dependencies = list(dag.dependencies(identifier))
                dependencies.extend(extra_dependencies.get(identifier, []))
                rewired.add_node(
                    identifier,
                    list(dict.fromkeys(dependencies)),
                    operation=dag.node(identifier).operation,
                )
        rewired.set_outputs(outputs)
        return rewired

    dag.set_outputs(outputs)
    return dag
