"""Reader and writer for the ISCAS-89 ``.bench`` netlist format.

The paper's Table I uses ISCAS benchmark circuits.  The ``.bench`` format is
the de-facto plain-text exchange format for those netlists::

    # c17
    INPUT(1)
    INPUT(2)
    ...
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

This module parses combinational ``.bench`` files into
:class:`~repro.logic.network.LogicNetwork` objects (sequential ``DFF``
elements are rejected with a clear error — the pebbling game is defined on
combinational dependency DAGs) and writes networks back out, so users with
access to the original ISCAS files can reproduce Table I on the real
circuits rather than on the bundled synthetic stand-ins.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import BenchParseError
from repro.logic.network import GateType, LogicNetwork

_LINE_RE = re.compile(
    r"^\s*(?P<output>[^\s=]+)\s*=\s*(?P<gate>[A-Za-z01]+)\s*\((?P<fanins>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<name>[^)\s]+)\s*\)\s*$", re.IGNORECASE)

_GATE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "MAJ": GateType.MAJ,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
    "GND": GateType.CONST0,
    "VDD": GateType.CONST1,
}


def parse_bench(text: str, *, name: str = "bench") -> LogicNetwork:
    """Parse ``.bench`` content (as a string) into a :class:`LogicNetwork`."""
    network = LogicNetwork(name=name)
    pending_outputs: list[str] = []
    gate_lines: list[tuple[int, str, GateType, list[str]]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            signal = io_match.group("name")
            if io_match.group("kind").upper() == "INPUT":
                network.add_input(signal)
            else:
                pending_outputs.append(signal)
            continue
        gate_match = _LINE_RE.match(line)
        if gate_match:
            gate_name = gate_match.group("gate").upper()
            if gate_name == "DFF":
                raise BenchParseError(
                    f"line {line_number}: sequential element DFF is not supported; "
                    "extract the combinational core first"
                )
            if gate_name not in _GATE_ALIASES:
                raise BenchParseError(f"line {line_number}: unknown gate type {gate_name!r}")
            fanins = [token.strip() for token in gate_match.group("fanins").split(",") if token.strip()]
            gate_lines.append((line_number, gate_match.group("output"), _GATE_ALIASES[gate_name], fanins))
            continue
        raise BenchParseError(f"line {line_number}: cannot parse {raw_line!r}")

    # Gates may be listed in any order in a .bench file; add them in
    # dependency order.
    remaining = list(gate_lines)
    defined = set(network.inputs)
    progress = True
    while remaining and progress:
        progress = False
        still_remaining = []
        for entry in remaining:
            line_number, output, gate_type, fanins = entry
            if all(fanin in defined for fanin in fanins):
                network.add_gate(output, gate_type, fanins)
                defined.add(output)
                progress = True
            else:
                still_remaining.append(entry)
        remaining = still_remaining
    if remaining:
        missing = sorted({fanin for _, _, _, fanins in remaining for fanin in fanins if fanin not in defined})
        raise BenchParseError(
            f"undriven signals or combinational loop; unresolved signals: {missing[:10]}"
        )

    for signal in pending_outputs:
        if not network.has_signal(signal):
            raise BenchParseError(f"OUTPUT({signal}) does not match any input or gate")
        network.add_output(signal)
    network.validate()
    return network


def network_from_bench(path: str | Path, *, name: str | None = None) -> LogicNetwork:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(encoding="utf-8"), name=name or path.stem)


def network_to_bench(network: LogicNetwork) -> str:
    """Serialise ``network`` to ``.bench`` text."""
    lines = [f"# {network.name}"]
    for signal in network.inputs:
        lines.append(f"INPUT({signal})")
    for signal in network.outputs:
        lines.append(f"OUTPUT({signal})")
    for gate in network.gates():
        fanins = ", ".join(gate.fanins)
        lines.append(f"{gate.output} = {gate.gate_type.value}({fanins})")
    return "\n".join(lines) + "\n"


def write_bench(network: LogicNetwork, path: str | Path) -> None:
    """Write ``network`` to a ``.bench`` file."""
    Path(path).write_text(network_to_bench(network), encoding="utf-8")
