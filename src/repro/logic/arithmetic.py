"""Gate-level arithmetic network generators.

The ``H`` operator rows of Table I (``b2_m3`` ... ``b16_m23``) are built
from modular additions and subtractions over small moduli.  The paper
expands each arithmetic operation to the gate level (via an XOR-majority
graph) before pebbling.  These generators build the equivalent gate-level
:class:`~repro.logic.network.LogicNetwork` structures from scratch:

* ripple-carry adder / subtractor (full-adder cells from XOR/AND/OR gates,
  with an optional MAJ-based carry, matching XMG-style decompositions);
* conditional subtractor, used to reduce a sum modulo ``m``;
* modular adder and modular subtractor for arbitrary moduli ``m < 2**bits``.

Every generated network is functionally verified in the test-suite against
integer arithmetic, so the DAGs fed to the pebbling engine correspond to
real circuits rather than arbitrary graphs.
"""

from __future__ import annotations

from repro.errors import LogicNetworkError
from repro.logic.network import LogicNetwork


def _full_adder(
    network: LogicNetwork,
    a: str,
    b: str,
    carry_in: str | None,
    prefix: str,
    *,
    use_majority: bool = True,
) -> tuple[str, str]:
    """Add a full-adder cell; return ``(sum, carry_out)`` signal names."""
    if carry_in is None:
        # Half adder.
        sum_signal = f"{prefix}_s"
        carry_signal = f"{prefix}_c"
        network.add_gate(sum_signal, "XOR", [a, b])
        network.add_gate(carry_signal, "AND", [a, b])
        return sum_signal, carry_signal
    sum_signal = f"{prefix}_s"
    network.add_gate(sum_signal, "XOR", [a, b, carry_in])
    carry_signal = f"{prefix}_c"
    if use_majority:
        network.add_gate(carry_signal, "MAJ", [a, b, carry_in])
    else:
        t1 = f"{prefix}_t1"
        t2 = f"{prefix}_t2"
        t3 = f"{prefix}_t3"
        network.add_gate(t1, "AND", [a, b])
        network.add_gate(t2, "XOR", [a, b])
        network.add_gate(t3, "AND", [t2, carry_in])
        network.add_gate(carry_signal, "OR", [t1, t3])
    return sum_signal, carry_signal


def ripple_carry_adder_network(
    bits: int,
    *,
    name: str | None = None,
    use_majority: bool = True,
    with_carry_out: bool = True,
) -> LogicNetwork:
    """A ``bits``-bit ripple-carry adder: inputs ``a[i]``, ``b[i]``; outputs ``s[i]``."""
    if bits < 1:
        raise LogicNetworkError("bits must be >= 1")
    network = LogicNetwork(name or f"rca_{bits}")
    a = [network.add_input(f"a{i}") for i in range(bits)]
    b = [network.add_input(f"b{i}") for i in range(bits)]
    carry: str | None = None
    for i in range(bits):
        sum_signal, carry = _full_adder(
            network, a[i], b[i], carry, f"fa{i}", use_majority=use_majority
        )
        network.add_output(sum_signal)
    if with_carry_out and carry is not None:
        network.add_output(carry)
    return network


def ripple_carry_subtractor_network(
    bits: int,
    *,
    name: str | None = None,
    use_majority: bool = True,
    with_borrow_out: bool = True,
) -> LogicNetwork:
    """A ``bits``-bit subtractor computing ``a - b`` (two's complement).

    Implemented as ``a + ~b + 1``: the inverters are free on the quantum
    target (they collapse out of the pebbling DAG), so the dependency
    structure matches the adder.
    """
    if bits < 1:
        raise LogicNetworkError("bits must be >= 1")
    network = LogicNetwork(name or f"rcs_{bits}")
    a = [network.add_input(f"a{i}") for i in range(bits)]
    b = [network.add_input(f"b{i}") for i in range(bits)]
    not_b = []
    for i in range(bits):
        signal = f"nb{i}"
        network.add_gate(signal, "NOT", [b[i]])
        not_b.append(signal)
    # carry-in = 1 for two's complement; fold it into the first cell:
    # s0 = a0 xor ~b0 xor 1 = xnor(a0, ~b0); c0 = maj(a0, ~b0, 1) = or(a0, ~b0)
    network.add_gate("fa0_s", "XNOR", [a[0], not_b[0]])
    network.add_gate("fa0_c", "OR", [a[0], not_b[0]])
    network.add_output("fa0_s")
    carry = "fa0_c"
    for i in range(1, bits):
        sum_signal, carry = _full_adder(
            network, a[i], not_b[i], carry, f"fa{i}", use_majority=use_majority
        )
        network.add_output(sum_signal)
    if with_borrow_out:
        network.add_output(carry)
    return network


def _build_adder_chain(
    network: LogicNetwork,
    a: list[str],
    b: list[str],
    prefix: str,
    *,
    use_majority: bool,
) -> list[str]:
    """Append an adder over existing signals; return the sum signals (with carry)."""
    carry: str | None = None
    sums: list[str] = []
    for i, (left, right) in enumerate(zip(a, b)):
        sum_signal, carry = _full_adder(
            network, left, right, carry, f"{prefix}{i}", use_majority=use_majority
        )
        sums.append(sum_signal)
    assert carry is not None
    sums.append(carry)
    return sums


def modular_adder_network(
    bits: int,
    modulus: int,
    *,
    name: str | None = None,
    use_majority: bool = True,
) -> LogicNetwork:
    """A combinational modular adder: ``s = (a + b) mod modulus``.

    Implemented as the textbook compare-and-conditionally-subtract circuit:
    compute ``t = a + b`` (``bits + 1`` bits), compute ``t - m``, and select
    between the two based on the borrow of the subtraction.  Inputs are
    assumed to already be reduced modulo ``modulus``.
    """
    if bits < 1:
        raise LogicNetworkError("bits must be >= 1")
    if not 2 <= modulus <= (1 << bits):
        raise LogicNetworkError("modulus must satisfy 2 <= modulus <= 2**bits")
    network = LogicNetwork(name or f"modadd_{bits}_m{modulus}")
    a = [network.add_input(f"a{i}") for i in range(bits)]
    b = [network.add_input(f"b{i}") for i in range(bits)]

    # t = a + b with carry out -> bits+1 signals
    t = _build_adder_chain(network, a, b, "add", use_majority=use_majority)

    # u = t - m over bits+1 bits (two's complement with constant ~m).
    width = bits + 1
    not_m_bits = [((~modulus) >> i) & 1 for i in range(width)]
    u: list[str] = []
    carry: str | None = None
    for i in range(width):
        prefix = f"sub{i}"
        if carry is None:
            # carry-in is 1 (two's complement +1).
            if not_m_bits[i]:
                network.add_gate(f"{prefix}_s", "BUF", [t[i]])
                network.add_gate(f"{prefix}_c", "CONST1", [])
            else:
                network.add_gate(f"{prefix}_s", "NOT", [t[i]])
                network.add_gate(f"{prefix}_c", "BUF", [t[i]])
            u.append(f"{prefix}_s")
            carry = f"{prefix}_c"
            continue
        if not_m_bits[i]:
            network.add_gate(f"{prefix}_s", "XNOR", [t[i], carry])
            network.add_gate(f"{prefix}_c", "OR", [t[i], carry])
        else:
            network.add_gate(f"{prefix}_s", "XOR", [t[i], carry])
            network.add_gate(f"{prefix}_c", "AND", [t[i], carry])
        u.append(f"{prefix}_s")
        carry = f"{prefix}_c"
    overflow = carry  # carry-out of (t + ~m + 1): 1 when t >= m
    assert overflow is not None

    # result bit i = overflow ? u[i] : t[i]
    for i in range(bits):
        pick_u = f"mux{i}_a"
        pick_t = f"mux{i}_b"
        not_sel = f"mux{i}_n"
        network.add_gate(not_sel, "NOT", [overflow])
        network.add_gate(pick_u, "AND", [overflow, u[i]])
        network.add_gate(pick_t, "AND", [not_sel, t[i]])
        network.add_gate(f"s{i}", "OR", [pick_u, pick_t])
        network.add_output(f"s{i}")
    return network


def modular_subtractor_network(
    bits: int,
    modulus: int,
    *,
    name: str | None = None,
    use_majority: bool = True,
) -> LogicNetwork:
    """A combinational modular subtractor: ``s = (a - b) mod modulus``.

    Computes ``t = a - b``; when the subtraction borrows (``a < b``) the
    modulus is added back.  Inputs are assumed reduced modulo ``modulus``.
    """
    if bits < 1:
        raise LogicNetworkError("bits must be >= 1")
    if not 2 <= modulus <= (1 << bits):
        raise LogicNetworkError("modulus must satisfy 2 <= modulus <= 2**bits")
    network = LogicNetwork(name or f"modsub_{bits}_m{modulus}")
    a = [network.add_input(f"a{i}") for i in range(bits)]
    b = [network.add_input(f"b{i}") for i in range(bits)]

    # t = a - b = a + ~b + 1 over ``bits`` bits, keep the carry (no-borrow flag).
    t: list[str] = []
    carry: str | None = None
    for i in range(bits):
        prefix = f"sub{i}"
        nb = f"nb{i}"
        network.add_gate(nb, "NOT", [b[i]])
        if carry is None:
            network.add_gate(f"{prefix}_s", "XNOR", [a[i], nb])
            network.add_gate(f"{prefix}_c", "OR", [a[i], nb])
        else:
            network.add_gate(f"{prefix}_s", "XOR", [a[i], nb, carry])
            if use_majority:
                network.add_gate(f"{prefix}_c", "MAJ", [a[i], nb, carry])
            else:
                network.add_gate(f"{prefix}_t1", "AND", [a[i], nb])
                network.add_gate(f"{prefix}_t2", "XOR", [a[i], nb])
                network.add_gate(f"{prefix}_t3", "AND", [f"{prefix}_t2", carry])
                network.add_gate(f"{prefix}_c", "OR", [f"{prefix}_t1", f"{prefix}_t3"])
        t.append(f"{prefix}_s")
        carry = f"{prefix}_c"
    no_borrow = carry
    assert no_borrow is not None
    borrow = "borrow"
    network.add_gate(borrow, "NOT", [no_borrow])

    # u = t + m over ``bits`` bits (constant addend).
    m_bits = [(modulus >> i) & 1 for i in range(bits)]
    u: list[str] = []
    carry = None
    for i in range(bits):
        prefix = f"fix{i}"
        if carry is None:
            if m_bits[i]:
                network.add_gate(f"{prefix}_s", "NOT", [t[i]])
                network.add_gate(f"{prefix}_c", "BUF", [t[i]])
            else:
                network.add_gate(f"{prefix}_s", "BUF", [t[i]])
                network.add_gate(f"{prefix}_c", "CONST0", [])
            u.append(f"{prefix}_s")
            carry = f"{prefix}_c"
            continue
        if m_bits[i]:
            network.add_gate(f"{prefix}_s", "XNOR", [t[i], carry])
            network.add_gate(f"{prefix}_c", "OR", [t[i], carry])
        else:
            network.add_gate(f"{prefix}_s", "XOR", [t[i], carry])
            network.add_gate(f"{prefix}_c", "AND", [t[i], carry])
        u.append(f"{prefix}_s")
        carry = f"{prefix}_c"

    # result bit i = borrow ? u[i] : t[i]
    for i in range(bits):
        network.add_gate(f"mux{i}_n", "NOT", [borrow])
        network.add_gate(f"mux{i}_a", "AND", [borrow, u[i]])
        network.add_gate(f"mux{i}_b", "AND", [f"mux{i}_n", t[i]])
        network.add_gate(f"s{i}", "OR", [f"mux{i}_a", f"mux{i}_b"])
        network.add_output(f"s{i}")
    return network
