"""Logic-network substrate.

The paper derives its pebbling DAGs from logic networks: XOR-majority
graphs extracted with mockturtle for the ISCAS benchmarks, and gate-level
decompositions of modular arithmetic for the ``H`` operator designs.  This
subpackage provides a self-contained replacement:

* :mod:`repro.logic.network` -- a multi-gate logic network (PI/PO,
  AND/OR/XOR/MAJ/NAND/NOR/XNOR/NOT/BUF nodes), bit-parallel simulation and
  conversion to a pebbling :class:`~repro.dag.graph.Dag`;
* :mod:`repro.logic.bench` -- reader/writer for the ISCAS-89 ``.bench``
  netlist format;
* :mod:`repro.logic.arithmetic` -- gate-level generators for ripple-carry
  adders/subtractors, comparators and modular adders/subtractors used to
  expand the paper's ``H`` operator to the gate level;
* :mod:`repro.logic.iscas` -- the real ``c17`` netlist plus deterministic
  ISCAS-like stand-ins for the larger ISCAS-85 circuits (see DESIGN.md).
"""

from repro.logic.arithmetic import (
    modular_adder_network,
    modular_subtractor_network,
    ripple_carry_adder_network,
    ripple_carry_subtractor_network,
)
from repro.logic.bench import network_from_bench, network_to_bench, parse_bench
from repro.logic.iscas import iscas_like_network, list_iscas_names
from repro.logic.network import GateType, LogicNetwork

__all__ = [
    "GateType",
    "LogicNetwork",
    "iscas_like_network",
    "list_iscas_names",
    "modular_adder_network",
    "modular_subtractor_network",
    "network_from_bench",
    "network_to_bench",
    "parse_bench",
    "ripple_carry_adder_network",
    "ripple_carry_subtractor_network",
]
