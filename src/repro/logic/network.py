"""A small structural logic-network library.

A :class:`LogicNetwork` is a named DAG of logic gates over primary inputs.
It is the offline stand-in for the XOR-majority graphs the paper extracts
with mockturtle: the pebbling algorithm only needs the *dependency
structure* of the network, which :meth:`LogicNetwork.to_dag` exposes, but
having real gate functions lets the test-suite simulate networks, check
`.bench` round-trips, and verify that reversible circuits synthesised from
pebbling strategies compute the right Boolean function.

Signals are identified by strings.  Primary inputs are declared with
:meth:`add_input`; every gate produces exactly one signal.  Primary outputs
name existing signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.errors import LogicNetworkError
from repro.dag.graph import Dag


class GateType(Enum):
    """Supported gate functions."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    MAJ = "MAJ"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @classmethod
    def from_name(cls, name: "str | GateType") -> "GateType":
        """Accept an enum member or a (case-insensitive) gate name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(name.upper())
        except (ValueError, AttributeError) as exc:
            valid = ", ".join(member.value for member in cls)
            raise LogicNetworkError(f"unknown gate type {name!r} (valid: {valid})") from exc


_ARITY = {
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.MAJ: (3, 3),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
    GateType.AND: (1, None),
    GateType.OR: (1, None),
    GateType.NAND: (1, None),
    GateType.NOR: (1, None),
    GateType.XOR: (1, None),
    GateType.XNOR: (1, None),
}


@dataclass(frozen=True)
class Gate:
    """One gate: an output signal, a function and ordered fan-in signals."""

    output: str
    gate_type: GateType
    fanins: tuple[str, ...]


class LogicNetwork:
    """A combinational logic network (netlist).

    Example::

        network = LogicNetwork("half_adder")
        network.add_input("a")
        network.add_input("b")
        network.add_gate("sum", "XOR", ["a", "b"])
        network.add_gate("carry", "AND", ["a", "b"])
        network.add_output("sum")
        network.add_output("carry")
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._order_cache: list[str] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input signal."""
        self._check_fresh(name)
        self._inputs.append(name)
        self._order_cache = None
        return name

    def add_inputs(self, names: Iterable[str]) -> list[str]:
        """Declare several primary inputs; return their names."""
        return [self.add_input(name) for name in names]

    def add_gate(self, output: str, gate_type: "str | GateType", fanins: Sequence[str]) -> Gate:
        """Add a gate computing ``output`` from ``fanins``."""
        self._check_fresh(output)
        resolved_type = GateType.from_name(gate_type)
        lower, upper = _ARITY[resolved_type]
        if len(fanins) < lower or (upper is not None and len(fanins) > upper):
            raise LogicNetworkError(
                f"gate {resolved_type.value} expects between {lower} and "
                f"{upper if upper is not None else 'any number of'} fanins, got {len(fanins)}"
            )
        for fanin in fanins:
            if not self.has_signal(fanin):
                raise LogicNetworkError(
                    f"gate {output!r} reads unknown signal {fanin!r}"
                )
        gate = Gate(output, resolved_type, tuple(fanins))
        self._gates[output] = gate
        self._order_cache = None
        return gate

    def add_output(self, signal: str) -> None:
        """Declare ``signal`` (an input or gate output) as a primary output."""
        if not self.has_signal(signal):
            raise LogicNetworkError(f"unknown output signal {signal!r}")
        self._outputs.append(signal)

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise LogicNetworkError("signal names must be non-empty")
        if self.has_signal(name):
            raise LogicNetworkError(f"signal {name!r} already defined")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> list[str]:
        """Primary-input signal names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> list[str]:
        """Primary-output signal names, in declaration order."""
        return list(self._outputs)

    @property
    def num_inputs(self) -> int:
        """Number of primary inputs."""
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        """Number of gates (excluding primary inputs)."""
        return len(self._gates)

    def has_signal(self, name: str) -> bool:
        """Return ``True`` if ``name`` is a declared input or gate output."""
        return name in self._gates or name in self._inputs

    def is_input(self, name: str) -> bool:
        """Return ``True`` if ``name`` is a primary input."""
        return name in self._inputs

    def gate(self, output: str) -> Gate:
        """Return the gate driving ``output``."""
        try:
            return self._gates[output]
        except KeyError as exc:
            raise LogicNetworkError(f"no gate drives signal {output!r}") from exc

    def gates(self) -> list[Gate]:
        """Return all gates in topological order."""
        return [self._gates[name] for name in self.topological_order() if name in self._gates]

    def topological_order(self) -> list[str]:
        """Return all signals (inputs first, then gates) in dependency order."""
        if self._order_cache is not None:
            return list(self._order_cache)
        order: list[str] = list(self._inputs)
        placed = set(order)
        remaining = dict(self._gates)
        # Kahn-style repeated sweep; gate count is small enough that the
        # quadratic worst case does not matter, and insertion order is
        # usually already topological so the common case is linear.
        progress = True
        while remaining and progress:
            progress = False
            for output in list(remaining):
                gate = remaining[output]
                if all(fanin in placed for fanin in gate.fanins):
                    order.append(output)
                    placed.add(output)
                    del remaining[output]
                    progress = True
        if remaining:
            raise LogicNetworkError(
                f"combinational loop involving signals {sorted(remaining)}"
            )
        self._order_cache = order
        return list(order)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.LogicNetworkError` on malformed networks."""
        if not self._inputs and not any(
            gate.gate_type in (GateType.CONST0, GateType.CONST1) for gate in self._gates.values()
        ):
            raise LogicNetworkError("network has no primary inputs")
        if not self._outputs:
            raise LogicNetworkError("network has no primary outputs")
        self.topological_order()

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def simulate(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate the network for one input assignment.

        Returns the value of every signal (inputs, internal gates and
        outputs).
        """
        values: dict[str, bool] = {}
        for name in self._inputs:
            if name not in assignment:
                raise LogicNetworkError(f"assignment is missing input {name!r}")
            values[name] = bool(assignment[name])
        for name in self.topological_order():
            if name in values:
                continue
            gate = self._gates[name]
            fanin_values = [values[fanin] for fanin in gate.fanins]
            values[name] = _evaluate_gate(gate.gate_type, fanin_values)
        return values

    def simulate_outputs(self, assignment: Mapping[str, bool]) -> dict[str, bool]:
        """Evaluate the network and return only the primary outputs."""
        values = self.simulate(assignment)
        return {name: values[name] for name in self._outputs}

    def truth_tables(self) -> dict[str, int]:
        """Bit-parallel simulation over all ``2^n`` input patterns.

        Returns, for every primary output, an integer whose bit ``i`` is the
        output value for the input pattern with index ``i`` (input ``k`` of
        the network is bit ``k`` of the pattern index).  Only usable for
        networks with at most 16 primary inputs.
        """
        n = self.num_inputs
        if n > 16:
            raise LogicNetworkError("truth_tables is limited to 16 primary inputs")
        num_patterns = 1 << n
        mask = (1 << num_patterns) - 1
        values: dict[str, int] = {}
        for position, name in enumerate(self._inputs):
            pattern = 0
            for index in range(num_patterns):
                if (index >> position) & 1:
                    pattern |= 1 << index
            values[name] = pattern
        for name in self.topological_order():
            if name in values:
                continue
            gate = self._gates[name]
            fanins = [values[fanin] for fanin in gate.fanins]
            values[name] = _evaluate_gate_bitparallel(gate.gate_type, fanins, mask)
        return {name: values[name] for name in self._outputs}

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_dag(self, *, collapse_inverters: bool = True) -> Dag:
        """Return the pebbling dependency DAG of the network.

        Each gate becomes one DAG node; primary inputs are *not* nodes
        (they are always available, matching the paper).  When
        ``collapse_inverters`` is true, NOT/BUF gates are folded into their
        consumers: on a quantum target an inversion is a Pauli-X applied in
        place and does not occupy an ancilla, so it should not count as a
        pebble.  Primary outputs driven by a primary input are dropped (no
        computation is needed for them).
        """
        self.validate()
        representative: dict[str, str | None] = {name: None for name in self._inputs}
        dag = Dag(name=self.name)
        for gate in self.gates():
            if collapse_inverters and gate.gate_type in (GateType.NOT, GateType.BUF):
                representative[gate.output] = representative[gate.fanins[0]]
                continue
            if gate.gate_type in (GateType.CONST0, GateType.CONST1):
                representative[gate.output] = None
                continue
            dependencies = []
            for fanin in gate.fanins:
                mapped = representative.get(fanin, fanin)
                if mapped is not None and mapped in dag:
                    dependencies.append(mapped)
            dag.add_node(
                gate.output,
                list(dict.fromkeys(dependencies)),
                operation=gate.gate_type.value,
            )
            representative[gate.output] = gate.output
        outputs = []
        for name in self._outputs:
            mapped = representative.get(name, name)
            if mapped is not None and mapped in dag:
                outputs.append(mapped)
        if not outputs:
            raise LogicNetworkError(
                "network reduces to primary inputs only; nothing to pebble"
            )
        dag.set_outputs(outputs)
        return dag

    def statistics(self) -> dict[str, int]:
        """Return a summary used by reports: #PI, #PO, #gates, depth."""
        depth = 0
        level: dict[str, int] = {name: 0 for name in self._inputs}
        for name in self.topological_order():
            if name in level:
                continue
            gate = self._gates[name]
            level[name] = 1 + max((level[fanin] for fanin in gate.fanins), default=0)
            depth = max(depth, level[name])
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "depth": depth,
        }

    def __repr__(self) -> str:
        return (
            f"LogicNetwork(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, gates={self.num_gates})"
        )


def _evaluate_gate(gate_type: GateType, values: Sequence[bool]) -> bool:
    if gate_type is GateType.AND:
        return all(values)
    if gate_type is GateType.OR:
        return any(values)
    if gate_type is GateType.NAND:
        return not all(values)
    if gate_type is GateType.NOR:
        return not any(values)
    if gate_type is GateType.XOR:
        result = False
        for value in values:
            result ^= value
        return result
    if gate_type is GateType.XNOR:
        result = True
        for value in values:
            result ^= value
        return result
    if gate_type is GateType.NOT:
        return not values[0]
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.MAJ:
        return sum(values) >= 2
    if gate_type is GateType.CONST0:
        return False
    return True  # CONST1


def _evaluate_gate_bitparallel(gate_type: GateType, values: Sequence[int], mask: int) -> int:
    if gate_type is GateType.AND:
        result = mask
        for value in values:
            result &= value
        return result
    if gate_type is GateType.OR:
        result = 0
        for value in values:
            result |= value
        return result
    if gate_type is GateType.NAND:
        return mask & ~_evaluate_gate_bitparallel(GateType.AND, values, mask)
    if gate_type is GateType.NOR:
        return mask & ~_evaluate_gate_bitparallel(GateType.OR, values, mask)
    if gate_type is GateType.XOR:
        result = 0
        for value in values:
            result ^= value
        return result
    if gate_type is GateType.XNOR:
        return mask & ~_evaluate_gate_bitparallel(GateType.XOR, values, mask)
    if gate_type is GateType.NOT:
        return mask & ~values[0]
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.MAJ:
        a, b, c = values
        return (a & b) | (a & c) | (b & c)
    if gate_type is GateType.CONST0:
        return 0
    return mask  # CONST1
