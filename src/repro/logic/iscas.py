"""ISCAS-85 benchmark circuits: the real ``c17`` plus synthetic stand-ins.

Table I of the paper reports results on ISCAS-85 circuits whose dependency
DAGs were extracted as XOR-majority graphs with mockturtle.  The original
netlist files are not redistributable inside this offline reproduction, with
one exception: ``c17`` is six NAND gates and is printed in virtually every
textbook, so we include it verbatim.  For the larger circuits
(`c432` ... `c7552`) :func:`iscas_like_network` builds deterministic
*stand-ins*: layered random NAND/NOR/XOR networks with the same primary
input, primary output and (scaled) gate counts as the table rows.  The
pebbling experiment only consumes the dependency structure, so a stand-in
with matching size and shape statistics reproduces the qualitative
behaviour (see DESIGN.md, substitution table).

If the real ``.bench`` files are available, load them with
:func:`repro.logic.bench.network_from_bench` and pass the resulting network
to the same harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.logic.bench import parse_bench
from repro.logic.network import LogicNetwork

#: The genuine ISCAS-85 c17 netlist (six NAND gates).
C17_BENCH = """
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
""".strip()


@dataclass(frozen=True)
class IscasProfile:
    """Size profile of one ISCAS-85 circuit as used in Table I.

    ``nodes`` is the XMG node count the paper reports (the "nodes" column),
    which we use as the target gate count of the stand-in network.
    """

    name: str
    inputs: int
    outputs: int
    nodes: int
    depth: int


#: Paper's Table I rows for the ISCAS circuits (pi, po, nodes) plus a depth
#: estimate used to shape the synthetic stand-ins.
ISCAS_PROFILES: dict[str, IscasProfile] = {
    "c17": IscasProfile("c17", 5, 2, 12, 4),
    "c432": IscasProfile("c432", 36, 7, 208, 26),
    "c499": IscasProfile("c499", 41, 32, 219, 18),
    "c880": IscasProfile("c880", 60, 26, 334, 24),
    "c1355": IscasProfile("c1355", 41, 32, 219, 18),
    "c1908": IscasProfile("c1908", 33, 25, 220, 27),
    "c2670": IscasProfile("c2670", 157, 63, 554, 21),
    "c3540": IscasProfile("c3540", 50, 22, 856, 32),
    "c5315": IscasProfile("c5315", 178, 123, 1257, 26),
    "c6288": IscasProfile("c6288", 32, 32, 1011, 89),
    "c7552": IscasProfile("c7552", 207, 108, 1151, 28),
}


def list_iscas_names() -> list[str]:
    """Names of the ISCAS circuits referenced by Table I."""
    return list(ISCAS_PROFILES)


def c17_network() -> LogicNetwork:
    """Return the genuine c17 circuit."""
    return parse_bench(C17_BENCH, name="c17")


def iscas_like_network(
    name: str,
    *,
    scale: float = 1.0,
    seed: int | None = None,
) -> LogicNetwork:
    """Return a deterministic ISCAS-sized network.

    ``c17`` is always the real circuit.  For the other names a synthetic
    layered network is generated whose gate count is ``scale`` times the
    paper's node count (``scale < 1`` produces the laptop-sized instances
    used by the benchmark harness; ``scale = 1`` matches the paper's sizes).
    """
    if name not in ISCAS_PROFILES:
        raise WorkloadError(f"unknown ISCAS circuit {name!r}; valid: {list_iscas_names()}")
    if name == "c17":
        return c17_network()
    profile = ISCAS_PROFILES[name]
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    target_gates = max(2, int(round(profile.nodes * scale)))
    # Primary inputs and outputs shrink along with the logic so that scaled
    # instances keep the original circuit's shape (a 20-gate cone with 32
    # primary outputs would be trivially un-pebbleable in any interesting way).
    target_inputs = max(2, min(profile.inputs, int(round(profile.inputs * scale)) or 2,
                               target_gates))
    target_outputs = max(1, min(profile.outputs, int(round(profile.outputs * scale)) or 1,
                                target_gates))
    target_depth = max(3, int(round(profile.depth * min(1.0, scale ** 0.5))))
    generation_seed = seed if seed is not None else _stable_seed(name)
    network = _layered_gate_network(
        name=f"{name}_like" if scale != 1.0 else name,
        num_inputs=target_inputs,
        num_outputs=target_outputs,
        num_gates=target_gates,
        depth=target_depth,
        seed=generation_seed,
    )
    return network


def _stable_seed(name: str) -> int:
    """A deterministic per-circuit seed (independent of PYTHONHASHSEED)."""
    value = 0
    for char in name:
        value = (value * 131 + ord(char)) % (2**31 - 1)
    return value


def _layered_gate_network(
    *,
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_gates: int,
    depth: int,
    seed: int,
) -> LogicNetwork:
    """Build a layered random gate network with the requested size profile."""
    rng = random.Random(seed)
    network = LogicNetwork(name=name)
    inputs = [network.add_input(f"pi{i}") for i in range(num_inputs)]

    depth = max(1, min(depth, num_gates))
    layer_sizes = [1] * depth
    for _ in range(num_gates - depth):
        layer_sizes[rng.randrange(depth)] += 1

    gate_types = ["NAND", "NOR", "AND", "OR", "XOR"]
    weights = [0.35, 0.15, 0.2, 0.1, 0.2]
    previous_signals = list(inputs)
    all_signals = list(inputs)
    unconsumed: list[str] = []
    counter = 0
    for layer_index, size in enumerate(layer_sizes):
        current_layer: list[str] = []
        for _ in range(size):
            signal = f"g{counter}"
            counter += 1
            gate_type = rng.choices(gate_types, weights)[0]
            # Bias fan-ins towards signals nobody reads yet (real netlists
            # have no dangling logic), then towards the previous layer to
            # obtain realistic depth.
            fanins: list[str] = []
            for _ in range(2):
                if unconsumed and rng.random() < 0.6:
                    pool = unconsumed
                elif rng.random() < 0.75 or layer_index == 0:
                    pool = previous_signals
                else:
                    pool = all_signals
                fanins.append(rng.choice(pool))
            if fanins[0] == fanins[1]:
                alternatives = [s for s in all_signals if s != fanins[0]]
                if alternatives:
                    fanins[1] = rng.choice(alternatives)
            network.add_gate(signal, gate_type, list(dict.fromkeys(fanins)))
            for fanin in fanins:
                if fanin in unconsumed:
                    unconsumed.remove(fanin)
            current_layer.append(signal)
            all_signals.append(signal)
            unconsumed.append(signal)
        previous_signals = current_layer

    # Primary outputs: prefer the gates nobody reads (so that as little logic
    # as possible dangles), then fill the remaining slots with the deepest
    # signals.  Any gate that still ends up outside every output cone is
    # dropped when the network is converted to a pebbling DAG (see
    # repro.workloads.registry), mirroring the dangling-logic sweep every
    # synthesis tool performs.
    outputs = list(unconsumed[-num_outputs:])
    for signal in reversed(all_signals):
        if len(outputs) >= num_outputs:
            break
        if signal not in inputs and signal not in outputs:
            outputs.append(signal)
    for signal in outputs:
        network.add_output(signal)
    network.validate()
    return network
