"""Exception hierarchy for the :mod:`repro` library.

Every exception raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class CnfError(ReproError):
    """Raised for malformed CNF formulas, clauses or literals."""


class SolverError(ReproError):
    """Raised when the SAT solver is used incorrectly (e.g. bad literal)."""


class TransientSolverError(SolverError):
    """A solver failure that is expected to clear on a retry.

    Raised for injected/transient faults (a chaos-backend crash, a flaky
    first solve): the formula is fine, the *attempt* failed.  Retry layers
    treat any error as retryable, but this class lets callers and tests
    distinguish deliberate fault injection from genuine misuse.
    """


class ChaosInjectedError(TransientSolverError):
    """A failure injected on purpose by the ``chaos`` SAT backend."""


class ResourceLimitError(ReproError):
    """Raised when a solver exhausts a conflict/time budget and the caller
    asked for limit violations to be raised instead of reported."""


class DagError(ReproError):
    """Raised for structural problems in dependency graphs (cycles,
    unknown nodes, duplicate identifiers)."""


class LogicNetworkError(ReproError):
    """Raised for malformed logic networks or parse errors in ``.bench``."""


class BenchParseError(LogicNetworkError):
    """Raised when an ISCAS-89 ``.bench`` file cannot be parsed."""


class SlpError(ReproError):
    """Raised for malformed straight-line programs."""


class PebblingError(ReproError):
    """Raised for invalid pebbling strategies or unsatisfiable requests
    detected before/without calling the solver."""


class InvalidStrategyError(PebblingError):
    """Raised when a pebbling strategy violates the rules of the game."""


class CircuitError(ReproError):
    """Raised for malformed reversible circuits or qubit bookkeeping bugs."""


class WorkloadError(ReproError):
    """Raised when an unknown benchmark workload is requested."""
