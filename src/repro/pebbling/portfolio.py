"""Parallel portfolio orchestration of pebbling searches.

The paper's evaluation is dominated by *sweeps*: Table I scans pebble
budgets per workload, Fig. 5 scans budgets per program, and any serious
batch run scans many workloads.  Every point of such a sweep is an
independent SAT search, so this module fans them out across a
:class:`concurrent.futures.ProcessPoolExecutor` (pure-Python SAT solving is
CPU-bound, so processes — not threads — are required to actually use more
than one core).

Design rules:

* **Tasks are plain data.**  A :class:`PortfolioTask` is a frozen,
  picklable description (workload *name*, not a DAG object); each worker
  rebuilds its DAG from the registry, which keeps inter-process traffic to
  a few hundred bytes per task.
* **Per-worker time budgets.**  Every task carries its own ``time_limit``
  which bounds the SAT search inside the worker, mirroring the paper's
  per-instance 2-minute budget.
* **Deterministic merging.**  Results are returned in task-submission
  order regardless of completion order, and a worker crash is captured as
  an ``error`` record instead of poisoning the whole sweep, so ``--jobs 1``
  and ``--jobs N`` produce identical reports (modulo runtimes).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import PebblingError
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import strategy_from_name
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.sat.cards import CardinalityEncoding
from repro.workloads.registry import (
    BatchEntry,
    format_task_name,
    load_workload_or_path,
    suite_entries,
)


@dataclass(frozen=True)
class PortfolioTask:
    """One pebbling search of a sweep, as picklable plain data."""

    workload: str
    pebbles: int
    scale: float = 1.0
    single_move: bool = False
    cardinality: str = "sequential"
    schedule: str = "linear"
    step_increment: int = 1
    incremental: bool = True
    time_limit: float | None = 60.0
    max_steps: int | None = None
    initial_steps: int | None = None
    weighted: bool = False

    @property
    def name(self) -> str:
        """Stable display/merge key of the task (shared with BatchEntry)."""
        return format_task_name(
            self.workload,
            self.pebbles,
            single_move=self.single_move,
            scale=self.scale,
            weighted=self.weighted,
        )


@dataclass
class PortfolioRecord:
    """The merged result of one portfolio task."""

    task: PortfolioTask
    outcome: str
    steps: int | None = None
    moves: int | None = None
    pebbles_used: int | None = None
    weight_used: float | None = None
    runtime: float = 0.0
    sat_calls: int = 0
    configurations: list[list[str]] | None = None
    error: str | None = None

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def found(self) -> bool:
        return self.outcome == "solution"

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary row used by the CLI table and benchmark report."""
        return {
            "name": self.name,
            "workload": self.task.workload,
            "pebbles": self.task.pebbles,
            "outcome": self.outcome,
            "steps": self.steps,
            "moves": self.moves,
            "pebbles_used": self.pebbles_used,
            "weight_used": self.weight_used,
            "runtime": round(self.runtime, 3),
            "sat_calls": self.sat_calls,
            "error": self.error,
        }


#: Per-process cache of open result stores, keyed by database path: a pool
#: worker executes many tasks, and reopening SQLite (plus re-fingerprinting
#: through a cold connection) per task would waste the cache's win.
_WORKER_STORES: dict[str, object] = {}
_WORKER_STORES_PID: int | None = None


def _resolve_store(store: object):
    """Accept ``None``, a database path, or an open ``ResultStore``.

    Paths are what crosses process boundaries (stores do not pickle); each
    worker process opens its own connection once and reuses it.  The cache
    is owned by one PID: a forked pool worker inherits the parent's dict,
    and using an SQLite connection across ``fork`` is forbidden (shared
    file descriptors break the WAL locking protocol), so a PID change
    drops the inherited entries and opens fresh connections.
    """
    if store is None or not isinstance(store, str):
        return store
    global _WORKER_STORES_PID
    pid = os.getpid()
    if pid != _WORKER_STORES_PID:
        _WORKER_STORES.clear()
        _WORKER_STORES_PID = pid
    opened = _WORKER_STORES.get(store)
    if opened is None:
        from repro.store import ResultStore

        opened = _WORKER_STORES[store] = ResultStore(store)
    return opened


def _usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    if hasattr(os, "process_cpu_count"):  # Python 3.13+
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    else:  # pragma: no cover — macOS/Windows fallback
        count = os.cpu_count()
    return count or 1


def task_solve_parameters(task: PortfolioTask) -> dict[str, object]:
    """The exact keyword surface a task hands to ``solve`` (minus store).

    Shared with the async service layer so a service-side cache probe for
    a task builds the *same* content address the worker would.
    """
    options = EncodingOptions(
        cardinality=CardinalityEncoding.from_name(task.cardinality),
        max_moves_per_step=1 if task.single_move else None,
        weighted=task.weighted,
    )
    # strategy_from_name validates the combination — a non-linear
    # schedule with a non-default step_increment becomes an error
    # record, never a silently ignored parameter.
    search = strategy_from_name(task.schedule, step_increment=task.step_increment)
    return {
        "budget": task.pebbles,
        "options": options,
        "search": search,
        "incremental": task.incremental,
        "initial_steps": task.initial_steps,
        "max_steps": task.max_steps,
        "step_floor": None,
    }


def record_from_result(task: PortfolioTask, result) -> PortfolioRecord:
    """Fold a :class:`~repro.pebbling.solver.PebblingResult` into a record."""
    record = PortfolioRecord(
        task=task,
        outcome=result.outcome.value,
        steps=result.num_steps,
        moves=result.num_moves,
        runtime=result.runtime,
        sat_calls=len(result.attempts),
    )
    if result.strategy is not None:
        record.pebbles_used = result.strategy.max_pebbles
        record.weight_used = result.strategy.max_weight
        record.configurations = [
            sorted(str(node) for node in configuration)
            for configuration in result.strategy.configurations
        ]
    return record


def _execute_task(task: PortfolioTask, store: object = None) -> PortfolioRecord:
    """Run one task start-to-finish inside a worker process.

    ``store`` is ``None``, a database path (what the process pool ships) or
    an open :class:`~repro.store.ResultStore` (inline execution).
    """
    try:
        dag = load_workload_or_path(task.workload, scale=task.scale)
        parameters = task_solve_parameters(task)
        solver = ReversiblePebblingSolver(
            dag,
            options=parameters["options"],
            incremental=task.incremental,
        )
        result = solver.solve(
            task.pebbles,
            strategy=parameters["search"],
            time_limit=task.time_limit,
            max_steps=task.max_steps,
            initial_steps=task.initial_steps,
            store=_resolve_store(store),
        )
    except Exception as error:  # noqa: BLE001 — a crashed task must not kill the sweep
        return PortfolioRecord(task=task, outcome="error", error=str(error))
    return record_from_result(task, result)


def run_portfolio(
    tasks: Iterable[PortfolioTask],
    *,
    jobs: int = 1,
    store_path: str | None = None,
    force_pool: bool = False,
) -> list[PortfolioRecord]:
    """Run every task, ``jobs`` at a time, and merge deterministically.

    The process pool is only spun up when it can actually help: with
    ``jobs == 1``, a single task, or a host that exposes **one usable
    core** (CPU affinity included), the tasks run inline — CPU-bound SAT
    searches cannot overlap on one core, so the pool would only add its
    pickling/fork overhead (the ``x0.87`` jobs-1 regression recorded in
    BENCH_2).  ``force_pool`` overrides the fallback for parity tests and
    pool-overhead measurements.  Either way the returned list is ordered
    like ``tasks``.

    ``store_path`` opts every task into a shared
    :class:`~repro.store.ResultStore` at that database path; each worker
    process opens its own connection (SQLite WAL handles the concurrency),
    answers exact repeats from the cache and warm-starts neighbouring
    budgets.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise PebblingError("jobs must be >= 1")
    if not task_list:
        return []
    inline = jobs == 1 or len(task_list) <= 1 or _usable_cores() <= 1
    if inline and not force_pool:
        return [_execute_task(task, store_path) for task in task_list]
    records: list[PortfolioRecord] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(task_list))) as pool:
        futures = [pool.submit(_execute_task, task, store_path) for task in task_list]
        for task, future in zip(task_list, futures):
            try:
                records.append(future.result())
            except Exception as error:  # noqa: BLE001 — e.g. a worker killed by the OS
                records.append(
                    PortfolioRecord(task=task, outcome="error", error=str(error))
                )
    return records


def tasks_from_suite(
    suite: str | Sequence[BatchEntry],
    *,
    time_limit: float | None = 60.0,
    schedule: str = "linear",
    cardinality: str = "sequential",
    step_increment: int = 1,
    incremental: bool = True,
) -> list[PortfolioTask]:
    """Turn a named batch suite (or explicit entries) into portfolio tasks."""
    entries = suite_entries(suite) if isinstance(suite, str) else list(suite)
    return [
        PortfolioTask(
            workload=entry.workload,
            pebbles=entry.pebbles,
            scale=entry.scale,
            single_move=entry.single_move,
            time_limit=time_limit,
            schedule=schedule,
            cardinality=cardinality,
            step_increment=step_increment,
            incremental=incremental,
        )
        for entry in entries
    ]


def budget_sweep_tasks(
    workload: str,
    budgets: Iterable[int],
    *,
    scale: float = 1.0,
    time_limit: float | None = 120.0,
    schedule: str = "linear",
    **task_kwargs,
) -> list[PortfolioTask]:
    """Tasks for a Table-I style budget sweep over one workload."""
    return [
        PortfolioTask(
            workload=workload,
            pebbles=budget,
            scale=scale,
            time_limit=time_limit,
            schedule=schedule,
            **task_kwargs,
        )
        for budget in budgets
    ]


@dataclass
class SweepResult:
    """Outcome of a parallel Table-I budget sweep."""

    workload: str
    best: PortfolioRecord | None
    records: list[PortfolioRecord] = field(default_factory=list)

    @property
    def minimum_pebbles(self) -> int | None:
        return self.best.task.pebbles if self.best is not None else None


def minimize_pebbles_portfolio(
    workload: str,
    *,
    scale: float = 1.0,
    jobs: int = 1,
    timeout_per_budget: float | None = 120.0,
    lower_bound: int | None = None,
    upper_bound: int | None = None,
    schedule: str = "linear",
    store_path: str | None = None,
    **task_kwargs,
) -> SweepResult:
    """Parallel version of the Table-I outer loop.

    Instead of scanning budgets one at a time (stopping after the first
    failure), every budget of ``[lower_bound, upper_bound]`` (inclusive —
    the eager-Bennett upper bound is the guaranteed-feasible anchor) becomes
    an independent task with its own per-budget timeout, the tasks run
    ``jobs``-wide, and the smallest budget with a solution wins.  The
    sequential scan's early-exit saves *work*; the portfolio saves
    *wall-clock* — the right trade once cores are available.
    """
    dag = load_workload_or_path(workload, scale=scale)
    probe = ReversiblePebblingSolver(dag)
    if lower_bound is None:
        lower_bound = probe.minimum_pebbles_lower_bound()
    if upper_bound is None:
        from repro.pebbling.bennett import eager_bennett_strategy

        upper_bound = eager_bennett_strategy(dag).max_pebbles
    if upper_bound < lower_bound:
        upper_bound = lower_bound
    tasks = budget_sweep_tasks(
        workload,
        range(lower_bound, upper_bound + 1),
        scale=scale,
        time_limit=timeout_per_budget,
        schedule=schedule,
        **task_kwargs,
    )
    records = run_portfolio(tasks, jobs=jobs, store_path=store_path)
    best = None
    for record in records:  # ascending budgets: first solution is minimal
        if record.found:
            best = record
            break
    return SweepResult(workload=workload, best=best, records=records)
