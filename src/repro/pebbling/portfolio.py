"""Parallel portfolio orchestration of pebbling searches.

The paper's evaluation is dominated by *sweeps*: Table I scans pebble
budgets per workload, Fig. 5 scans budgets per program, and any serious
batch run scans many workloads.  Every point of such a sweep is an
independent SAT search, so this module fans them out across a
:class:`concurrent.futures.ProcessPoolExecutor` (pure-Python SAT solving is
CPU-bound, so processes — not threads — are required to actually use more
than one core).

Design rules:

* **Tasks are plain data.**  A :class:`PortfolioTask` is a frozen,
  picklable description (workload *name*, not a DAG object); each worker
  rebuilds its DAG from the registry, which keeps inter-process traffic to
  a few hundred bytes per task.
* **Per-worker time budgets.**  Every task carries its own ``time_limit``
  which bounds the SAT search inside the worker, mirroring the paper's
  per-instance 2-minute budget.
* **Deterministic merging.**  Results are returned in task-submission
  order regardless of completion order, and a worker crash is captured as
  an ``error`` record instead of poisoning the whole sweep, so ``--jobs 1``
  and ``--jobs N`` produce identical reports (modulo runtimes).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.errors import PebblingError
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import strategy_from_name
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.sat.cards import CardinalityEncoding
from repro.workloads.registry import (
    BatchEntry,
    format_task_name,
    load_workload_or_path,
    suite_entries,
)


@dataclass(frozen=True)
class PortfolioTask:
    """One pebbling search of a sweep, as picklable plain data.

    ``backend`` is an incremental-SAT backend *spec string* from the
    registry in :mod:`repro.sat.backend` — never a class or factory
    callable.  Specs survive pickling into pool workers unchanged; an
    unknown or host-unavailable spec surfaces as an ``error`` record from
    the worker, it never silently falls back to the default engine.
    """

    workload: str
    pebbles: int
    scale: float = 1.0
    single_move: bool = False
    cardinality: str = "sequential"
    schedule: str = "linear"
    step_increment: int = 1
    incremental: bool = True
    time_limit: float | None = 60.0
    max_steps: int | None = None
    initial_steps: int | None = None
    weighted: bool = False
    backend: str = "cdcl"

    def __post_init__(self) -> None:
        if not isinstance(self.backend, str):
            # The historical trap: a callable solver factory pickles (or
            # fails to) into workers that then quietly solve with the
            # default engine.  Reject it loudly at construction time.
            raise PebblingError(
                "PortfolioTask.backend must be a registry backend spec "
                f"string (e.g. 'cdcl', 'dpll', 'external:<command>'), got "
                f"{self.backend!r}; solver classes/factories do not cross "
                "process boundaries"
            )

    @property
    def name(self) -> str:
        """Stable display/merge key of the task (shared with BatchEntry).

        Deliberately backend-free: a racing portfolio runs the *same* task
        on several backends and merges by this name.
        """
        return format_task_name(
            self.workload,
            self.pebbles,
            single_move=self.single_move,
            scale=self.scale,
            weighted=self.weighted,
        )


@dataclass
class PortfolioRecord:
    """The merged result of one portfolio task.

    ``backend`` names the spec that *produced* the payload (for a racing
    task: the winning lane; for a cache-served task: the original
    producer).  ``race`` holds the per-backend lane summaries of a
    ``race_backends`` run, ``None`` for ordinary tasks.
    """

    task: PortfolioTask
    outcome: str
    steps: int | None = None
    moves: int | None = None
    pebbles_used: int | None = None
    weight_used: float | None = None
    runtime: float = 0.0
    sat_calls: int = 0
    configurations: list[list[str]] | None = None
    error: str | None = None
    complete: bool = False
    backend: str | None = None
    race: dict[str, dict[str, object]] | None = None

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def found(self) -> bool:
        return self.outcome == "solution"

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary row used by the CLI table and benchmark report."""
        row: dict[str, object] = {
            "name": self.name,
            "workload": self.task.workload,
            "pebbles": self.task.pebbles,
            "outcome": self.outcome,
            "steps": self.steps,
            "moves": self.moves,
            "pebbles_used": self.pebbles_used,
            "weight_used": self.weight_used,
            "runtime": round(self.runtime, 3),
            "sat_calls": self.sat_calls,
            "error": self.error,
            "complete": self.complete,
            "backend": self.backend,
        }
        if self.race is not None:
            row["race"] = self.race
        return row


#: Per-process cache of open result stores, keyed by database path: a pool
#: worker executes many tasks, and reopening SQLite (plus re-fingerprinting
#: through a cold connection) per task would waste the cache's win.
_WORKER_STORES: dict[str, object] = {}
_WORKER_STORES_PID: int | None = None


def _resolve_store(store: object):
    """Accept ``None``, a database path, or an open ``ResultStore``.

    Paths are what crosses process boundaries (stores do not pickle); each
    worker process opens its own connection once and reuses it.  The cache
    is owned by one PID: a forked pool worker inherits the parent's dict,
    and using an SQLite connection across ``fork`` is forbidden (shared
    file descriptors break the WAL locking protocol), so a PID change
    drops the inherited entries and opens fresh connections.
    """
    if store is None or not isinstance(store, str):
        return store
    global _WORKER_STORES_PID
    pid = os.getpid()
    if pid != _WORKER_STORES_PID:
        _WORKER_STORES.clear()
        _WORKER_STORES_PID = pid
    opened = _WORKER_STORES.get(store)
    if opened is None:
        from repro.store import ResultStore

        opened = _WORKER_STORES[store] = ResultStore(store)
    return opened


def _usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    if hasattr(os, "process_cpu_count"):  # Python 3.13+
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    else:  # pragma: no cover — macOS/Windows fallback
        count = os.cpu_count()
    return count or 1


def task_solve_parameters(task: PortfolioTask) -> dict[str, object]:
    """The exact keyword surface a task hands to ``solve`` (minus store).

    Shared with the async service layer so a service-side cache probe for
    a task builds the *same* content address the worker would.
    """
    options = EncodingOptions(
        cardinality=CardinalityEncoding.from_name(task.cardinality),
        max_moves_per_step=1 if task.single_move else None,
        weighted=task.weighted,
    )
    # strategy_from_name validates the combination — a non-linear
    # schedule with a non-default step_increment becomes an error
    # record, never a silently ignored parameter.
    search = strategy_from_name(task.schedule, step_increment=task.step_increment)
    return {
        "budget": task.pebbles,
        "options": options,
        "search": search,
        "incremental": task.incremental,
        "initial_steps": task.initial_steps,
        "max_steps": task.max_steps,
        "step_floor": None,
    }


def record_from_result(task: PortfolioTask, result) -> PortfolioRecord:
    """Fold a :class:`~repro.pebbling.solver.PebblingResult` into a record."""
    record = PortfolioRecord(
        task=task,
        outcome=result.outcome.value,
        steps=result.num_steps,
        moves=result.num_moves,
        runtime=result.runtime,
        sat_calls=len(result.attempts),
        complete=result.complete,
        backend=result.backend,
    )
    if result.strategy is not None:
        record.pebbles_used = result.strategy.max_pebbles
        record.weight_used = result.strategy.max_weight
        record.configurations = [
            sorted(str(node) for node in configuration)
            for configuration in result.strategy.configurations
        ]
    return record


def _execute_task(task: PortfolioTask, store: object = None) -> PortfolioRecord:
    """Run one task start-to-finish inside a worker process.

    ``store`` is ``None``, a database path (what the process pool ships) or
    an open :class:`~repro.store.ResultStore` (inline execution).
    """
    try:
        dag = load_workload_or_path(task.workload, scale=task.scale)
        parameters = task_solve_parameters(task)
        solver = ReversiblePebblingSolver(
            dag,
            options=parameters["options"],
            incremental=task.incremental,
            backend=task.backend,
        )
        result = solver.solve(
            task.pebbles,
            strategy=parameters["search"],
            time_limit=task.time_limit,
            max_steps=task.max_steps,
            initial_steps=task.initial_steps,
            store=_resolve_store(store),
        )
    except Exception as error:  # noqa: BLE001 — a crashed task must not kill the sweep
        return PortfolioRecord(task=task, outcome="error", error=str(error))
    return record_from_result(task, result)


def run_portfolio(
    tasks: Iterable[PortfolioTask],
    *,
    jobs: int = 1,
    store_path: str | None = None,
    force_pool: bool = False,
    race_backends: Sequence[str] | None = None,
) -> list[PortfolioRecord]:
    """Run every task, ``jobs`` at a time, and merge deterministically.

    The process pool is only spun up when it can actually help: with
    ``jobs == 1``, a single task, or a host that exposes **one usable
    core** (CPU affinity included), the tasks run inline — CPU-bound SAT
    searches cannot overlap on one core, so the pool would only add its
    pickling/fork overhead (the ``x0.87`` jobs-1 regression recorded in
    BENCH_2).  ``force_pool`` overrides the fallback for parity tests and
    pool-overhead measurements.  Either way the returned list is ordered
    like ``tasks``.

    ``store_path`` opts every task into a shared
    :class:`~repro.store.ResultStore` at that database path; each worker
    process opens its own connection (SQLite WAL handles the concurrency),
    answers exact repeats from the cache and warm-starts neighbouring
    budgets.

    ``race_backends`` switches the portfolio into *racing* mode: every
    task runs once per listed backend spec (one lane each, fanned out
    across the same pool), and the lanes merge back into one record per
    task — the first **complete** lane wins (complete = the search ran to
    its natural end, not a timeout), ranked by lane runtime with the list
    order as the deterministic tie-break; with no complete lane the best
    partial lane is kept.  Each merged record carries the per-lane
    summaries in ``race`` and the winner's spec in ``backend``.  Raced
    lanes deliberately run **without** the result store: its content
    addresses are backend-invariant, so a shared cache would answer every
    lane after the first from the first lane's result and the race would
    compare cache lookups instead of backends.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise PebblingError("jobs must be >= 1")
    if not task_list:
        return []
    if race_backends is not None:
        return _run_race(
            task_list,
            list(race_backends),
            jobs=jobs,
            force_pool=force_pool,
        )
    inline = jobs == 1 or len(task_list) <= 1 or _usable_cores() <= 1
    if inline and not force_pool:
        return [_execute_task(task, store_path) for task in task_list]
    records: list[PortfolioRecord] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(task_list))) as pool:
        futures = [pool.submit(_execute_task, task, store_path) for task in task_list]
        for task, future in zip(task_list, futures):
            try:
                records.append(future.result())
            except Exception as error:  # noqa: BLE001 — e.g. a worker killed by the OS
                records.append(
                    PortfolioRecord(task=task, outcome="error", error=str(error))
                )
    return records


def _lane_summary(record: PortfolioRecord) -> dict[str, object]:
    """The per-backend entry a merged race record reports."""
    return {
        "outcome": record.outcome,
        "steps": record.steps,
        "runtime": round(record.runtime, 3),
        "sat_calls": record.sat_calls,
        "complete": record.complete,
        "error": record.error,
        "produced_by": record.backend,
    }


def _merge_race(
    task: PortfolioTask,
    backends: Sequence[str],
    lanes: Sequence[PortfolioRecord],
) -> PortfolioRecord:
    """Fold one task's backend lanes into its merged racing record.

    The winner is the first lane to *complete* its search: lanes are
    ranked by ``(not complete, no solution, runtime, lane index)``, so a
    conclusive answer always beats a timeout, a timeout that still carries
    a witness beats one that found nothing, faster answers beat slower
    ones, and the caller's backend order breaks exact ties — the merge is
    a pure function of the lane records.  Error lanes rank last but are
    still reported in ``race``.
    """
    def rank(indexed: tuple[int, PortfolioRecord]) -> tuple[int, int, int, float, int]:
        index, lane = indexed
        return (
            1 if lane.outcome == "error" else 0,
            0 if lane.complete else 1,
            0 if lane.outcome == "solution" else 1,
            lane.runtime,
            index,
        )

    winner_index, winner = min(enumerate(lanes), key=rank)
    merged = PortfolioRecord(
        task=task,
        outcome=winner.outcome,
        steps=winner.steps,
        moves=winner.moves,
        pebbles_used=winner.pebbles_used,
        weight_used=winner.weight_used,
        runtime=winner.runtime,
        sat_calls=winner.sat_calls,
        configurations=winner.configurations,
        error=winner.error,
        complete=winner.complete,
        # The lane's own record names the actual producer; fall back to
        # the lane spec for error lanes that never built a solver.
        backend=winner.backend or backends[winner_index],
        race={
            spec: _lane_summary(lane) for spec, lane in zip(backends, lanes)
        },
    )
    return merged


def _run_race(
    tasks: Sequence[PortfolioTask],
    backends: Sequence[str],
    *,
    jobs: int,
    force_pool: bool,
) -> list[PortfolioRecord]:
    """Race every task across ``backends`` (see :func:`run_portfolio`).

    No ``store_path``: the store's backend-invariant addresses would turn
    every lane after the first into a cache lookup of the first lane's
    answer, crowning a "winner" that never solved anything.
    """
    if not backends:
        raise PebblingError("race_backends needs at least one backend spec")
    lanes_per_task = [
        [replace(task, backend=spec) for spec in backends] for task in tasks
    ]
    flat = [lane for lanes in lanes_per_task for lane in lanes]
    flat_records = run_portfolio(flat, jobs=jobs, force_pool=force_pool)
    merged: list[PortfolioRecord] = []
    width = len(backends)
    for position, task in enumerate(tasks):
        lanes = flat_records[position * width:(position + 1) * width]
        merged.append(_merge_race(task, backends, lanes))
    return merged


def tasks_from_suite(
    suite: str | Sequence[BatchEntry],
    *,
    time_limit: float | None = 60.0,
    schedule: str = "linear",
    cardinality: str = "sequential",
    step_increment: int = 1,
    incremental: bool = True,
    backend: str = "cdcl",
) -> list[PortfolioTask]:
    """Turn a named batch suite (or explicit entries) into portfolio tasks."""
    entries = suite_entries(suite) if isinstance(suite, str) else list(suite)
    return [
        PortfolioTask(
            workload=entry.workload,
            pebbles=entry.pebbles,
            scale=entry.scale,
            single_move=entry.single_move,
            time_limit=time_limit,
            schedule=schedule,
            cardinality=cardinality,
            step_increment=step_increment,
            incremental=incremental,
            backend=backend,
        )
        for entry in entries
    ]


def budget_sweep_tasks(
    workload: str,
    budgets: Iterable[int],
    *,
    scale: float = 1.0,
    time_limit: float | None = 120.0,
    schedule: str = "linear",
    **task_kwargs,
) -> list[PortfolioTask]:
    """Tasks for a Table-I style budget sweep over one workload."""
    return [
        PortfolioTask(
            workload=workload,
            pebbles=budget,
            scale=scale,
            time_limit=time_limit,
            schedule=schedule,
            **task_kwargs,
        )
        for budget in budgets
    ]


@dataclass
class SweepResult:
    """Outcome of a parallel Table-I budget sweep."""

    workload: str
    best: PortfolioRecord | None
    records: list[PortfolioRecord] = field(default_factory=list)

    @property
    def minimum_pebbles(self) -> int | None:
        return self.best.task.pebbles if self.best is not None else None


def minimize_pebbles_portfolio(
    workload: str,
    *,
    scale: float = 1.0,
    jobs: int = 1,
    timeout_per_budget: float | None = 120.0,
    lower_bound: int | None = None,
    upper_bound: int | None = None,
    schedule: str = "linear",
    store_path: str | None = None,
    **task_kwargs,
) -> SweepResult:
    """Parallel version of the Table-I outer loop.

    Instead of scanning budgets one at a time (stopping after the first
    failure), every budget of ``[lower_bound, upper_bound]`` (inclusive —
    the eager-Bennett upper bound is the guaranteed-feasible anchor) becomes
    an independent task with its own per-budget timeout, the tasks run
    ``jobs``-wide, and the smallest budget with a solution wins.  The
    sequential scan's early-exit saves *work*; the portfolio saves
    *wall-clock* — the right trade once cores are available.
    """
    dag = load_workload_or_path(workload, scale=scale)
    probe = ReversiblePebblingSolver(dag)
    if lower_bound is None:
        lower_bound = probe.minimum_pebbles_lower_bound()
    if upper_bound is None:
        from repro.pebbling.bennett import eager_bennett_strategy

        upper_bound = eager_bennett_strategy(dag).max_pebbles
    if upper_bound < lower_bound:
        upper_bound = lower_bound
    tasks = budget_sweep_tasks(
        workload,
        range(lower_bound, upper_bound + 1),
        scale=scale,
        time_limit=timeout_per_budget,
        schedule=schedule,
        **task_kwargs,
    )
    records = run_portfolio(tasks, jobs=jobs, store_path=store_path)
    best = None
    for record in records:  # ascending budgets: first solution is minimal
        if record.found:
            best = record
            break
    return SweepResult(workload=workload, best=best, records=records)
