"""Parallel portfolio orchestration of pebbling searches.

The paper's evaluation is dominated by *sweeps*: Table I scans pebble
budgets per workload, Fig. 5 scans budgets per program, and any serious
batch run scans many workloads.  Every point of such a sweep is an
independent SAT search, so this module fans them out across a
:class:`concurrent.futures.ProcessPoolExecutor` (pure-Python SAT solving is
CPU-bound, so processes — not threads — are required to actually use more
than one core).

Design rules:

* **Tasks are plain data.**  A :class:`PortfolioTask` is a frozen,
  picklable description (workload *name*, not a DAG object); each worker
  rebuilds its DAG from the registry, which keeps inter-process traffic to
  a few hundred bytes per task.
* **Per-worker time budgets.**  Every task carries its own ``time_limit``
  which bounds the SAT search inside the worker, mirroring the paper's
  per-instance 2-minute budget.
* **Deterministic merging.**  Results are returned in task-submission
  order regardless of completion order, and a worker crash is captured as
  an ``error`` record instead of poisoning the whole sweep, so ``--jobs 1``
  and ``--jobs N`` produce identical reports (modulo runtimes).
"""

from __future__ import annotations

import os
import random
import tempfile
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.errors import PebblingError
from repro.obs import metrics as _metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import merge_counters
from repro.obs.trace import TraceContext
from repro.pebbling.cancel import CancellationToken, resolve_token
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import strategy_from_name
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.sat.backend import set_chaos_scope
from repro.sat.cards import CardinalityEncoding
from repro.workloads.registry import (
    BatchEntry,
    format_task_name,
    load_workload_or_path,
    suite_entries,
)


@dataclass(frozen=True)
class PortfolioTask:
    """One pebbling search of a sweep, as picklable plain data.

    ``backend`` is an incremental-SAT backend *spec string* from the
    registry in :mod:`repro.sat.backend` — never a class or factory
    callable.  Specs survive pickling into pool workers unchanged; an
    unknown or host-unavailable spec surfaces as an ``error`` record from
    the worker, it never silently falls back to the default engine.
    """

    workload: str
    pebbles: int
    scale: float = 1.0
    single_move: bool = False
    cardinality: str = "sequential"
    schedule: str = "linear"
    step_increment: int = 1
    incremental: bool = True
    time_limit: float | None = 60.0
    max_steps: int | None = None
    initial_steps: int | None = None
    weighted: bool = False
    backend: str = "cdcl"
    #: Cube-and-conquer width for this task's step search: ``0`` (the
    #: default) solves sequentially, ``N > 1`` splits the instance into an
    #: exhaustive cube cover raced through the shared bound board (see
    #: :mod:`repro.pebbling.cubes`).  Inline portfolio execution gives the
    #: cube lanes the portfolio's ``jobs`` as their pool width; tasks that
    #: already run inside a pool worker run their lanes inline.
    cubes: int = 0
    #: Trace context shipped into the worker (see :mod:`repro.obs.trace`):
    #: the worker re-activates it so its spans parent under the portfolio
    #: run that submitted the task.  Excluded from equality/hash/repr, so
    #: tracing never changes task identity, dedup, or merge keys.
    trace: TraceContext | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.cubes < 0:
            raise PebblingError("PortfolioTask.cubes must be >= 0")
        if not isinstance(self.backend, str):
            # The historical trap: a callable solver factory pickles (or
            # fails to) into workers that then quietly solve with the
            # default engine.  Reject it loudly at construction time.
            raise PebblingError(
                "PortfolioTask.backend must be a registry backend spec "
                f"string (e.g. 'cdcl', 'dpll', 'external:<command>'), got "
                f"{self.backend!r}; solver classes/factories do not cross "
                "process boundaries"
            )

    @property
    def name(self) -> str:
        """Stable display/merge key of the task (shared with BatchEntry).

        Deliberately backend-free: a racing portfolio runs the *same* task
        on several backends and merges by this name.
        """
        return format_task_name(
            self.workload,
            self.pebbles,
            single_move=self.single_move,
            scale=self.scale,
            weighted=self.weighted,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How a portfolio worker retries one failing task.

    Attempts are numbered from 0; before retry attempt ``n >= 1`` the
    worker sleeps :meth:`delay_before` seconds — exponential backoff with
    *deterministic* jitter (seeded by the task name and attempt number, so
    two runs of the same sweep replay the same delays and the test-suite
    can assert on them).  ``attempt_time_limit`` clamps each attempt's SAT
    budget; ``total_time_limit`` bounds the whole attempt sequence
    including backoff sleeps.  With ``retry_incomplete`` (default) a
    preempted search (timeout / spurious UNKNOWN) is retried too, not just
    hard errors — the best record across attempts is kept either way, so a
    partial answer is never *lost* to a later failed attempt.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    attempt_time_limit: float | None = None
    total_time_limit: float | None = None
    retry_incomplete: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise PebblingError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise PebblingError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise PebblingError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise PebblingError("jitter must be in [0, 1]")
        for name in ("attempt_time_limit", "total_time_limit"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise PebblingError(f"{name} must be > 0 (or None)")

    def delay_before(self, attempt: int, key: str = "") -> float:
        """Backoff sleep (seconds) before retry ``attempt`` (``>= 1``).

        Deterministic in ``(key, attempt)`` and monotone non-decreasing in
        ``attempt`` *by construction*: each attempt's jittered exponential
        delay is folded through a running maximum, so the clamp to
        ``max_delay`` plus an unlucky jitter draw can never make attempt
        ``n + 1`` wait less than attempt ``n``.
        """
        if attempt <= 0:
            return 0.0
        delay = 0.0
        for step in range(1, attempt + 1):
            raw = min(
                self.max_delay,
                self.base_delay * self.backoff_factor ** (step - 1),
            )
            draw = random.Random(f"retry|{key}|{step}").random()
            delay = max(delay, raw * (1.0 + self.jitter * draw))
        return delay


@dataclass
class PortfolioHealth:
    """Mutable fault-tolerance counters of one :func:`run_portfolio` call.

    Pass an instance via ``run_portfolio(..., health=...)`` to collect how
    hard the run had to fight: how often the process pool broke and was
    rebuilt, how many tasks needed retries, and the total retry attempts
    spent.  The service layer aggregates these into its health snapshot.
    """

    pool_rebuilds: int = 0
    retried_tasks: int = 0
    retry_attempts: int = 0

    def absorb_records(self, records: "Sequence[PortfolioRecord]") -> None:
        for record in records:
            if record.retries:
                self.retried_tasks += 1
                self.retry_attempts += record.retries

    def as_dict(self) -> dict[str, int]:
        return {
            "pool_rebuilds": self.pool_rebuilds,
            "retried_tasks": self.retried_tasks,
            "retry_attempts": self.retry_attempts,
        }


@dataclass
class PortfolioRecord:
    """The merged result of one portfolio task.

    ``backend`` names the spec that *produced* the payload (for a racing
    task: the winning lane; for a cache-served task: the original
    producer).  ``race`` holds the per-backend lane summaries of a
    ``race_backends`` run, ``None`` for ordinary tasks.
    """

    task: PortfolioTask
    outcome: str
    steps: int | None = None
    moves: int | None = None
    pebbles_used: int | None = None
    weight_used: float | None = None
    runtime: float = 0.0
    sat_calls: int = 0
    configurations: list[list[str]] | None = None
    error: str | None = None
    complete: bool = False
    backend: str | None = None
    race: dict[str, dict[str, object]] | None = None
    #: Full worker-side traceback of an ``error`` record (``None`` for
    #: successful tasks) — without it a remote failure is one opaque line.
    traceback: str | None = None
    #: Anytime snapshot of an incomplete search (see
    #: :attr:`repro.pebbling.solver.PebblingResult.partial`).
    partial: dict[str, object] | None = None
    #: Retry attempts this record consumed beyond the first try.
    retries: int = 0
    #: Backend specs of race lanes stopped by first-winner cancellation
    #: (``None`` for non-raced records).
    cancelled: list[str] | None = None
    #: Cross-lane bound-board hits of a cube-and-conquer search.
    shared_bound_hits: int = 0
    #: Cube metadata of a cube-and-conquer search (see
    #: :attr:`repro.pebbling.solver.PebblingResult.cubes`).
    cubes: dict[str, object] | None = None
    #: Solver counters aggregated across *every* SAT call this record paid
    #: for — all retry attempts, and for raced tasks all lanes including
    #: the losers (``None`` when no attempt reported counters).
    counters: dict[str, float] | None = None
    #: Per-attempt breakdown ``[{attempt, outcome, sat_calls, counters},
    #: ...]`` preserved when a task needed more than one attempt.
    attempt_stats: list[dict[str, object]] | None = None

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def found(self) -> bool:
        return self.outcome == "solution"

    def as_dict(self) -> dict[str, object]:
        """Plain-dictionary row used by the CLI table and benchmark report."""
        row: dict[str, object] = {
            "name": self.name,
            "workload": self.task.workload,
            "pebbles": self.task.pebbles,
            "outcome": self.outcome,
            "steps": self.steps,
            "moves": self.moves,
            "pebbles_used": self.pebbles_used,
            "weight_used": self.weight_used,
            "runtime": round(self.runtime, 3),
            "sat_calls": self.sat_calls,
            "error": self.error,
            "complete": self.complete,
            "backend": self.backend,
            "traceback": self.traceback,
            "partial": self.partial,
            "retries": self.retries,
        }
        if self.race is not None:
            row["race"] = self.race
            row["cancelled"] = list(self.cancelled or [])
        if self.shared_bound_hits:
            row["shared_bound_hits"] = self.shared_bound_hits
        if self.cubes is not None:
            row["cubes"] = self.cubes
        if self.counters is not None:
            row["counters"] = self.counters
        if self.attempt_stats is not None:
            row["attempt_stats"] = self.attempt_stats
        return row


#: Per-process cache of open result stores, keyed by database path: a pool
#: worker executes many tasks, and reopening SQLite (plus re-fingerprinting
#: through a cold connection) per task would waste the cache's win.
_WORKER_STORES: dict[str, object] = {}
_WORKER_STORES_PID: int | None = None


def _resolve_store(store: object):
    """Accept ``None``, a database path, or an open ``ResultStore``.

    Paths are what crosses process boundaries (stores do not pickle); each
    worker process opens its own connection once and reuses it.  The cache
    is owned by one PID: a forked pool worker inherits the parent's dict,
    and using an SQLite connection across ``fork`` is forbidden (shared
    file descriptors break the WAL locking protocol), so a PID change
    drops the inherited entries and opens fresh connections.
    """
    if store is None or not isinstance(store, str):
        return store
    global _WORKER_STORES_PID
    pid = os.getpid()
    if pid != _WORKER_STORES_PID:
        _WORKER_STORES.clear()
        _WORKER_STORES_PID = pid
    opened = _WORKER_STORES.get(store)
    if opened is None:
        from repro.store import ResultStore

        opened = _WORKER_STORES[store] = ResultStore(store)
    return opened


def _usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    if hasattr(os, "process_cpu_count"):  # Python 3.13+
        count = os.process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    else:  # pragma: no cover — macOS/Windows fallback
        count = os.cpu_count()
    return count or 1


def task_solve_parameters(task: PortfolioTask) -> dict[str, object]:
    """The exact keyword surface a task hands to ``solve`` (minus store).

    Shared with the async service layer so a service-side cache probe for
    a task builds the *same* content address the worker would.
    """
    options = EncodingOptions(
        cardinality=CardinalityEncoding.from_name(task.cardinality),
        max_moves_per_step=1 if task.single_move else None,
        weighted=task.weighted,
    )
    # strategy_from_name validates the combination — a non-linear
    # schedule with a non-default step_increment becomes an error
    # record, never a silently ignored parameter.
    search = strategy_from_name(task.schedule, step_increment=task.step_increment)
    return {
        "budget": task.pebbles,
        "options": options,
        "search": search,
        "incremental": task.incremental,
        "initial_steps": task.initial_steps,
        "max_steps": task.max_steps,
        "step_floor": None,
    }


#: Counter keys derived from the wall clock rather than from solver work.
#: Records must stay byte-identical for identical (task, chaos seed, policy)
#: triples modulo the stripped ``runtime`` field, so timing floats never
#: enter ``PortfolioRecord.counters``; wall time is reported via ``runtime``.
_WALL_CLOCK_COUNTERS = frozenset({"solve_time"})


def _deterministic_counters(stats) -> dict[str, float]:
    """``stats`` without wall-clock keys (incl. ``time_<phase>`` profiles)."""
    if not stats:
        return {}
    return {
        key: value
        for key, value in stats.items()
        if key not in _WALL_CLOCK_COUNTERS and not key.startswith("time_")
    }


def record_from_result(task: PortfolioTask, result) -> PortfolioRecord:
    """Fold a :class:`~repro.pebbling.solver.PebblingResult` into a record."""
    counters: dict[str, float] = {}
    for attempt in result.attempts:
        merge_counters(counters, _deterministic_counters(attempt.solver_stats))
    record = PortfolioRecord(
        task=task,
        outcome=result.outcome.value,
        steps=result.num_steps,
        moves=result.num_moves,
        runtime=result.runtime,
        sat_calls=len(result.attempts),
        complete=result.complete,
        backend=result.backend,
        partial=result.partial,
        shared_bound_hits=result.shared_bound_hits,
        cubes=result.cubes,
        counters=counters or None,
    )
    if result.strategy is not None:
        record.pebbles_used = result.strategy.max_pebbles
        record.weight_used = result.strategy.max_weight
        record.configurations = [
            sorted(str(node) for node in configuration)
            for configuration in result.strategy.configurations
        ]
    return record


def _attempt_task(
    task: PortfolioTask,
    store: object,
    attempt: int,
    epoch: int,
    time_limit: float | None,
    cancel: str | None = None,
    cube_jobs: int = 1,
) -> PortfolioRecord:
    """One attempt of one task; never raises, always returns a record."""
    set_chaos_scope(task.name, attempt=attempt, epoch=epoch)
    try:
        dag = load_workload_or_path(task.workload, scale=task.scale)
        parameters = task_solve_parameters(task)
        solver = ReversiblePebblingSolver(
            dag,
            options=parameters["options"],
            incremental=task.incremental,
            backend=task.backend,
        )
        result = solver.solve(
            task.pebbles,
            strategy=parameters["search"],
            time_limit=time_limit,
            max_steps=task.max_steps,
            initial_steps=task.initial_steps,
            store=_resolve_store(store),
            cubes=task.cubes if task.cubes > 1 else None,
            cube_jobs=cube_jobs,
            cancel=cancel,
        )
    except Exception as error:  # noqa: BLE001 — a crashed task must not kill the sweep
        return PortfolioRecord(
            task=task,
            outcome="error",
            error=str(error),
            traceback=traceback_module.format_exc(),
        )
    return record_from_result(task, result)


def _record_rank(record: PortfolioRecord) -> tuple[int, int, int]:
    """Lower is better: errors < incomplete < no-solution, in that order."""
    return (
        1 if record.outcome == "error" else 0,
        0 if record.complete else 1,
        0 if record.found else 1,
    )


def _execute_task(
    task: PortfolioTask,
    store: object = None,
    retry: "RetryPolicy | None" = None,
    epoch: int = 0,
    cancel: str | None = None,
    cube_jobs: int = 1,
) -> PortfolioRecord:
    """Run one task — retrying per ``retry`` — inside a worker process.

    ``store`` is ``None``, a database path (what the process pool ships) or
    an open :class:`~repro.store.ResultStore` (inline execution).  ``epoch``
    counts pool rebuilds; it feeds the chaos scope so resubmitted work does
    not replay the fault that killed its first pool.

    ``cancel`` is a first-winner cancellation token path (see
    :mod:`repro.pebbling.cancel`): it is checked between retry attempts
    here and between SAT calls inside the solver, so a losing race lane
    stops mid-search instead of running its full time budget.

    The *best* record across attempts wins (complete beats incomplete
    beats error, latest on ties), and it reports the retries consumed —
    a transient failure is healed invisibly, a persistent one still ends
    as an ``error`` record with the last traceback attached.  Counters of
    *every* attempt (not just the winning one) are merged into the
    returned record, with the per-attempt breakdown in ``attempt_stats``
    when more than one attempt ran.
    """
    with obs_trace.activated(task.trace):
        return _execute_attempts(task, store, retry, epoch, cancel, cube_jobs)


def _execute_attempts(
    task: PortfolioTask,
    store: object,
    retry: "RetryPolicy | None",
    epoch: int,
    cancel: str | None,
    cube_jobs: int,
) -> PortfolioRecord:
    policy = retry if retry is not None else RetryPolicy(max_attempts=1)
    token = resolve_token(cancel)
    started = time.monotonic()
    best: PortfolioRecord | None = None
    attempted: list[PortfolioRecord] = []
    attempts_used = 0
    for attempt in range(policy.max_attempts):
        if token is not None and token.cancelled():
            obs_trace.event("task.cancelled", task=task.name, attempt=attempt)
            if best is None:
                best = PortfolioRecord(task=task, outcome="cancelled")
            break
        if attempt:
            delay = policy.delay_before(attempt, key=task.name)
            if policy.total_time_limit is not None:
                budget_left = policy.total_time_limit - (time.monotonic() - started)
                if budget_left <= delay:
                    break  # the sleep alone would blow the total budget
            obs_trace.event(
                "task.retry", task=task.name, attempt=attempt, delay=round(delay, 4)
            )
            _metrics.counter("repro_retries_total").inc()
            time.sleep(delay)
        time_limit = task.time_limit
        if policy.attempt_time_limit is not None:
            time_limit = (
                policy.attempt_time_limit
                if time_limit is None
                else min(time_limit, policy.attempt_time_limit)
            )
        if policy.total_time_limit is not None:
            remaining = policy.total_time_limit - (time.monotonic() - started)
            if remaining <= 0:
                break
            time_limit = remaining if time_limit is None else min(time_limit, remaining)
        with obs_trace.span(
            "task.attempt",
            task=task.name,
            attempt=attempt,
            backend=task.backend,
            epoch=epoch,
        ) as attempt_span:
            record = _attempt_task(
                task, store, attempt, epoch, time_limit, cancel, cube_jobs
            )
            attempt_span.set(outcome=record.outcome, sat_calls=record.sat_calls)
        attempted.append(record)
        attempts_used = attempt + 1
        if best is None or _record_rank(record) <= _record_rank(best):
            best = record
        if record.outcome == "cancelled":
            # A sibling already answered mid-attempt; retrying would only
            # observe the token again.
            break
        if record.outcome != "error" and (
            record.complete or not policy.retry_incomplete
        ):
            break
    if best is None:  # total_time_limit left no room for even one attempt
        best = PortfolioRecord(
            task=task,
            outcome="error",
            error="retry policy's total_time_limit expired before any attempt",
        )
    best.retries = max(0, attempts_used - 1)
    if len(attempted) > 1:
        # The losing attempts' solver work used to vanish with their
        # records; fold every attempt's counters into the survivor and
        # keep the per-attempt breakdown alongside.
        merged: dict[str, float] = {}
        for record in attempted:
            merge_counters(merged, record.counters)
        best.counters = merged or None
        best.attempt_stats = [
            {
                "attempt": index,
                "outcome": record.outcome,
                "sat_calls": record.sat_calls,
                "counters": record.counters,
            }
            for index, record in enumerate(attempted)
        ]
    return best


def run_portfolio(
    tasks: Iterable[PortfolioTask],
    *,
    jobs: int = 1,
    store_path: str | None = None,
    force_pool: bool = False,
    race_backends: Sequence[str] | None = None,
    retry: "RetryPolicy | None" = None,
    health: "PortfolioHealth | None" = None,
    pool_rebuild_limit: int = 2,
    cancel_paths: Sequence[str | None] | None = None,
    on_record: "Callable[[int, PortfolioRecord], None] | None" = None,
) -> list[PortfolioRecord]:
    """Run every task, ``jobs`` at a time, and merge deterministically.

    The process pool is only spun up when it can actually help: with
    ``jobs == 1``, a single task, or a host that exposes **one usable
    core** (CPU affinity included), the tasks run inline — CPU-bound SAT
    searches cannot overlap on one core, so the pool would only add its
    pickling/fork overhead (the ``x0.87`` jobs-1 regression recorded in
    BENCH_2).  ``force_pool`` overrides the fallback for parity tests and
    pool-overhead measurements.  Either way the returned list is ordered
    like ``tasks``.

    ``store_path`` opts every task into a shared
    :class:`~repro.store.ResultStore` at that database path; each worker
    process opens its own connection (SQLite WAL handles the concurrency),
    answers exact repeats from the cache and warm-starts neighbouring
    budgets.

    ``race_backends`` switches the portfolio into *racing* mode: every
    task runs once per listed backend spec (one lane each, fanned out
    across the same pool), and the lanes merge back into one record per
    task — the first **complete** lane wins (complete = the search ran to
    its natural end, not a timeout), ranked by lane runtime with the list
    order as the deterministic tie-break; with no complete lane the best
    partial lane is kept.  Each merged record carries the per-lane
    summaries in ``race`` and the winner's spec in ``backend``.  Raced
    lanes deliberately run **without** the result store: its content
    addresses are backend-invariant, so a shared cache would answer every
    lane after the first from the first lane's result and the race would
    compare cache lookups instead of backends.

    ``retry`` applies a :class:`RetryPolicy` inside every worker (transient
    faults heal without resubmission traffic); ``health`` collects
    fault-tolerance counters into a caller-owned :class:`PortfolioHealth`.
    A worker process dying outright (OOM-kill, segfault, a chaos ``exit``
    fault) breaks the *whole* pool — every unfinished task is resubmitted
    to a fresh pool, at most ``pool_rebuild_limit`` times, before the
    remainder degrades to ``error`` records; finished results are never
    recomputed.

    ``cancel_paths`` aligns one cancellation-token path (or ``None``) with
    each task; workers poll their token between SAT calls and retry
    attempts.  ``on_record`` is called as ``on_record(index, record)`` the
    moment each task finishes — in *completion* order, which is what lets
    the racing layer cancel losing lanes while they are still running.
    Results are absorbed with :func:`concurrent.futures.as_completed`, so
    one slow early task no longer delays sibling absorption; the returned
    list is still ordered like ``tasks``.
    """
    task_list = list(tasks)
    if jobs < 1:
        raise PebblingError("jobs must be >= 1")
    if pool_rebuild_limit < 0:
        raise PebblingError("pool_rebuild_limit must be >= 0")
    if not task_list:
        return []
    with obs_trace.span(
        "portfolio.run",
        tasks=len(task_list),
        jobs=jobs,
        race=race_backends is not None,
    ) as run_span:
        records = _run_portfolio_tasks(
            task_list,
            jobs=jobs,
            store_path=store_path,
            force_pool=force_pool,
            race_backends=race_backends,
            retry=retry,
            health=health,
            pool_rebuild_limit=pool_rebuild_limit,
            cancel_paths=cancel_paths,
            on_record=on_record,
        )
        run_span.set(
            solved=sum(1 for record in records if record.found),
            errors=sum(1 for record in records if record.outcome == "error"),
        )
    if race_backends is None:
        # A racing run already counted its lanes through the inner
        # run_portfolio call; counting the merged records again would
        # double every lane's solver work.
        _metrics.counter("repro_portfolio_tasks_total").inc(len(records))
        for record in records:
            if record.outcome == "error":
                _metrics.counter("repro_portfolio_errors_total").inc()
            if record.retries:
                _metrics.counter("repro_portfolio_retried_tasks_total").inc()
            _metrics.counter("repro_portfolio_sat_calls_total").inc(record.sat_calls)
            _metrics.registry().absorb_counters(record.counters)
    return records


def _run_portfolio_tasks(
    task_list: list[PortfolioTask],
    *,
    jobs: int,
    store_path: str | None,
    force_pool: bool,
    race_backends: Sequence[str] | None,
    retry: "RetryPolicy | None",
    health: "PortfolioHealth | None",
    pool_rebuild_limit: int,
    cancel_paths: Sequence[str | None] | None,
    on_record: "Callable[[int, PortfolioRecord], None] | None",
) -> list[PortfolioRecord]:
    """Validated body of :func:`run_portfolio` (runs inside its span)."""
    ctx = obs_trace.current_context()
    if ctx is not None:
        # Every task carries the trace context so worker-side spans parent
        # under this portfolio run regardless of process boundaries.  A
        # task that already has one (the service stamps its own request
        # span) keeps it — per-request parentage beats per-batch.
        task_list = [
            task if task.trace is not None else replace(task, trace=ctx)
            for task in task_list
        ]
    if race_backends is not None:
        return _run_race(
            task_list,
            list(race_backends),
            jobs=jobs,
            force_pool=force_pool,
            retry=retry,
            health=health,
        )
    if cancel_paths is not None and len(cancel_paths) != len(task_list):
        raise PebblingError("cancel_paths must align with tasks")

    def cancel_of(index: int) -> str | None:
        return cancel_paths[index] if cancel_paths is not None else None

    inline = jobs == 1 or len(task_list) <= 1 or _usable_cores() <= 1
    if inline and not force_pool:
        records = []
        for index, task in enumerate(task_list):
            # Inline tasks run one at a time, so a cube task may use the
            # portfolio's whole ``jobs`` width for its own lanes.
            record = _execute_task(
                task, store_path, retry, 0, cancel_of(index), jobs
            )
            records.append(record)
            if on_record is not None:
                on_record(index, record)
        if health is not None:
            health.absorb_records(records)
        return records
    results: dict[int, PortfolioRecord] = {}
    pending = list(enumerate(task_list))
    epoch = 0
    while pending:
        unfinished: list[tuple[int, PortfolioTask]] = []
        pool_broke = False
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            submitted = {
                pool.submit(
                    _execute_task, task, store_path, retry, epoch, cancel_of(index)
                ): (index, task)
                for index, task in pending
            }
            # Completion order, not submission order: a slow early task no
            # longer delays sibling absorption — and therefore no longer
            # delays first-winner cancellation of the tasks behind it.
            for future in as_completed(submitted):
                index, task = submitted[future]
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    # The pool is gone; this task (and every sibling that
                    # had not finished) must be resubmitted to a new one.
                    pool_broke = True
                    unfinished.append((index, task))
                    continue
                except Exception as error:  # noqa: BLE001 — e.g. an unpicklable result
                    results[index] = PortfolioRecord(
                        task=task,
                        outcome="error",
                        error=str(error),
                        traceback=traceback_module.format_exc(),
                    )
                if on_record is not None:
                    on_record(index, results[index])
        # as_completed surfaces broken-pool tasks in arbitrary order;
        # resubmit them in task order so rebuilt epochs stay deterministic.
        unfinished.sort(key=lambda pair: pair[0])
        if pool_broke:
            if epoch >= pool_rebuild_limit:
                for index, task in unfinished:
                    results[index] = PortfolioRecord(
                        task=task,
                        outcome="error",
                        error=(
                            "worker process pool broke "
                            f"{epoch + 1} times (rebuild limit "
                            f"{pool_rebuild_limit}); task abandoned"
                        ),
                    )
                unfinished = []
            else:
                epoch += 1
                obs_trace.event(
                    "pool.rebuild", epoch=epoch, resubmitted=len(unfinished)
                )
                _metrics.counter("repro_pool_rebuilds_total").inc()
                if health is not None:
                    health.pool_rebuilds += 1
        pending = unfinished
    records = [results[index] for index in range(len(task_list))]
    if health is not None:
        health.absorb_records(records)
    return records


def _lane_summary(record: PortfolioRecord) -> dict[str, object]:
    """The per-backend entry a merged race record reports."""
    summary: dict[str, object] = {
        "outcome": record.outcome,
        "steps": record.steps,
        "runtime": round(record.runtime, 3),
        "sat_calls": record.sat_calls,
        "complete": record.complete,
        "error": record.error,
        "produced_by": record.backend,
    }
    if record.counters is not None:
        summary["counters"] = record.counters
    if record.attempt_stats is not None:
        summary["attempt_stats"] = record.attempt_stats
    return summary


def _merge_race(
    task: PortfolioTask,
    backends: Sequence[str],
    lanes: Sequence[PortfolioRecord],
) -> PortfolioRecord:
    """Fold one task's backend lanes into its merged racing record.

    The winner is the first lane to *complete* its search: lanes are
    ranked by ``(not complete, no solution, no anytime progress, runtime,
    lane index)``, so a conclusive answer always beats a timeout, a
    timeout that still carries a witness beats one that found nothing, a
    lane with an anytime ``partial`` snapshot beats one with no progress
    at all, faster answers beat slower ones, and the caller's backend
    order breaks exact ties — the merge is a pure function of the lane
    records.  Error lanes rank last but are still reported in ``race``;
    lanes stopped by first-winner cancellation are listed in the merged
    record's ``cancelled`` (a cancelled lane is by construction
    incomplete, so it can never outrank the winner that cancelled it).

    Counters from *every* lane — losers and cancelled lanes included —
    are merged into the winning record's ``counters``: the race paid for
    all of that solver work, so the merged record accounts for it (each
    lane's own share stays visible in its ``race`` entry).
    """
    def rank(
        indexed: tuple[int, PortfolioRecord]
    ) -> tuple[int, int, int, int, float, int]:
        index, lane = indexed
        return (
            1 if lane.outcome == "error" else 0,
            0 if lane.complete else 1,
            0 if lane.outcome == "solution" else 1,
            0 if (lane.outcome == "solution" or lane.partial is not None) else 1,
            lane.runtime,
            index,
        )

    winner_index, winner = min(enumerate(lanes), key=rank)
    merged_counters: dict[str, float] = {}
    for lane in lanes:
        merge_counters(merged_counters, lane.counters)
    merged = PortfolioRecord(
        task=task,
        outcome=winner.outcome,
        steps=winner.steps,
        moves=winner.moves,
        pebbles_used=winner.pebbles_used,
        weight_used=winner.weight_used,
        runtime=winner.runtime,
        sat_calls=winner.sat_calls,
        configurations=winner.configurations,
        error=winner.error,
        complete=winner.complete,
        traceback=winner.traceback,
        partial=winner.partial,
        retries=winner.retries,
        # The lane's own record names the actual producer; fall back to
        # the lane spec for error lanes that never built a solver.
        backend=winner.backend or backends[winner_index],
        race={
            spec: _lane_summary(lane) for spec, lane in zip(backends, lanes)
        },
        cancelled=[
            spec
            for spec, lane in zip(backends, lanes)
            if lane.outcome == "cancelled"
            or (lane.partial or {}).get("cancelled")
        ],
        counters=merged_counters or None,
        attempt_stats=winner.attempt_stats,
    )
    return merged


def _run_race(
    tasks: Sequence[PortfolioTask],
    backends: Sequence[str],
    *,
    jobs: int,
    force_pool: bool,
    retry: "RetryPolicy | None" = None,
    health: "PortfolioHealth | None" = None,
) -> list[PortfolioRecord]:
    """Race every task across ``backends`` (see :func:`run_portfolio`).

    No ``store_path``: the store's backend-invariant addresses would turn
    every lane after the first into a cache lookup of the first lane's
    answer, crowning a "winner" that never solved anything.

    Each task group shares one first-winner cancellation token: the moment
    any lane returns a *complete* record, the group's token is raised and
    sibling lanes — queued or mid-search — stop at their next poll instead
    of running their full time budget (previously up to
    ``(width - 1) / width`` of the pool was spent finishing known losers).
    """
    if not backends:
        raise PebblingError("race_backends needs at least one backend spec")
    width = len(backends)
    lanes_per_task = [
        [replace(task, backend=spec) for spec in backends] for task in tasks
    ]
    flat = [lane for lanes in lanes_per_task for lane in lanes]
    with tempfile.TemporaryDirectory(prefix="repro-race-") as scratch:
        tokens = [
            CancellationToken(os.path.join(scratch, f"winner-{position}.cancel"))
            for position in range(len(tasks))
        ]
        cancel_paths = [tokens[index // width].path for index in range(len(flat))]

        def crown(flat_index: int, record: PortfolioRecord) -> None:
            if record.complete:
                token = tokens[flat_index // width]
                if not token.cancelled():
                    obs_trace.event(
                        "race.win",
                        task=record.name,
                        backend=record.backend or backends[flat_index % width],
                    )
                token.cancel()

        flat_records = run_portfolio(
            flat,
            jobs=jobs,
            force_pool=force_pool,
            retry=retry,
            health=health,
            cancel_paths=cancel_paths,
            on_record=crown,
        )
    merged: list[PortfolioRecord] = []
    for position, task in enumerate(tasks):
        lanes = flat_records[position * width:(position + 1) * width]
        merged.append(_merge_race(task, backends, lanes))
    return merged


def tasks_from_suite(
    suite: str | Sequence[BatchEntry],
    *,
    time_limit: float | None = 60.0,
    schedule: str = "linear",
    cardinality: str = "sequential",
    step_increment: int = 1,
    incremental: bool = True,
    backend: str = "cdcl",
    cubes: int = 0,
) -> list[PortfolioTask]:
    """Turn a named batch suite (or explicit entries) into portfolio tasks."""
    entries = suite_entries(suite) if isinstance(suite, str) else list(suite)
    return [
        PortfolioTask(
            workload=entry.workload,
            pebbles=entry.pebbles,
            scale=entry.scale,
            single_move=entry.single_move,
            time_limit=time_limit,
            schedule=schedule,
            cardinality=cardinality,
            step_increment=step_increment,
            incremental=incremental,
            backend=backend,
            cubes=cubes,
        )
        for entry in entries
    ]


def budget_sweep_tasks(
    workload: str,
    budgets: Iterable[int],
    *,
    scale: float = 1.0,
    time_limit: float | None = 120.0,
    schedule: str = "linear",
    **task_kwargs,
) -> list[PortfolioTask]:
    """Tasks for a Table-I style budget sweep over one workload."""
    return [
        PortfolioTask(
            workload=workload,
            pebbles=budget,
            scale=scale,
            time_limit=time_limit,
            schedule=schedule,
            **task_kwargs,
        )
        for budget in budgets
    ]


@dataclass
class SweepResult:
    """Outcome of a parallel Table-I budget sweep."""

    workload: str
    best: PortfolioRecord | None
    records: list[PortfolioRecord] = field(default_factory=list)

    @property
    def minimum_pebbles(self) -> int | None:
        return self.best.task.pebbles if self.best is not None else None


def minimize_pebbles_portfolio(
    workload: str,
    *,
    scale: float = 1.0,
    jobs: int = 1,
    timeout_per_budget: float | None = 120.0,
    lower_bound: int | None = None,
    upper_bound: int | None = None,
    schedule: str = "linear",
    store_path: str | None = None,
    **task_kwargs,
) -> SweepResult:
    """Parallel version of the Table-I outer loop.

    Instead of scanning budgets one at a time (stopping after the first
    failure), every budget of ``[lower_bound, upper_bound]`` (inclusive —
    the eager-Bennett upper bound is the guaranteed-feasible anchor) becomes
    an independent task with its own per-budget timeout, the tasks run
    ``jobs``-wide, and the smallest budget with a solution wins.  The
    sequential scan's early-exit saves *work*; the portfolio saves
    *wall-clock* — the right trade once cores are available.
    """
    dag = load_workload_or_path(workload, scale=scale)
    probe = ReversiblePebblingSolver(dag)
    if lower_bound is None:
        lower_bound = probe.minimum_pebbles_lower_bound()
    if upper_bound is None:
        from repro.pebbling.bennett import eager_bennett_strategy

        upper_bound = eager_bennett_strategy(dag).max_pebbles
    if upper_bound < lower_bound:
        upper_bound = lower_bound
    tasks = budget_sweep_tasks(
        workload,
        range(lower_bound, upper_bound + 1),
        scale=scale,
        time_limit=timeout_per_budget,
        schedule=schedule,
        **task_kwargs,
    )
    records = run_portfolio(tasks, jobs=jobs, store_path=store_path)
    best = None
    for record in records:  # ascending budgets: first solution is minimal
        if record.found:
            best = record
            break
    return SweepResult(workload=workload, best=best, records=records)
