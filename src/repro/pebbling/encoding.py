"""SAT encoding of the bounded-step reversible pebbling game (Problem 2).

Given a DAG ``G = (V, E)``, a pebble budget ``P`` and a number of steps
``K``, the encoding introduces one Boolean variable ``p[v, i]`` per node
``v`` and time point ``0 <= i <= K`` (``K + 1`` configurations, ``K``
transitions) and the three clause groups of Section III-B of the paper:

* **initial and final clauses** — at time 0 nothing is pebbled; at time K
  exactly the outputs are pebbled;
* **move clauses** — if ``v`` changes between ``i`` and ``i+1``, then every
  dependency ``w`` of ``v`` is pebbled at both ``i`` and ``i+1``:
  ``(p[v,i] xor p[v,i+1]) -> (p[w,i] and p[w,i+1])``;
* **cardinality clauses** — at every time point at most ``P`` pebbles are in
  use (compiled with a selectable cardinality encoding, see
  :class:`~repro.sat.cards.CardinalityEncoding`).

Optional extras beyond the paper's plain encoding (all off by default or
clearly flagged):

* ``max_moves_per_step`` limits how many nodes may change per transition
  (1 reproduces the single-move grids of Fig. 4);
* ``forbid_idle_steps`` forces at least one change per transition, which
  makes the reported K tight when a solution with fewer steps exists;
* ``weighted`` switches to the paper's *weighted* pebbling game: the
  per-step budget bounds the total **weight** of pebbled nodes
  (``sum of DagNode.weight over pebbled v``) instead of their count, so a
  node whose value occupies several qubits costs several units of budget.
  Weights must be positive integers; with all weights 1 the weighted
  encoding emits exactly the unweighted CNF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PebblingError
from repro.dag.graph import Dag, NodeId
from repro.sat.cards import CardinalityEncoding, at_most_k, at_most_k_weighted
from repro.sat.cnf import Cnf


@dataclass(frozen=True)
class EncodingOptions:
    """Tuning knobs of the pebbling encoding.

    ``backend`` is a default incremental-SAT backend spec for searches run
    with these options (see :mod:`repro.sat.backend`); it never changes
    the emitted CNF or the game semantics, so the result store's content
    addresses deliberately ignore it.  An explicit ``backend=`` on the
    solver wins over it; ``None`` means the native engine.
    """

    cardinality: CardinalityEncoding = CardinalityEncoding.SEQUENTIAL
    max_moves_per_step: int | None = None
    forbid_idle_steps: bool = False
    weighted: bool = False
    backend: str | None = None

    def __post_init__(self) -> None:
        if self.max_moves_per_step is not None and self.max_moves_per_step < 1:
            raise PebblingError("max_moves_per_step must be >= 1 (or None)")
        if self.backend is not None and not isinstance(self.backend, str):
            raise PebblingError(
                "EncodingOptions.backend must be a registry backend spec "
                f"string or None, got {self.backend!r}"
            )


def validated_node_weights(dag: Dag) -> dict[NodeId, int]:
    """Node weights of ``dag`` as positive integers, for the weighted game.

    :class:`~repro.dag.graph.DagNode` stores weights as floats (they are
    also used for soft statistics); the weighted pebbling encoding needs
    integral qubit counts, so fractional or non-positive weights are
    rejected here with a clear error instead of failing deep inside the
    cardinality encoder.
    """
    weights: dict[NodeId, int] = {}
    for node in dag.nodes():
        weight = dag.node(node).weight
        value = int(weight)
        if value != weight or value < 1:
            raise PebblingError(
                f"node {node!r} has weight {weight!r}; the weighted pebbling "
                "game needs integral node weights >= 1"
            )
        weights[node] = value
    return weights


@dataclass
class PebblingEncoding:
    """The result of encoding one (DAG, pebbles, steps) instance."""

    dag: Dag
    num_steps: int
    max_pebbles: int
    cnf: Cnf
    pebble_variables: dict[tuple[NodeId, int], int] = field(default_factory=dict)

    def variable(self, node: NodeId, step: int) -> int:
        """Return the CNF variable of ``p[node, step]``."""
        try:
            return self.pebble_variables[(node, step)]
        except KeyError as exc:
            raise PebblingError(f"no pebble variable for ({node!r}, {step})") from exc

    def configurations_from_model(self, model: dict[int, bool]) -> list[set[NodeId]]:
        """Decode a SAT model into the sequence of pebbling configurations."""
        configurations: list[set[NodeId]] = []
        for step in range(self.num_steps + 1):
            configurations.append(
                {
                    node
                    for node in self.dag.nodes()
                    if model.get(self.pebble_variables[(node, step)], False)
                }
            )
        return configurations


class PebblingEncoder:
    """Stateful frame-based encoder of the bounded pebbling game.

    An encoder constructed with a pebble budget is a *frame engine*: it owns
    one growing :class:`~repro.sat.cnf.Cnf` and emits clauses in per-step
    frames.  Frame ``i`` consists of the configuration variables
    ``p[v, i]``, the transition (move) clauses between ``i - 1`` and ``i``,
    the optional move variables ``m[v, i-1]`` with their constraints, and
    the cardinality block of configuration ``i``.  The public surface:

    * :meth:`extend_to` — emit only the frames between the current frontier
      and a new step bound (monotonic, idempotent);
    * :meth:`final_guard` — an activation literal implying the
      final-configuration clauses of a step, for assumption-based
      incremental solving;
    * :meth:`assert_final` — the same constraint as unconditional units,
      for one-shot (monolithic) instances;
    * :meth:`drain_new_clauses` — the clauses emitted since the last drain,
      which incremental callers push into a live SAT solver.

    Constructed *without* a budget the encoder is a reusable factory whose
    only operation is the one-shot :meth:`encode`, which runs
    ``extend_to(K)`` + ``assert_final(K)`` on a fresh frame engine — the
    monolithic and incremental paths therefore share every clause-emission
    rule by construction.

    Every variable is named (``p[v,i]``, ``m[v,i]``, ``final[i]`` and the
    ``card[...]``-prefixed cardinality auxiliaries), so two encodings of the
    same instance can be compared structurally up to variable renaming.
    """

    def __init__(
        self,
        dag: Dag,
        *,
        max_pebbles: int | None = None,
        options: EncodingOptions | None = None,
    ):
        dag.validate()
        self.dag = dag
        self.options = options or EncodingOptions()
        self._nodes = dag.topological_order()
        self._outputs = set(dag.outputs())
        self._weights: dict[NodeId, int] = {}
        if self.options.weighted:
            self._weights = validated_node_weights(dag)
        self.max_pebbles: int | None = None
        self._cnf: Cnf | None = None
        self._variables: dict[tuple[NodeId, int], int] = {}
        self._guards: dict[int, int] = {}
        self._num_steps = 0
        self._drained = 0
        self._new_named: list[int] = []
        if max_pebbles is not None:
            self._start(max_pebbles)

    # -- frame engine ------------------------------------------------------
    def _start(self, max_pebbles: int) -> None:
        if max_pebbles < 1:
            raise PebblingError("max_pebbles must be >= 1")
        self.max_pebbles = max_pebbles
        cnf = self._cnf = Cnf()
        budget_kind = "weight" if self.options.weighted else "pebbles"
        cnf.add_comment(
            f"reversible pebbling: dag={self.dag.name} nodes={len(self._nodes)} "
            f"{budget_kind}={max_pebbles}"
        )
        self._add_configuration(0)
        # Initial clauses: at time 0 nothing is pebbled.
        for node in self._nodes:
            cnf.add_unit(-self._variables[(node, 0)])

    def _require_frames(self) -> Cnf:
        if self._cnf is None:
            raise PebblingError(
                "this encoder was built without a pebble budget; "
                "pass max_pebbles= to the constructor for frame-based use "
                "or call encode() for a one-shot instance"
            )
        return self._cnf

    @property
    def num_steps(self) -> int:
        """Number of transition frames emitted so far."""
        return self._num_steps

    @property
    def cnf(self) -> Cnf:
        """The growing CNF of the frame engine."""
        return self._require_frames()

    def _add_configuration(self, step: int) -> None:
        cnf = self._cnf
        assert cnf is not None and self.max_pebbles is not None
        for node in self._nodes:
            variable = cnf.new_variable(f"p[{node},{step}]")
            self._variables[(node, step)] = variable
            self._new_named.append(variable)
        variables = [self._variables[(node, step)] for node in self._nodes]
        if self.options.weighted:
            weights = [self._weights[node] for node in self._nodes]
            if self.max_pebbles < sum(weights):
                at_most_k_weighted(
                    cnf,
                    variables,
                    weights,
                    self.max_pebbles,
                    encoding=self.options.cardinality,
                    name_prefix=f"card[p,{step}]",
                )
        elif self.max_pebbles < len(self._nodes):
            at_most_k(
                cnf,
                variables,
                self.max_pebbles,
                encoding=self.options.cardinality,
                name_prefix=f"card[p,{step}]",
            )

    def _add_transition(self, step: int) -> None:
        """Emit the move clauses of the transition ``step -> step + 1``."""
        cnf = self._cnf
        assert cnf is not None
        variables = self._variables
        dag = self.dag
        options = self.options
        move_literals: list[int] = []
        for node in self._nodes:
            now = variables[(node, step)]
            then = variables[(node, step + 1)]
            for dependency in dag.dependencies(node):
                dep_now = variables[(dependency, step)]
                dep_then = variables[(dependency, step + 1)]
                # (now xor then) -> dep_now  and  (now xor then) -> dep_then
                cnf.add_clause([-now, then, dep_now])
                cnf.add_clause([now, -then, dep_now])
                cnf.add_clause([-now, then, dep_then])
                cnf.add_clause([now, -then, dep_then])
            if options.max_moves_per_step is not None or options.forbid_idle_steps:
                move = cnf.new_variable(f"m[{node},{step}]")
                # move <-> (now xor then)
                cnf.add_clause([-move, now, then])
                cnf.add_clause([-move, -now, -then])
                cnf.add_clause([move, -now, then])
                cnf.add_clause([move, now, -then])
                move_literals.append(move)
        if options.max_moves_per_step is not None:
            at_most_k(
                cnf,
                move_literals,
                options.max_moves_per_step,
                encoding=options.cardinality,
                name_prefix=f"card[m,{step}]",
            )
        if options.forbid_idle_steps:
            cnf.add_clause(move_literals)

    def extend_to(self, num_steps: int) -> None:
        """Grow the encoding to ``num_steps`` transitions.

        Emits only the configuration, transition and cardinality frames
        between the current frontier and ``num_steps``; a bound at or below
        the frontier is a no-op.
        """
        self._require_frames()
        if num_steps < 0:
            raise PebblingError("num_steps must be >= 0")
        while self._num_steps < num_steps:
            self._add_configuration(self._num_steps + 1)
            self._add_transition(self._num_steps)
            self._num_steps += 1

    def final_guard(self, step: int) -> int:
        """Return an activation literal for the final clauses of ``step``.

        The guard variable ``final[step]`` implies that at time ``step``
        exactly the outputs are pebbled; assuming it selects that bound in
        an incremental solver without committing to it.  Guards are cached
        per step.
        """
        cnf = self._require_frames()
        if step > self._num_steps:
            raise PebblingError(
                f"cannot guard step {step}: only {self._num_steps} frames encoded"
            )
        guard = self._guards.get(step)
        if guard is None:
            guard = cnf.new_variable(f"final[{step}]")
            self._new_named.append(guard)
            for node in self._nodes:
                literal = self._variables[(node, step)]
                cnf.add_clause(
                    [-guard, literal if node in self._outputs else -literal]
                )
            self._guards[step] = guard
        return guard

    def assert_final(self, step: int) -> None:
        """Permanently constrain time ``step`` to the final configuration."""
        cnf = self._require_frames()
        if step > self._num_steps:
            raise PebblingError(
                f"cannot finalise step {step}: only {self._num_steps} frames encoded"
            )
        for node in self._nodes:
            literal = self._variables[(node, step)]
            cnf.add_unit(literal if node in self._outputs else -literal)

    def drain_new_named_variables(self) -> list[int]:
        """Return the pebble/guard variables created since the last drain.

        These are exactly the variables that future frames and assumption
        ladders will mention again; incremental backends with root-level
        variable elimination freeze them so simplification never touches a
        variable the next bound still needs.  Auxiliary variables (move
        flags, cardinality ladders) are deliberately *not* reported — they
        are internal to their frame and safe to eliminate.
        """
        fresh = self._new_named
        self._new_named = []
        return fresh

    def drain_new_clauses(self) -> list:
        """Return the clauses emitted since the last drain (for flushing)."""
        cnf = self._require_frames()
        fresh = cnf.clauses[self._drained:]
        self._drained = len(cnf.clauses)
        return fresh

    def variable(self, node: NodeId, step: int) -> int:
        """Return the CNF variable of ``p[node, step]``."""
        try:
            return self._variables[(node, step)]
        except KeyError as exc:
            raise PebblingError(f"no pebble variable for ({node!r}, {step})") from exc

    def configurations_from_model(
        self, model: dict[int, bool], *, num_steps: int | None = None
    ) -> list[set[NodeId]]:
        """Decode a model into configurations ``0 .. num_steps``."""
        bound = self._num_steps if num_steps is None else num_steps
        return [
            {
                node
                for node in self._nodes
                if model.get(self._variables[(node, step)], False)
            }
            for step in range(bound + 1)
        ]

    def to_encoding(self, *, num_steps: int | None = None) -> PebblingEncoding:
        """Package the current frames as a :class:`PebblingEncoding`."""
        self._require_frames()
        assert self.max_pebbles is not None
        return PebblingEncoding(
            dag=self.dag,
            num_steps=self._num_steps if num_steps is None else num_steps,
            max_pebbles=self.max_pebbles,
            cnf=self._cnf,
            pebble_variables=dict(self._variables),
        )

    # -- one-shot (monolithic) path ---------------------------------------
    def encode(
        self, *, num_steps: int, max_pebbles: int | None = None
    ) -> PebblingEncoding:
        """Encode Problem 2 for ``max_pebbles`` pebbles and ``num_steps`` steps.

        Runs ``extend_to(num_steps)`` + ``assert_final(num_steps)`` on a
        fresh frame engine, so the one-shot CNF is frame-for-frame the
        incremental CNF with the guarded final constraint replaced by
        units.
        """
        budget = max_pebbles if max_pebbles is not None else self.max_pebbles
        if budget is None:
            raise PebblingError("encode() needs max_pebbles")
        if num_steps < 1:
            raise PebblingError("num_steps must be >= 1")
        worker = PebblingEncoder(self.dag, max_pebbles=budget, options=self.options)
        worker.extend_to(num_steps)
        worker.assert_final(num_steps)
        worker.cnf.comments[0] += f" steps={num_steps}"
        return worker.to_encoding()
