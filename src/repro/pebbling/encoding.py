"""SAT encoding of the bounded-step reversible pebbling game (Problem 2).

Given a DAG ``G = (V, E)``, a pebble budget ``P`` and a number of steps
``K``, the encoding introduces one Boolean variable ``p[v, i]`` per node
``v`` and time point ``0 <= i <= K`` (``K + 1`` configurations, ``K``
transitions) and the three clause groups of Section III-B of the paper:

* **initial and final clauses** — at time 0 nothing is pebbled; at time K
  exactly the outputs are pebbled;
* **move clauses** — if ``v`` changes between ``i`` and ``i+1``, then every
  dependency ``w`` of ``v`` is pebbled at both ``i`` and ``i+1``:
  ``(p[v,i] xor p[v,i+1]) -> (p[w,i] and p[w,i+1])``;
* **cardinality clauses** — at every time point at most ``P`` pebbles are in
  use (compiled with a selectable cardinality encoding, see
  :class:`~repro.sat.cards.CardinalityEncoding`).

Optional extras beyond the paper's plain encoding (all off by default or
clearly flagged):

* ``max_moves_per_step`` limits how many nodes may change per transition
  (1 reproduces the single-move grids of Fig. 4);
* ``forbid_idle_steps`` forces at least one change per transition, which
  makes the reported K tight when a solution with fewer steps exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PebblingError
from repro.dag.graph import Dag, NodeId
from repro.sat.cards import CardinalityEncoding, at_most_k
from repro.sat.cnf import Cnf


@dataclass(frozen=True)
class EncodingOptions:
    """Tuning knobs of the pebbling encoding."""

    cardinality: CardinalityEncoding = CardinalityEncoding.SEQUENTIAL
    max_moves_per_step: int | None = None
    forbid_idle_steps: bool = False

    def __post_init__(self) -> None:
        if self.max_moves_per_step is not None and self.max_moves_per_step < 1:
            raise PebblingError("max_moves_per_step must be >= 1 (or None)")


@dataclass
class PebblingEncoding:
    """The result of encoding one (DAG, pebbles, steps) instance."""

    dag: Dag
    num_steps: int
    max_pebbles: int
    cnf: Cnf
    pebble_variables: dict[tuple[NodeId, int], int] = field(default_factory=dict)

    def variable(self, node: NodeId, step: int) -> int:
        """Return the CNF variable of ``p[node, step]``."""
        try:
            return self.pebble_variables[(node, step)]
        except KeyError as exc:
            raise PebblingError(f"no pebble variable for ({node!r}, {step})") from exc

    def configurations_from_model(self, model: dict[int, bool]) -> list[set[NodeId]]:
        """Decode a SAT model into the sequence of pebbling configurations."""
        configurations: list[set[NodeId]] = []
        for step in range(self.num_steps + 1):
            configurations.append(
                {
                    node
                    for node in self.dag.nodes()
                    if model.get(self.pebble_variables[(node, step)], False)
                }
            )
        return configurations


class PebblingEncoder:
    """Builds :class:`PebblingEncoding` instances for a fixed DAG."""

    def __init__(self, dag: Dag, *, options: EncodingOptions | None = None):
        dag.validate()
        self.dag = dag
        self.options = options or EncodingOptions()

    def encode(self, *, max_pebbles: int, num_steps: int) -> PebblingEncoding:
        """Encode Problem 2 for ``max_pebbles`` pebbles and ``num_steps`` steps."""
        if max_pebbles < 1:
            raise PebblingError("max_pebbles must be >= 1")
        if num_steps < 1:
            raise PebblingError("num_steps must be >= 1")
        dag = self.dag
        nodes = dag.topological_order()
        outputs = set(dag.outputs())
        cnf = Cnf()
        cnf.add_comment(
            f"reversible pebbling: dag={dag.name} nodes={len(nodes)} "
            f"pebbles={max_pebbles} steps={num_steps}"
        )
        variables: dict[tuple[NodeId, int], int] = {}
        for step in range(num_steps + 1):
            for node in nodes:
                variables[(node, step)] = cnf.new_variable(f"p[{node},{step}]")

        # Initial and final clauses.
        for node in nodes:
            cnf.add_unit(-variables[(node, 0)])
        for node in nodes:
            literal = variables[(node, num_steps)]
            cnf.add_unit(literal if node in outputs else -literal)

        # Move clauses.
        for step in range(num_steps):
            for node in nodes:
                now = variables[(node, step)]
                then = variables[(node, step + 1)]
                for dependency in dag.dependencies(node):
                    dep_now = variables[(dependency, step)]
                    dep_then = variables[(dependency, step + 1)]
                    # (now xor then) -> dep_now  and  (now xor then) -> dep_then
                    cnf.add_clause([-now, then, dep_now])
                    cnf.add_clause([now, -then, dep_now])
                    cnf.add_clause([-now, then, dep_then])
                    cnf.add_clause([now, -then, dep_then])

        # Cardinality clauses: at most ``max_pebbles`` pebbles per time point.
        if max_pebbles < len(nodes):
            for step in range(num_steps + 1):
                step_literals = [variables[(node, step)] for node in nodes]
                at_most_k(cnf, step_literals, max_pebbles, encoding=self.options.cardinality)

        # Optional per-transition move variables and their constraints.
        if self.options.max_moves_per_step is not None or self.options.forbid_idle_steps:
            for step in range(num_steps):
                move_literals = []
                for node in nodes:
                    move = cnf.new_variable(f"m[{node},{step}]")
                    now = variables[(node, step)]
                    then = variables[(node, step + 1)]
                    # move <-> (now xor then)
                    cnf.add_clause([-move, now, then])
                    cnf.add_clause([-move, -now, -then])
                    cnf.add_clause([move, -now, then])
                    cnf.add_clause([move, now, -then])
                    move_literals.append(move)
                if self.options.max_moves_per_step is not None:
                    at_most_k(
                        cnf,
                        move_literals,
                        self.options.max_moves_per_step,
                        encoding=self.options.cardinality,
                    )
                if self.options.forbid_idle_steps:
                    cnf.add_clause(move_literals)

        return PebblingEncoding(
            dag=dag,
            num_steps=num_steps,
            max_pebbles=max_pebbles,
            cnf=cnf,
            pebble_variables=variables,
        )
