"""Greedy heuristic pebblers for DAGs beyond the reach of the SAT engine.

The SAT-based solver gives the best space/time trade-offs but its encoding
grows with ``|V| * K``; for very large DAGs (thousands of nodes) a designer
still needs *some* valid clean-up strategy.  Two heuristics are provided,
selected with ``mode``:

``"cone"``
    Compute each output's cone in topological order and uncompute the
    helper nodes right after the output is finished.  Every node is
    computed at most a couple of times, so the move count stays close to
    Bennett's, but the peak pebble count is only reduced when the DAG has
    several outputs with small overlapping cones.

``"recursive"``
    The classic recursive compute/uncompute strategy (compute the
    dependencies, pebble the node, immediately uncompute the helper
    dependencies — and recursively recompute whatever an uncomputation
    needs).  On balanced, tree-like DAGs the peak pebble count drops to
    roughly twice the depth; on narrow chains it degenerates to Bennett's
    pebble count while paying heavy recomputation (placing checkpoints
    optimally is exactly the job of the SAT engine), so a ``max_moves``
    guard protects against pathological blow-ups.

Nodes whose fan-out reaches ``keep_fanout_threshold`` are kept pebbled
until a final clean-up phase in both modes, which avoids recomputing
heavily shared values.

The resulting strategies are always legal (they are returned as
:class:`~repro.pebbling.strategy.PebblingStrategy`, which validates), and
they trade pebbles for recomputation, mirroring the qualitative behaviour
of the SAT solutions.
"""

from __future__ import annotations

from repro.errors import PebblingError
from repro.dag.graph import Dag, NodeId
from repro.pebbling.strategy import PebbleMove, PebblingStrategy


def greedy_pebbling_strategy(
    dag: Dag,
    *,
    mode: str = "recursive",
    keep_fanout_threshold: int = 2,
    max_pebbles: int | None = None,
    max_moves: int = 1_000_000,
) -> PebblingStrategy:
    """Pebble ``dag`` with a greedy strategy (no SAT solver involved).

    Parameters
    ----------
    dag:
        The dependency DAG to pebble.
    mode:
        ``"recursive"`` (default, saves pebbles) or ``"cone"`` (saves moves);
        see the module docstring.
    keep_fanout_threshold:
        Nodes with at least this many dependents are kept pebbled until the
        final clean-up phase instead of being uncomputed eagerly.
    max_pebbles:
        Optional hard limit; a :class:`~repro.errors.PebblingError` is raised
        if the heuristic would exceed it (the heuristic does not backtrack).
    max_moves:
        Guard against recomputation blow-ups of the recursive mode.
    """
    dag.validate()
    if mode not in ("recursive", "cone"):
        raise PebblingError(f"unknown heuristic mode {mode!r} (use 'recursive' or 'cone')")
    if keep_fanout_threshold < 1:
        raise PebblingError("keep_fanout_threshold must be >= 1")

    outputs = set(dag.outputs())
    keep: set[NodeId] = {
        node for node in dag.nodes() if len(dag.dependents(node)) >= keep_fanout_threshold
    }

    moves: list[PebbleMove] = []
    pebbled: set[NodeId] = set()
    peak = 0

    def place(node: NodeId) -> None:
        nonlocal peak
        moves.append(PebbleMove(node, pebble=True))
        pebbled.add(node)
        peak = max(peak, len(pebbled))
        if max_pebbles is not None and peak > max_pebbles:
            raise PebblingError(f"greedy heuristic exceeded the pebble budget of {max_pebbles}")
        if len(moves) > max_moves:
            raise PebblingError(f"greedy heuristic exceeded the move budget of {max_moves}")

    def remove(node: NodeId) -> None:
        moves.append(PebbleMove(node, pebble=False))
        pebbled.discard(node)
        if len(moves) > max_moves:
            raise PebblingError(f"greedy heuristic exceeded the move budget of {max_moves}")

    def releasable(node: NodeId) -> bool:
        return node not in outputs and node not in keep

    # -- recursive mode helpers -----------------------------------------
    def compute_clean(node: NodeId) -> None:
        """Pebble ``node``, leaving no extra helper pebbles behind."""
        helpers = _ensure_dependencies(node)
        place(node)
        for helper in reversed(helpers):
            if releasable(helper):
                uncompute_clean(helper)

    def uncompute_clean(node: NodeId) -> None:
        """Remove the pebble from ``node``, restoring dependencies as needed."""
        helpers = _ensure_dependencies(node)
        remove(node)
        for helper in reversed(helpers):
            if releasable(helper):
                uncompute_clean(helper)

    def _ensure_dependencies(node: NodeId) -> list[NodeId]:
        helpers: list[NodeId] = []
        for dependency in dag.dependencies(node):
            if dependency not in pebbled:
                compute_clean(dependency)
                helpers.append(dependency)
        return helpers

    # -- cone mode helpers -----------------------------------------------
    def compute_cone(node: NodeId) -> list[NodeId]:
        """Pebble ``node`` and its missing fan-in; return the helpers used."""
        helpers: list[NodeId] = []
        for dependency in dag.dependencies(node):
            if dependency not in pebbled:
                helpers.extend(compute_cone(dependency))
                helpers.append(dependency)
        place(node)
        return helpers

    def uncompute_cone_helpers(helpers: list[NodeId]) -> None:
        for helper in reversed(helpers):
            if helper not in pebbled or not releasable(helper):
                continue
            extra: list[NodeId] = []
            for dependency in dag.dependencies(helper):
                if dependency not in pebbled:
                    extra.extend(compute_cone(dependency))
                    extra.append(dependency)
            remove(helper)
            uncompute_cone_helpers(extra)

    # -- main phase -------------------------------------------------------
    if mode == "recursive":
        for output in dag.outputs():
            if output not in pebbled:
                compute_clean(output)
    else:
        for output in dag.outputs():
            if output not in pebbled:
                helpers = compute_cone(output)
                uncompute_cone_helpers(helpers)

    # -- final clean-up of kept (high fan-out) nodes ----------------------
    for node in dag.reverse_topological_order():
        if node in outputs or node not in pebbled:
            continue
        if mode == "recursive":
            # Temporarily treat the node as releasable so uncompute_clean
            # actually removes it.
            keep.discard(node)
            uncompute_clean(node)
        else:
            extra: list[NodeId] = []
            for dependency in dag.dependencies(node):
                if dependency not in pebbled:
                    extra.extend(compute_cone(dependency))
                    extra.append(dependency)
            remove(node)
            uncompute_cone_helpers(extra)

    return PebblingStrategy.from_moves(dag, moves)
