"""Cube-and-conquer parallelism for a *single* pebbling instance.

The portfolio parallelises across tasks, budgets and backends, but one
hard instance still burns exactly one core.  This module splits a single
Problem-1 search (minimum steps within a pebble budget) into independent
*cube* lanes that race across a process pool while sharing what they
learn:

* :func:`generate_cubes` builds a picklable :class:`CubeSet` — either
  **assumption prefixes** over early-frame pebble variables of
  high-fanout / critical-path nodes (all sign combinations over the
  chosen variables, so the union of cubes is a tautology and the cover
  is exhaustive by construction), or **step sub-brackets** that
  partition the bound range;
* :class:`BoundBoard` is a tiny cross-process SQLite table (same WAL
  discipline as the result store, keyed by the store's backend-invariant
  fingerprints) where lanes publish refuted bounds from UNSAT cores and
  certified SAT bounds mid-flight; search cursors poll it between SAT
  calls via :meth:`~repro.pebbling.search.SearchCursor.observe` and skip
  work another lane already killed;
* :func:`run_cube_search` orchestrates the lanes, watches the board, and
  raises the shared :class:`~repro.pebbling.cancel.CancellationToken`
  the moment some lane's witness plus the pooled refutations *certify*
  the global minimum — losing lanes stop at their next poll instead of
  running to completion.

Soundness rests on two facts.  First, the cube cover is exhaustive: for
any step bound ``K`` the instance is satisfiable iff some cube lane is,
so the minimum over lane minima is the true minimum.  Second, with idle
steps allowed, step-satisfiability is monotone in ``K`` and cube
assumptions constrain only early frames (padding a strategy with idle
steps at the end never touches them), so a witness at ``K`` published by
*any* lane upper-bounds every lane, while a bound refuted by **all**
cubes (or refuted without cube assumptions at all) is refuted for the
instance.  The board distinguishes the two: per-cube rows aggregate by
``min`` across the full cube set, assumption-free rows are globally
valid on their own.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import shutil
import sqlite3
import tempfile
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.dag.graph import Dag
from repro.errors import PebblingError
from repro.obs import metrics as _metrics
from repro.obs import trace as obs_trace
from repro.pebbling.cancel import CancellationToken, resolve_token
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import (
    LinearSearch,
    SearchStrategy,
    StripedClimb,
    resolve_search_strategy,
)

#: Bump when the board's schema or aggregation semantics change; a board
#: file created by another version wipes itself instead of mixing rows.
BOARD_SCHEMA = 1

#: Enumerating every assignment of the split variables is exponential;
#: the exhaustiveness checker refuses beyond this many split points.
_MAX_COVER_CHECK_POINTS = 16


# ---------------------------------------------------------------------------
# cube generation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Cube:
    """One sub-problem of a split search, as picklable plain data.

    ``assignments`` fixes early-frame pebble variables: each entry
    ``(node, step, value)`` is assumed as the literal of ``p[node, step]``
    with the given sign in every SAT call of the lane.  ``step_lo`` /
    ``step_hi`` restrict the lane's bound range instead (``None`` =
    unbounded); the two axes are not mixed within one cube set.
    """

    index: int
    assignments: tuple[tuple[object, int, bool], ...] = ()
    step_lo: int | None = None
    step_hi: int | None = None

    def describe(self) -> str:
        if self.assignments:
            parts = [
                f"{'' if value else '!'}p[{node},{step}]"
                for node, step, value in self.assignments
            ]
            return " & ".join(parts)
        if self.step_lo is not None or self.step_hi is not None:
            hi = "inf" if self.step_hi is None else str(self.step_hi)
            return f"steps in [{self.step_lo}, {hi}]"
        return "true"


@dataclass(frozen=True)
class CubeSet:
    """An exhaustive family of cubes for one (dag, options) instance."""

    mode: str
    cubes: tuple[Cube, ...]
    #: The ``(node, step)`` split points of a variable split (empty for
    #: bracket splits) — kept so the cover checker and the board key do
    #: not have to re-derive them from the cubes.
    split_points: tuple[tuple[object, int], ...] = ()
    #: Lowest bound the bracket split starts from (bracket mode only).
    floor: int | None = None

    def __len__(self) -> int:
        return len(self.cubes)

    @property
    def cube_set_id(self) -> str:
        """Digest identifying this split on the bound board.

        Two lanes share per-cube refuted rows only when they agree on the
        *entire* split — aggregating ``min`` across rows of different
        splits would fabricate refutations.
        """
        payload = {
            "schema": BOARD_SCHEMA,
            "mode": self.mode,
            "points": [[str(node), step] for node, step in self.split_points],
            "cubes": [
                {
                    "assignments": [
                        [str(node), step, value]
                        for node, step, value in cube.assignments
                    ],
                    "lo": cube.step_lo,
                    "hi": cube.step_hi,
                }
                for cube in self.cubes
            ],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _earliest_frames(dag: Dag, options: EncodingOptions) -> dict[object, int]:
    """Earliest step at which each node can possibly carry a pebble.

    With several moves per step a node can be pebbled once its whole
    level is reachable (``level(v)`` steps); with single-move transitions
    every node of its fan-in cone must be pebbled first, one per step
    (``|cone(v)| + 1``).  Splitting on ``p[v, earliest(v)]`` keeps both
    polarities live — an *unreachable* frame would make the positive cube
    vacuously UNSAT and waste its lane.
    """
    if options.max_moves_per_step == 1:
        return {
            node: len(dag.transitive_fanin(node)) + 1 for node in dag.nodes()
        }
    return dict(dag.levels())


def _split_points(
    dag: Dag, options: EncodingOptions, count: int
) -> list[tuple[object, int]]:
    """Choose up to ``count`` (node, earliest-frame) split points.

    High fan-out nodes first (their pebble state constrains the most
    descendants), critical-path depth as the tie-break (late nodes decide
    the schedule's tail), node name last for determinism.
    """
    frames = _earliest_frames(dag, options)
    levels = dag.levels()
    ranked = sorted(
        dag.nodes(),
        key=lambda node: (
            -len(dag.dependents(node)),
            -levels[node],
            str(node),
        ),
    )
    return [(node, frames[node]) for node in ranked[:count]]


def generate_cubes(
    dag: Dag,
    count: int,
    *,
    options: EncodingOptions | None = None,
    mode: str = "variables",
    floor: int | None = None,
    ceiling: int | None = None,
) -> CubeSet:
    """Split one instance into (up to) ``count`` cubes with exhaustive cover.

    ``mode="variables"`` picks ``floor(log2(count))`` split points via
    :func:`_split_points` and emits every sign combination — ``2^k``
    cubes whose union is a tautology, so the cover is exhaustive *by
    construction* (a non-power-of-two ``count`` rounds down).
    ``mode="brackets"`` partitions the step range ``[floor, ceiling]``
    into ``count`` contiguous sub-brackets (the last one open-ended), an
    exhaustive cover of the bound axis instead of the assignment space.
    """
    options = options or EncodingOptions()
    if count < 1:
        raise PebblingError("cube count must be >= 1")
    if mode not in ("variables", "brackets"):
        raise PebblingError("cube mode must be 'variables' or 'brackets'")
    if count == 1:
        return CubeSet(mode=mode, cubes=(Cube(index=0),))
    if mode == "brackets":
        if floor is None:
            raise PebblingError("bracket cubes need the search floor")
        span_top = ceiling if ceiling is not None else floor + 4 * count
        width = max(1, (span_top - floor + 1) // count)
        cubes = []
        for index in range(count):
            lo = floor + index * width
            hi = lo + width - 1 if index < count - 1 else None
            cubes.append(Cube(index=index, step_lo=lo, step_hi=hi))
        return CubeSet(mode="brackets", cubes=tuple(cubes), floor=floor)
    bits = max(1, count.bit_length() - 1)
    points = _split_points(dag, options, bits)
    if not points:
        return CubeSet(mode="variables", cubes=(Cube(index=0),))
    cubes = []
    for index, signs in enumerate(
        itertools.product((True, False), repeat=len(points))
    ):
        assignments = tuple(
            (node, step, value)
            for (node, step), value in zip(points, signs)
        )
        cubes.append(Cube(index=index, assignments=assignments))
    return CubeSet(
        mode="variables", cubes=tuple(cubes), split_points=tuple(points)
    )


def cubes_cover_exhaustively(cube_set: CubeSet) -> bool:
    """Check the cover guarantee by brute force (test/debug helper).

    For a variable split: every full assignment of the split variables
    must satisfy at least one cube.  For a bracket split: the brackets
    must tile ``[floor, inf)`` without gaps.  Exponential in the number
    of split points, hence the :data:`_MAX_COVER_CHECK_POINTS` guard.
    """
    if any(not cube.assignments and cube.step_lo is None and cube.step_hi is None
           for cube in cube_set.cubes):
        return True  # an unconstrained cube covers everything by itself
    if cube_set.mode == "brackets":
        brackets = sorted(
            (cube.step_lo, cube.step_hi) for cube in cube_set.cubes
        )
        if cube_set.floor is None or brackets[0][0] > cube_set.floor:
            return False
        for (_, hi), (next_lo, _) in zip(brackets, brackets[1:]):
            if hi is None or next_lo > hi + 1:
                return False
        return brackets[-1][1] is None
    points = sorted(
        {
            (node, step)
            for cube in cube_set.cubes
            for node, step, _ in cube.assignments
        },
        key=lambda point: (str(point[0]), point[1]),
    )
    if len(points) > _MAX_COVER_CHECK_POINTS:
        raise PebblingError(
            f"refusing to enumerate 2^{len(points)} assignments; "
            f"the cover check caps at {_MAX_COVER_CHECK_POINTS} split points"
        )
    for values in itertools.product((True, False), repeat=len(points)):
        assignment = dict(zip(points, values))
        if not any(
            all(
                assignment[(node, step)] == value
                for node, step, value in cube.assignments
            )
            for cube in cube_set.cubes
        ):
            return False
    return True


# ---------------------------------------------------------------------------
# the cross-process bound board
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BoardView:
    """What one poll of the board certifies for the *whole instance*.

    ``refuted`` — largest bound proven infeasible for the instance (the
    max of assumption-free refutations and the ``min`` across all cubes
    of a complete cube set); ``known_sat`` — smallest bound any lane
    witnessed satisfiable.  Either is ``None`` while nothing is known.
    """

    refuted: int | None = None
    known_sat: int | None = None

    @property
    def empty(self) -> bool:
        return self.refuted is None and self.known_sat is None


class BoundBoard:
    """Shared SQLite table of certified step bounds (WAL, fingerprint keys).

    Mirrors the result store's concurrency discipline: one connection per
    process, ``busy_timeout`` against writer collisions, WAL journaling
    for concurrent readers, and a meta table whose schema mismatch wipes
    the board (bounds are cheap to re-derive; mixing aggregation
    semantics across versions is not).

    Rows are keyed ``(instance, cube_set, cube)`` where ``instance``
    digests the backend-invariant fingerprints (canonical DAG, game
    options, budget), ``cube_set`` the exact split, and ``cube`` is the
    lane's cube index — or ``-1`` for the instance-global row holding
    assumption-free refutations and all SAT witnesses (a witness under a
    cube is a witness for the instance; a refutation under a cube is
    not, which is why per-cube refutations live in their own rows and
    only aggregate once every cube of the set has one).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._connection.execute("PRAGMA busy_timeout = 10000")
        if path != ":memory:":
            self._connection.execute("PRAGMA journal_mode = WAL")
        self._initialise()
        self.published = 0
        self.polled = 0

    def _initialise(self) -> None:
        with self._connection as connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is not None and row[0] != str(BOARD_SCHEMA):
                connection.execute("DROP TABLE IF EXISTS bounds")
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES "
                f"('schema', '{BOARD_SCHEMA}')"
            )
            connection.execute(
                """
                CREATE TABLE IF NOT EXISTS bounds (
                    instance TEXT NOT NULL,
                    cube_set TEXT NOT NULL,
                    cube INTEGER NOT NULL,
                    refuted INTEGER,
                    sat INTEGER,
                    PRIMARY KEY (instance, cube_set, cube)
                )
                """
            )

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "BoundBoard":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def publish_refuted(
        self, instance: str, cube_set: str, cube: int, bound: int
    ) -> None:
        """Record ``bound`` (and below) as refuted for ``cube``.

        ``cube = -1`` publishes an assumption-free refutation, valid for
        the instance on its own; per-cube rows keep their running ``max``
        and only speak for the instance through :meth:`poll`'s ``min``
        across the complete cube set.
        """
        with self._connection as connection:
            connection.execute(
                """
                INSERT INTO bounds (instance, cube_set, cube, refuted)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (instance, cube_set, cube) DO UPDATE SET
                    refuted = MAX(
                        COALESCE(bounds.refuted, excluded.refuted),
                        excluded.refuted
                    )
                """,
                (instance, cube_set, cube, bound),
            )
        self.published += 1

    def publish_sat(self, instance: str, cube_set: str, bound: int) -> None:
        """Record a witness at ``bound`` — always instance-global."""
        with self._connection as connection:
            connection.execute(
                """
                INSERT INTO bounds (instance, cube_set, cube, sat)
                VALUES (?, ?, -1, ?)
                ON CONFLICT (instance, cube_set, cube) DO UPDATE SET
                    sat = MIN(COALESCE(bounds.sat, excluded.sat), excluded.sat)
                """,
                (instance, cube_set, bound),
            )
        self.published += 1

    def poll(self, instance: str, cube_set: str, cube_count: int) -> BoardView:
        """The instance-level facts certified so far (see :class:`BoardView`)."""
        self.polled += 1
        row = self._connection.execute(
            "SELECT refuted, sat FROM bounds "
            "WHERE instance = ? AND cube_set = ? AND cube = -1",
            (instance, cube_set),
        ).fetchone()
        refuted, known_sat = (row if row is not None else (None, None))
        if cube_count > 0:
            count, weakest = self._connection.execute(
                "SELECT COUNT(*), MIN(refuted) FROM bounds "
                "WHERE instance = ? AND cube_set = ? AND cube >= 0 "
                "AND refuted IS NOT NULL",
                (instance, cube_set),
            ).fetchone()
            if count == cube_count and weakest is not None:
                refuted = weakest if refuted is None else max(refuted, weakest)
        return BoardView(refuted=refuted, known_sat=known_sat)


#: Per-process cache of open boards, PID-guarded like the portfolio's
#: worker stores: an SQLite connection must never cross ``fork``.
_CHANNEL_BOARDS: dict[str, BoundBoard] = {}
_CHANNEL_BOARDS_PID: int | None = None


def _open_board(path: str) -> BoundBoard:
    global _CHANNEL_BOARDS_PID
    pid = os.getpid()
    if pid != _CHANNEL_BOARDS_PID:
        _CHANNEL_BOARDS.clear()
        _CHANNEL_BOARDS_PID = pid
    board = _CHANNEL_BOARDS.get(path)
    if board is None:
        board = _CHANNEL_BOARDS[path] = BoundBoard(path)
    return board


def _discard_board(path: str) -> None:
    board = _CHANNEL_BOARDS.pop(path, None)
    if board is not None:
        board.close()


@dataclass
class BoardChannel:
    """A lane's picklable handle onto one board row family.

    Plain strings and ints cross the process boundary; the SQLite
    connection is opened lazily in whichever process ends up using the
    channel.  ``cube >= 0`` marks a lane whose queries carry cube
    assumptions (its refutations go to its per-cube row); ``cube = -1``
    marks an assumption-free lane (bracket splits), whose refutations
    are instance-global immediately.
    """

    path: str
    instance: str
    cube_set: str
    cube: int
    cube_count: int

    def poll(self) -> BoardView:
        return _open_board(self.path).poll(
            self.instance, self.cube_set, self.cube_count
        )

    def publish_refuted(self, bound: int, *, assumption_free: bool = False) -> None:
        # A refutation whose UNSAT core used no cube literal holds for
        # the unsplit instance: route it to the global row so sibling
        # lanes skip the bound instead of re-proving it per cube.
        cube = -1 if assumption_free else self.cube
        _open_board(self.path).publish_refuted(
            self.instance, self.cube_set, cube, bound
        )

    def publish_sat(self, bound: int) -> None:
        _open_board(self.path).publish_sat(self.instance, self.cube_set, bound)


def instance_key(dag: Dag, options: EncodingOptions, budget: int) -> str:
    """Backend-invariant board key of one (dag, options, budget) instance."""
    from repro.store.fingerprint import (
        FINGERPRINT_VERSION,
        dag_fingerprint,
        options_key,
    )

    canonical = json.dumps(
        [FINGERPRINT_VERSION, dag_fingerprint(dag), options_key(options), budget],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# lane execution and the merged search
# ---------------------------------------------------------------------------
def _cube_lane_worker(payload: dict) -> tuple:
    """Solve one cube lane; never raises, returns ('ok', result) or an error."""
    from repro.pebbling.solver import ReversiblePebblingSolver

    with obs_trace.activated(payload.get("trace")):
        with obs_trace.span(
            "cube.lane",
            cube=payload["channel"].cube,
            backend=payload["backend"],
        ) as lane_span:
            try:
                solver = ReversiblePebblingSolver(
                    payload["dag"],
                    options=payload["options"],
                    incremental=True,
                    conflict_limit=payload["conflict_limit"],
                    backend=payload["backend"],
                )
                result = solver.solve(
                    payload["budget"],
                    strategy=payload["search"],
                    initial_steps=payload["initial_steps"],
                    max_steps=payload["max_steps"],
                    time_limit=payload["time_limit"],
                    step_floor=payload["step_floor"],
                    cube=payload["cube"],
                    board=payload["channel"],
                    cancel=payload["cancel_path"],
                )
                lane_span.set(
                    outcome=result.outcome.value,
                    sat_calls=len(result.attempts),
                    shared_bound_hits=result.shared_bound_hits,
                )
                return ("ok", result)
            except Exception as error:  # noqa: BLE001 — a dead lane must not kill the search
                lane_span.set(outcome="error")
                return ("error", str(error), traceback_module.format_exc())


def _lane_payloads(
    solver,
    max_pebbles: int,
    cube_set: CubeSet,
    *,
    searches: "list[SearchStrategy]",
    initial: int,
    max_steps: int,
    time_limit: float | None,
    step_floor: int | None,
    board_path: str,
    instance: str,
    cube_count: int,
    cancel_path: str,
) -> list[dict]:
    payloads = []
    set_id = cube_set.cube_set_id
    for index, cube in enumerate(cube_set.cubes):
        lane_initial, lane_floor, lane_max = initial, step_floor, max_steps
        if cube.step_lo is not None:
            # Disjoint bracket: the lanes below this one own the bounds
            # below ``step_lo``, so the lane may treat it as trusted —
            # the merged certificate still comes from the board alone.
            lane_initial = max(initial, cube.step_lo)
            lane_floor = cube.step_lo
        if cube.step_hi is not None:
            lane_max = min(max_steps, cube.step_hi)
        payloads.append(
            {
                "dag": solver.dag,
                "options": solver.options,
                "conflict_limit": solver.conflict_limit,
                "backend": solver.backend,
                "budget": max_pebbles,
                "search": searches[index],
                "initial_steps": lane_initial,
                "max_steps": lane_max,
                "time_limit": time_limit,
                "step_floor": lane_floor,
                "cube": cube,
                "channel": BoardChannel(
                    path=board_path,
                    instance=instance,
                    cube_set=set_id,
                    cube=index if cube.assignments else -1,
                    cube_count=cube_count,
                ),
                "cancel_path": cancel_path,
                # Lane workers re-activate this so their spans parent
                # under the search that split them (None when tracing is
                # off — ``activated(None)`` is a no-op).
                "trace": obs_trace.current_context(),
            }
        )
    return payloads


def _lane_summaries(cube_set, lane_results, lane_errors) -> list[dict]:
    summaries = []
    for index, cube in enumerate(cube_set.cubes):
        entry: dict[str, object] = {"cube": index, "split": cube.describe()}
        result = lane_results[index]
        if result is not None:
            entry.update(
                outcome=result.outcome.value,
                steps=result.num_steps,
                sat_calls=len(result.attempts),
                runtime=round(result.runtime, 3),
                complete=result.complete,
                shared_bound_hits=result.shared_bound_hits,
            )
        else:
            entry.update(outcome="error", error=lane_errors.get(index))
        summaries.append(entry)
    return summaries


def run_cube_search(
    solver,
    max_pebbles: int,
    *,
    cubes: "CubeSet | int",
    jobs: int = 1,
    search: "SearchStrategy | str | None" = None,
    initial_steps: int | None = None,
    max_steps: int | None = None,
    time_limit: float | None = None,
    step_floor: int | None = None,
    cancel: "CancellationToken | str | None" = None,
    mode: str = "variables",
):
    """Race cube lanes of one Problem-1 search and merge their answers.

    ``solver`` is a configured
    :class:`~repro.pebbling.solver.ReversiblePebblingSolver`; each lane
    rebuilds an identical one in its worker process (registry backend
    specs pickle, raw solver factories do not and are rejected).  The
    merged :class:`~repro.pebbling.solver.PebblingResult` reports the
    best witness across lanes; its ``minimal`` flag is set from the
    *board certificate* — some lane witnessed ``K`` and the pooled
    refutations cover every bound below ``K`` — which is exactly the
    condition under which the first winner cancels the remaining lanes.

    ``jobs > 1`` fans the lanes across a private process pool (sized by
    the request, not the host: on a saturated or single-core machine the
    win comes from splitting the *proof*, sharing bounds and cancelling
    redundant work, not from extra cores).  ``jobs = 1`` runs the lanes
    inline in publication order, still through the shared board and
    token, which keeps cube runs reproducible in tests.
    """
    from repro.pebbling.solver import (
        PebblingOutcome,
        PebblingResult,
    )

    if not solver.incremental:
        raise PebblingError(
            "cube-and-conquer needs the incremental engine (cube "
            "assumptions ride the final-guard ladder); incremental=False "
            "is only kept for the ablation benchmark"
        )
    if solver.solver_factory is not None:
        raise PebblingError(
            "cube lanes rebuild their solver from the registry backend "
            "spec; raw solver factories do not cross process boundaries"
        )
    if jobs < 1:
        raise PebblingError("jobs must be >= 1")
    search = resolve_search_strategy(search)
    if search.needs_monotone_steps and solver.options.forbid_idle_steps:
        raise PebblingError(
            f"the {search.name!r} schedule requires idle steps to be allowed"
        )
    started = time.monotonic()
    if max_pebbles < solver.minimum_pebbles_lower_bound():
        result = PebblingResult(
            solver.dag.name,
            max_pebbles,
            PebblingOutcome.INFEASIBLE,
            weighted=solver.options.weighted,
            backend=solver.backend,
        )
        result.complete = True
        result.runtime = time.monotonic() - started
        return result
    if max_steps is None:
        max_steps = max(16, 4 * solver.dag.num_nodes * solver.dag.num_nodes)
    floor = solver.default_initial_steps(max_pebbles=max_pebbles)
    if step_floor is not None:
        floor = max(floor, step_floor)
    initial = initial_steps or floor
    if isinstance(cubes, CubeSet):
        cube_set = cubes
    else:
        cube_set = generate_cubes(
            solver.dag,
            int(cubes),
            options=solver.options,
            mode=mode,
            floor=floor,
            ceiling=max_steps,
        )
    if len(cube_set) <= 1:
        # Degenerate split (tiny DAG, count 1): nothing to race.
        return solver.solve(
            max_pebbles,
            strategy=search,
            initial_steps=initial_steps,
            max_steps=max_steps,
            time_limit=time_limit,
            step_floor=step_floor,
            cancel=cancel,
        )

    scratch = tempfile.mkdtemp(prefix="repro-cubes-")
    board_path = os.path.join(scratch, "board.db")
    token = resolve_token(cancel) or CancellationToken(
        os.path.join(scratch, "winner.cancel")
    )
    lane_count = len(cube_set)
    # Per-cube refutation rows only aggregate over a *pure* variable
    # split; bracket lanes publish assumption-free (global) bounds.
    pure_variables = all(cube.assignments for cube in cube_set.cubes)
    cube_count = lane_count if pure_variables else 0
    instance = instance_key(solver.dag, solver.options, max_pebbles)
    set_id = cube_set.cube_set_id
    lane_results: list = [None] * lane_count
    lane_errors: dict[int, str] = {}
    best_index: int | None = None
    try:
        board = _open_board(board_path)
        # Seed the structural floor: bounds below it are refuted for the
        # instance (and hence for every cube), so the certificate can
        # close even for lanes that never answer a single UNSAT.
        if floor > 1:
            board.publish_refuted(instance, set_id, -1, floor - 1)
            if pure_variables:
                for index in range(lane_count):
                    board.publish_refuted(instance, set_id, index, floor - 1)
        # Lane schedule: under the default unit climb every lane re-proves
        # every rung of the ladder at a fraction of the machine.  Striped
        # lanes divide the frontier instead: lane k probes the k-th of
        # the next ``lane_count`` unsettled rungs (rotating with the
        # shared frontier), a deep UNSAT settles the lane's whole row by
        # step-monotonicity, and recheck-promotion carries single rungs
        # to the global row — each rung of the ladder is proven once
        # *somewhere* instead of once per lane, and no lane ever probes
        # past the smallest shared witness (loose-bound SAT probes are
        # ruinously expensive in this encoding; see EXPERIMENTS.md).
        # Explicit non-default schedules (and idle-step-free games, where
        # the striping is unsound) are honoured as given.
        lane_searches = [search] * lane_count
        if (
            cube_set.mode == "variables"
            and isinstance(search, LinearSearch)
            and search.step_increment == 1
            and not search.core_lookahead
            and not solver.options.forbid_idle_steps
        ):
            lane_searches = [
                StripedClimb(lane=index, lanes=lane_count)
                for index in range(lane_count)
            ]
        payloads = _lane_payloads(
            solver,
            max_pebbles,
            cube_set,
            searches=lane_searches,
            initial=initial,
            max_steps=max_steps,
            time_limit=time_limit,
            step_floor=step_floor,
            board_path=board_path,
            instance=instance,
            cube_count=cube_count,
            cancel_path=token.path,
        )

        certified_announced = False

        def absorb(index: int, outcome: tuple) -> None:
            nonlocal best_index, certified_announced
            if outcome[0] != "ok":
                lane_errors[index] = outcome[1]
                return
            lane_results[index] = outcome[1]
            steps = outcome[1].num_steps
            best = (
                lane_results[best_index].num_steps
                if best_index is not None
                else None
            )
            if steps is not None and (best is None or steps < best):
                best_index = index
            # First-winner certification: a witness at K plus pooled
            # refutations through K-1 pin the global minimum — stop
            # every lane still probing.
            if best_index is not None:
                witness = lane_results[best_index].num_steps
                view = board.poll(instance, set_id, cube_count)
                pooled = floor - 1  # structural: bounds below the floor
                if view.refuted is not None:
                    pooled = max(pooled, view.refuted)
                if pooled >= witness - 1:
                    if not token.cancelled():
                        obs_trace.event(
                            "cubes.certified",
                            witness=witness,
                            pooled_refuted=pooled,
                            winner=best_index,
                        )
                        certified_announced = True
                        _metrics.counter("repro_cancellations_total").inc()
                    token.cancel()

        use_pool = jobs > 1 and lane_count > 1
        if use_pool:
            try:
                pickle.dumps(payloads[0])
            except Exception:  # noqa: BLE001 — unpicklable DAG payloads
                use_pool = False
        if use_pool:
            with ProcessPoolExecutor(max_workers=min(jobs, lane_count)) as pool:
                futures = {
                    pool.submit(_cube_lane_worker, payload): index
                    for index, payload in enumerate(payloads)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        absorb(index, future.result())
                    except Exception as error:  # noqa: BLE001 — broken pool
                        lane_errors[index] = str(error)
        else:
            for index, payload in enumerate(payloads):
                if time_limit is not None:
                    remaining = time_limit - (time.monotonic() - started)
                    # Leave cancelled lanes room for their instant exit.
                    payload["time_limit"] = max(0.05, remaining)
                absorb(index, _cube_lane_worker(payload))

        final_view = board.poll(instance, set_id, cube_count)
        board_stats = {"published": board.published, "polled": board.polled}
    finally:
        _discard_board(board_path)
        shutil.rmtree(scratch, ignore_errors=True)

    winner = lane_results[best_index] if best_index is not None else None
    witness_steps = winner.num_steps if winner is not None else None
    # The structural floor refutes every bound below it by construction
    # (the same argument the sequential search leans on when its witness
    # lands on the very first probe), so it backs the board even when no
    # lane answered a single UNSAT.
    pooled_refuted = floor - 1
    if final_view.refuted is not None:
        pooled_refuted = max(pooled_refuted, final_view.refuted)
    certified = (
        witness_steps is not None and pooled_refuted >= witness_steps - 1
    )
    if certified and not certified_announced:
        # Certification can become visible only at the final poll — e.g.
        # the refuting lane's rows land after the winner's absorb — in
        # which case no lane was left to cancel; the trace still records
        # that the board pinned the minimum.
        obs_trace.event(
            "cubes.certified",
            witness=witness_steps,
            pooled_refuted=pooled_refuted,
            winner=best_index,
        )
    ok_lanes = [result for result in lane_results if result is not None]
    all_complete = not lane_errors and all(
        result.complete for result in ok_lanes
    )
    if not ok_lanes and lane_errors:
        first = min(lane_errors)
        raise PebblingError(
            f"every cube lane failed; lane {first}: {lane_errors[first]}"
        )
    if winner is not None:
        outcome = PebblingOutcome.SOLUTION
    elif all_complete:
        outcome = PebblingOutcome.STEP_LIMIT
    elif token.cancelled():
        outcome = PebblingOutcome.CANCELLED
    else:
        outcome = PebblingOutcome.TIMEOUT
    merged = PebblingResult(
        solver.dag.name,
        max_pebbles,
        outcome,
        strategy=winner.strategy if winner is not None else None,
        weighted=solver.options.weighted,
        backend=solver.backend,
    )
    for result in ok_lanes:
        merged.attempts.extend(result.attempts)
    merged.complete = certified or all_complete
    # The board certificate *is* a minimality proof: every bound below
    # the witness is refuted by UNSAT cores (or the structural floor),
    # across the exhaustive cube cover — no schedule caveats needed.
    merged.minimal = certified
    merged.shared_bound_hits = sum(
        result.shared_bound_hits for result in ok_lanes
    )
    _metrics.counter("repro_shared_bound_hits_total").inc(merged.shared_bound_hits)
    merged.cubes = {
        "count": lane_count,
        "mode": cube_set.mode,
        "jobs": jobs,
        "winner": best_index,
        "certified": certified,
        "cancelled": [
            index
            for index, result in enumerate(lane_results)
            if result is not None
            and result.outcome is PebblingOutcome.CANCELLED
        ],
        "shared_bound_hits": merged.shared_bound_hits,
        "board": board_stats,
        "lanes": _lane_summaries(cube_set, lane_results, lane_errors),
    }
    if not merged.complete:
        merged.partial = {
            "lanes": merged.cubes["lanes"],
            "best_steps": witness_steps,
            "sat_calls": len(merged.attempts),
        }
    merged.runtime = time.monotonic() - started
    return merged
