"""Pebbling configurations, moves and strategies.

A *configuration* is the set of currently pebbled nodes (Definition 2 in
the paper).  A *strategy* is a sequence of configurations that starts
empty, ends with exactly the outputs pebbled, and where each transition
only (un)pebbles nodes whose dependencies are pebbled both before and
after the transition (Definition 3, generalised to allow several moves per
transition exactly as the paper's SAT encoding does).

:class:`PebblingStrategy` is the central object returned by every engine
(Bennett baseline, heuristic, SAT solver) and consumed by the circuit
compiler, the visualiser and the benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InvalidStrategyError
from repro.dag.graph import Dag, NodeId


@dataclass(frozen=True)
class PebbleMove:
    """A single pebble placement or removal.

    ``pebble`` is ``True`` when the move places a pebble on ``node``
    (computes the value) and ``False`` when it removes the pebble
    (uncomputes the value).
    """

    node: NodeId
    pebble: bool

    def __str__(self) -> str:
        action = "pebble" if self.pebble else "unpebble"
        return f"{action}({self.node})"


class PebblingStrategy:
    """A sequence of pebbling configurations for a given DAG.

    The constructor validates the strategy against the rules of the
    reversible pebbling game and raises
    :class:`~repro.errors.InvalidStrategyError` when they are violated,
    so any strategy object that exists is known to be legal.
    """

    def __init__(
        self,
        dag: Dag,
        configurations: Sequence[Iterable[NodeId]],
        *,
        max_moves_per_step: int | None = None,
        compress: bool = True,
    ) -> None:
        self.dag = dag
        configs = [frozenset(config) for config in configurations]
        if compress:
            configs = _compress(configs)
        self._configurations: list[frozenset[NodeId]] = configs
        self.max_moves_per_step = max_moves_per_step
        self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_moves(
        cls,
        dag: Dag,
        moves: Sequence[PebbleMove],
        *,
        compress: bool = False,
    ) -> "PebblingStrategy":
        """Build a strategy from a sequence of single moves."""
        configurations: list[set[NodeId]] = [set()]
        current: set[NodeId] = set()
        for move in moves:
            current = set(current)
            if move.pebble:
                if move.node in current:
                    raise InvalidStrategyError(f"{move} pebbles an already pebbled node")
                current.add(move.node)
            else:
                if move.node not in current:
                    raise InvalidStrategyError(f"{move} unpebbles an unpebbled node")
                current.remove(move.node)
            configurations.append(current)
        return cls(dag, configurations, max_moves_per_step=1, compress=compress)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        dag = self.dag
        dag.validate()
        configs = self._configurations
        if not configs:
            raise InvalidStrategyError("a strategy needs at least one configuration")
        node_set = set(dag.nodes())
        for index, config in enumerate(configs):
            unknown = config - node_set
            if unknown:
                raise InvalidStrategyError(
                    f"configuration {index} pebbles unknown nodes {sorted(map(str, unknown))}"
                )
        if configs[0]:
            raise InvalidStrategyError("the initial configuration must be empty")
        outputs = frozenset(dag.outputs())
        if configs[-1] != outputs:
            raise InvalidStrategyError(
                "the final configuration must contain exactly the outputs; "
                f"expected {sorted(map(str, outputs))}, got {sorted(map(str, configs[-1]))}"
            )
        for index in range(len(configs) - 1):
            before, after = configs[index], configs[index + 1]
            changed = before.symmetric_difference(after)
            if self.max_moves_per_step is not None and len(changed) > self.max_moves_per_step:
                raise InvalidStrategyError(
                    f"transition {index} changes {len(changed)} nodes, "
                    f"allowed at most {self.max_moves_per_step}"
                )
            for node in changed:
                for dependency in dag.dependencies(node):
                    if dependency not in before or dependency not in after:
                        raise InvalidStrategyError(
                            f"transition {index} (un)pebbles {node!r} while its "
                            f"dependency {dependency!r} is not pebbled on both sides"
                        )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def configurations(self) -> list[frozenset[NodeId]]:
        """The configurations, starting with the empty one."""
        return list(self._configurations)

    @property
    def num_steps(self) -> int:
        """Number of transitions (the paper's K)."""
        return len(self._configurations) - 1

    @property
    def num_moves(self) -> int:
        """Total number of pebble placements and removals.

        For single-move strategies this equals :attr:`num_steps`; it is the
        number of single-target gates of the compiled reversible circuit.
        """
        return sum(
            len(self._configurations[i].symmetric_difference(self._configurations[i + 1]))
            for i in range(self.num_steps)
        )

    @property
    def max_pebbles(self) -> int:
        """Peak number of simultaneously pebbled nodes."""
        return max(len(config) for config in self._configurations)

    def pebble_profile(self) -> list[int]:
        """Number of pebbles in use at each configuration (Fig. 5 top curves)."""
        return [len(config) for config in self._configurations]

    def weight_profile(self) -> list[float]:
        """Total pebbled weight at each configuration (weighted game)."""
        return [
            sum(self.dag.node(node).weight for node in config)
            for config in self._configurations
        ]

    @property
    def max_weight(self) -> float:
        """Peak total weight of simultaneously pebbled nodes.

        With unit node weights this equals :attr:`max_pebbles`; with the
        weighted game's qubit-count weights it is the qubit budget the
        strategy actually needs.
        """
        return max(self.weight_profile())

    def moves(self) -> list[PebbleMove]:
        """Serialise the strategy into a list of single moves.

        Within one transition all changed nodes have their dependencies
        pebbled on both sides, so any serialisation order is legal; removals
        are emitted before additions to keep the intermediate pebble count
        from exceeding the configuration bound.
        """
        result: list[PebbleMove] = []
        for index in range(self.num_steps):
            before, after = self._configurations[index], self._configurations[index + 1]
            for node in sorted(before - after, key=str):
                result.append(PebbleMove(node, pebble=False))
            for node in sorted(after - before, key=str):
                result.append(PebbleMove(node, pebble=True))
        return result

    def as_single_move_strategy(self) -> "PebblingStrategy":
        """Return an equivalent strategy with exactly one move per transition."""
        return PebblingStrategy.from_moves(self.dag, self.moves())

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def compute_counts(self) -> dict[NodeId, int]:
        """How many times each node is pebbled (computed)."""
        counts: dict[NodeId, int] = {node: 0 for node in self.dag.nodes()}
        for move in self.moves():
            if move.pebble:
                counts[move.node] += 1
        return counts

    def operation_counts(self) -> dict[str, int]:
        """Number of executed operations per operation label.

        Both pebbling and unpebbling a node execute the node's operation
        once on the quantum machine (compute and uncompute use the same
        gate), so each move contributes one operation — this is the count
        reported under each grid of Fig. 5.
        """
        counts: dict[str, int] = {}
        for move in self.moves():
            operation = self.dag.node(move.node).operation
            counts[operation] = counts.get(operation, 0) + 1
        return counts

    def remove_redundant_moves(self) -> "PebblingStrategy":
        """Return an equivalent strategy without useless pebble/unpebble pairs.

        SAT models are only required to respect the step bound, so they may
        pebble a node and remove it again without any dependent ever reading
        it.  Such a pair of moves is redundant: dropping it keeps the
        strategy legal and can only lower the pebble profile.  The pass
        repeats until no redundant interval remains.
        """
        configs = [set(config) for config in self._configurations]
        changed = True
        while changed:
            changed = False
            for node in self.dag.nodes():
                intervals = _pebbled_intervals(configs, node)
                dependents = self.dag.dependents(node)
                for start, end in intervals:
                    if end >= len(configs) - 1 and node in configs[-1]:
                        continue  # the final interval of an output node
                    if _interval_is_used(configs, dependents, start, end):
                        continue
                    for index in range(start + 1, end + 1):
                        configs[index].discard(node)
                    changed = True
                if changed:
                    break
        return PebblingStrategy(
            self.dag, configs, max_moves_per_step=self.max_moves_per_step
        )

    def weighted_cost(self) -> float:
        """Total cost of all moves using each node's ``weight``."""
        return sum(self.dag.node(move.node).weight for move in self.moves())

    def summary(self) -> dict[str, object]:
        """A small report dictionary used by the CLI and the benchmarks."""
        return {
            "dag": self.dag.name,
            "nodes": self.dag.num_nodes,
            "steps": self.num_steps,
            "moves": self.num_moves,
            "pebbles": self.max_pebbles,
            "operation_counts": self.operation_counts(),
        }

    def __repr__(self) -> str:
        return (
            f"PebblingStrategy(dag={self.dag.name!r}, steps={self.num_steps}, "
            f"moves={self.num_moves}, pebbles={self.max_pebbles})"
        )


def strategy_payload(strategy: PebblingStrategy) -> dict[str, object]:
    """JSON-serialisable form of a strategy (see :func:`strategy_from_payload`).

    Node identifiers are serialised through ``str``, so round-tripping
    requires them to be uniquely stringifiable — true for every bundled
    workload and anything the compilation pipeline accepts.
    """
    return {
        "configurations": [
            sorted(str(node) for node in configuration)
            for configuration in strategy.configurations
        ],
        "max_moves_per_step": strategy.max_moves_per_step,
    }


def strategy_from_payload(
    payload: dict[str, object], dag: Dag
) -> PebblingStrategy:
    """Rebuild (and revalidate) a strategy from :func:`strategy_payload`.

    ``dag`` must be the graph the strategy was computed on; a payload
    serialised for a differently-labelled DAG raises a targeted error
    instead of a bare ``KeyError``.
    """
    by_name = {str(node): node for node in dag.nodes()}
    try:
        configurations = [
            {by_name[name] for name in configuration}
            for configuration in payload["configurations"]
        ]
    except KeyError as exc:
        raise InvalidStrategyError(
            f"stored strategy references unknown node {exc.args[0]!r}; "
            "the result was serialised for a different DAG"
        ) from exc
    return PebblingStrategy(
        dag,
        configurations,
        max_moves_per_step=payload.get("max_moves_per_step"),
    )


def _pebbled_intervals(
    configs: list[set[NodeId]], node: NodeId
) -> list[tuple[int, int]]:
    """Return maximal intervals ``(start, end)`` with ``node`` pebbled in
    configurations ``start + 1 .. end`` (pebbled by transition ``start`` and
    removed by transition ``end``, or still pebbled at the very end)."""
    intervals: list[tuple[int, int]] = []
    start: int | None = None
    for index, config in enumerate(configs):
        pebbled = node in config
        if pebbled and start is None:
            start = index - 1
        elif not pebbled and start is not None:
            intervals.append((start, index - 1))
            start = None
    if start is not None:
        intervals.append((start, len(configs) - 1))
    return intervals


def _interval_is_used(
    configs: list[set[NodeId]],
    dependents: tuple[NodeId, ...],
    start: int,
    end: int,
) -> bool:
    """Does any dependent change while the pebble interval is active?"""
    for transition in range(start + 1, end):
        before, after = configs[transition], configs[transition + 1]
        for dependent in dependents:
            if (dependent in before) != (dependent in after):
                return True
    return False


def _compress(configs: list[frozenset[NodeId]]) -> list[frozenset[NodeId]]:
    """Drop consecutive duplicate configurations (idle SAT steps)."""
    compressed: list[frozenset[NodeId]] = []
    for config in configs:
        if compressed and compressed[-1] == config:
            continue
        compressed.append(config)
    return compressed
