"""First-winner cancellation across process boundaries.

Portfolio races and cube-and-conquer lanes run in separate processes, so
an in-memory ``threading.Event`` cannot tell a losing lane to stop.  A
:class:`CancellationToken` is the smallest primitive that can: a path in
a scratch directory whose *existence* is the flag.  Creating a file is
atomic on every platform we run on, ``os.path.exists`` is a single cheap
``stat`` call, and the token pickles into pool workers as a plain string.

Lanes poll the token between SAT calls (see
``ReversiblePebblingSolver._solve_incremental``) and between retry
attempts (``portfolio._execute_task``); once the first lane completes —
or the cube layer certifies a global minimum — the winner cancels the
token and every sibling stops at its next check instead of running to
completion.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class CancellationToken:
    """A cross-process cancellation flag backed by a marker file.

    The token never creates its parent directory: callers own the scratch
    directory's lifetime (typically a ``tempfile.TemporaryDirectory``
    around one race or cube search), so a token outliving its scratch
    space degrades to "never cancelled" instead of leaking files.
    """

    path: str

    def cancel(self) -> None:
        """Raise the flag.  Idempotent; racing cancellers are harmless."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_WRONLY, 0o644)
        except OSError:
            # Scratch directory already gone (the run is over) — nothing
            # left to cancel.
            return
        os.close(fd)

    def cancelled(self) -> bool:
        """``True`` once any process has called :meth:`cancel`."""
        return os.path.exists(self.path)


def resolve_token(cancel: "CancellationToken | str | None") -> CancellationToken | None:
    """Accept a token, a bare path (what crosses pickling), or ``None``."""
    if cancel is None or isinstance(cancel, CancellationToken):
        return cancel
    return CancellationToken(str(cancel))
