"""Reversible pebbling game — the paper's core contribution.

The subpackage is organised as follows:

* :mod:`repro.pebbling.strategy` -- pebbling configurations and strategies,
  legality checking, step/move/pebble metrics, serialisation to single
  moves and operation-count reports;
* :mod:`repro.pebbling.bennett` -- the Bennett baseline (compute everything,
  then uncompute in reverse order) and the eager-release variant obtained by
  reordering (Fig. 3(b));
* :mod:`repro.pebbling.encoding` -- the SAT encoding of Problem 2 (pebble
  variables :math:`p_{v,i}`, initial/final clauses, move clauses and
  cardinality clauses);
* :mod:`repro.pebbling.solver` -- :class:`ReversiblePebblingSolver`, which
  iterates the bounded-step SAT queries (Problem 1), minimises the number
  of pebbles under a timeout, and extracts strategies from models;
* :mod:`repro.pebbling.heuristic` -- a greedy heuristic pebbler usable on
  DAGs that are too large for the SAT engine;
* :mod:`repro.pebbling.cubes` -- cube-and-conquer parallelism for one hard
  instance: exhaustive cube covers, the cross-process bound board, and
  first-winner cancellation (shared with the portfolio's backend races via
  :mod:`repro.pebbling.cancel`).
"""

from repro.pebbling.bennett import bennett_strategy, eager_bennett_strategy
from repro.pebbling.cancel import CancellationToken
from repro.pebbling.cubes import (
    BoundBoard,
    Cube,
    CubeSet,
    cubes_cover_exhaustively,
    generate_cubes,
    run_cube_search,
)
from repro.pebbling.encoding import EncodingOptions, PebblingEncoder
from repro.pebbling.heuristic import greedy_pebbling_strategy
from repro.pebbling.portfolio import (
    PortfolioHealth,
    PortfolioRecord,
    PortfolioTask,
    RetryPolicy,
    minimize_pebbles_portfolio,
    run_portfolio,
    tasks_from_suite,
)
from repro.pebbling.search import (
    GeometricRefine,
    GeometricSearch,
    LinearSearch,
    SearchStrategy,
    StripedClimb,
    strategy_from_name,
)
from repro.pebbling.solver import (
    PebblingOutcome,
    PebblingResult,
    ReversiblePebblingSolver,
    minimize_pebbles,
    pebble_dag,
)
from repro.pebbling.strategy import PebbleMove, PebblingStrategy

__all__ = [
    "BoundBoard",
    "CancellationToken",
    "Cube",
    "CubeSet",
    "EncodingOptions",
    "GeometricRefine",
    "GeometricSearch",
    "LinearSearch",
    "PebbleMove",
    "PebblingEncoder",
    "PebblingOutcome",
    "PebblingResult",
    "PebblingStrategy",
    "PortfolioHealth",
    "PortfolioRecord",
    "PortfolioTask",
    "RetryPolicy",
    "ReversiblePebblingSolver",
    "SearchStrategy",
    "StripedClimb",
    "bennett_strategy",
    "cubes_cover_exhaustively",
    "eager_bennett_strategy",
    "generate_cubes",
    "greedy_pebbling_strategy",
    "minimize_pebbles",
    "minimize_pebbles_portfolio",
    "pebble_dag",
    "run_cube_search",
    "run_portfolio",
    "strategy_from_name",
    "tasks_from_suite",
]
