"""SAT-driven reversible pebbling (Problems 1 and 2 of the paper).

:class:`ReversiblePebblingSolver` wraps the encoding of
:mod:`repro.pebbling.encoding` with the two search loops used in the
paper's evaluation:

* :meth:`ReversiblePebblingSolver.solve` — Problem 1: given a pebble budget
  ``P``, find a strategy with the minimum number of steps by asking the SAT
  oracle for ``K, K+1, K+2, ...`` steps until a solution appears (or a time
  budget runs out);
* :meth:`ReversiblePebblingSolver.minimize_pebbles` — the outer loop used
  for Table I: find the smallest ``P`` for which a strategy can be found
  within a per-budget timeout.

Both loops support the incremental mode, which keeps a single
:class:`~repro.sat.solver.CdclSolver` alive across step bounds: the
final-configuration constraint of each bound is guarded by an activation
literal and selected with assumptions, so learned clauses are reused when
moving from ``K`` to ``K + 1``.  The non-incremental mode re-encodes from
scratch for every ``K`` (the paper's plain approach) and is kept for the
ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import PebblingError
from repro.dag.graph import Dag, NodeId
from repro.pebbling.bennett import eager_bennett_strategy
from repro.pebbling.encoding import EncodingOptions, PebblingEncoder
from repro.pebbling.strategy import PebblingStrategy
from repro.sat.cards import at_most_k
from repro.sat.cnf import Cnf
from repro.sat.solver import CdclSolver, Status


class PebblingOutcome(Enum):
    """Outcome of a pebbling search."""

    SOLUTION = "solution"
    INFEASIBLE = "infeasible"
    STEP_LIMIT = "step-limit"
    TIMEOUT = "timeout"


@dataclass
class AttemptRecord:
    """One SAT query issued during the search (for reporting/debugging).

    ``solver_stats`` holds the full counter dictionary of the underlying
    SAT call (see :meth:`repro.sat.solver.SolverStats.as_dict`) so callers
    can aggregate propagation/decision counters across a whole search.
    """

    max_pebbles: int
    num_steps: int
    status: Status
    runtime: float
    conflicts: int
    solver_stats: dict[str, float] = field(default_factory=dict)


@dataclass
class PebblingResult:
    """Result of a pebbling search.

    ``strategy`` is ``None`` unless ``outcome`` is
    :attr:`PebblingOutcome.SOLUTION`.
    """

    dag_name: str
    max_pebbles: int
    outcome: PebblingOutcome
    strategy: PebblingStrategy | None = None
    runtime: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """``True`` when a valid strategy was found."""
        return self.outcome is PebblingOutcome.SOLUTION and self.strategy is not None

    @property
    def num_steps(self) -> int | None:
        """Number of transitions of the found strategy (None if not found)."""
        return self.strategy.num_steps if self.strategy is not None else None

    @property
    def num_moves(self) -> int | None:
        """Number of pebble moves / gates of the found strategy."""
        return self.strategy.num_moves if self.strategy is not None else None

    def summary(self) -> dict[str, object]:
        """Plain-dictionary summary used by the CLI and benchmark tables."""
        return {
            "dag": self.dag_name,
            "max_pebbles": self.max_pebbles,
            "outcome": self.outcome.value,
            "pebbles_used": self.strategy.max_pebbles if self.strategy else None,
            "steps": self.num_steps,
            "moves": self.num_moves,
            "runtime": round(self.runtime, 3),
            "sat_calls": len(self.attempts),
        }


class ReversiblePebblingSolver:
    """Finds reversible pebbling strategies for one DAG via SAT."""

    def __init__(
        self,
        dag: Dag,
        *,
        options: EncodingOptions | None = None,
        incremental: bool = True,
        conflict_limit: int | None = None,
        solver_factory: Callable[..., CdclSolver] | None = None,
    ) -> None:
        dag.validate()
        self.dag = dag
        self.options = options or EncodingOptions()
        self.incremental = incremental
        self.conflict_limit = conflict_limit
        # ``solver_factory`` must accept the ``CdclSolver`` constructor
        # signature; the benchmark harness injects the frozen legacy engine
        # here to measure engine-vs-engine speedups on identical searches.
        self.solver_factory = solver_factory or CdclSolver
        self._encoder = PebblingEncoder(dag, options=self.options)

    # ------------------------------------------------------------------
    # feasibility bounds
    # ------------------------------------------------------------------
    def minimum_pebbles_lower_bound(self) -> int:
        """A cheap lower bound on the number of pebbles of any strategy.

        Any node must be pebbled with all its dependencies pebbled, hence at
        least ``max_fanin + 1`` pebbles; the final configuration holds all
        outputs, hence at least ``|O|`` pebbles; and for a non-output DAG
        node to be cleaned up while an output stays pebbled the bound
        ``|O| + 1`` applies whenever some non-output node remains to be
        unpebbled after the last output is computed.
        """
        stats = self.dag.statistics()
        bound = max(stats.max_fanin + 1, stats.num_outputs)
        if stats.num_nodes > stats.num_outputs:
            bound = max(bound, 2)
        return bound

    def default_initial_steps(self, *, max_pebbles: int) -> int:
        """A safe lower bound on the number of transitions.

        With several moves allowed per transition, reaching the deepest
        output still needs at least ``depth`` transitions; with single-move
        transitions every node must be pebbled once and every non-output
        unpebbled once, giving ``2 |V| - |O|``.
        """
        stats = self.dag.statistics()
        if self.options.max_moves_per_step == 1:
            lower = 2 * stats.num_nodes - stats.num_outputs
        else:
            lower = stats.depth + (1 if stats.num_nodes > stats.num_outputs else 0)
        return max(1, lower)

    # ------------------------------------------------------------------
    # Problem 2: fixed number of steps
    # ------------------------------------------------------------------
    def solve_fixed(
        self,
        *,
        max_pebbles: int,
        num_steps: int,
        time_limit: float | None = None,
    ) -> tuple[Status, PebblingStrategy | None, AttemptRecord]:
        """Ask the SAT oracle whether a ``num_steps``-step strategy exists."""
        encoding = self._encoder.encode(max_pebbles=max_pebbles, num_steps=num_steps)
        solver = self.solver_factory(encoding.cnf, conflict_limit=self.conflict_limit)
        started = time.monotonic()
        result = solver.solve(time_limit=time_limit, conflict_limit=self.conflict_limit)
        elapsed = time.monotonic() - started
        record = AttemptRecord(
            max_pebbles=max_pebbles,
            num_steps=num_steps,
            status=result.status,
            runtime=elapsed,
            conflicts=result.stats.conflicts,
            solver_stats=result.stats.as_dict(),
        )
        if not result.is_sat:
            return result.status, None, record
        assert result.model is not None
        configurations = encoding.configurations_from_model(result.model)
        strategy = PebblingStrategy(
            self.dag,
            configurations,
            max_moves_per_step=self.options.max_moves_per_step,
        )
        return result.status, strategy, record

    # ------------------------------------------------------------------
    # Problem 1: minimum steps for a pebble budget
    # ------------------------------------------------------------------
    def solve(
        self,
        max_pebbles: int,
        *,
        initial_steps: int | None = None,
        step_increment: int = 1,
        step_schedule: str = "linear",
        max_steps: int | None = None,
        time_limit: float | None = None,
    ) -> PebblingResult:
        """Find a strategy with at most ``max_pebbles`` pebbles.

        The number of steps starts at ``initial_steps`` (default: a structural
        lower bound) and grows after every UNSAT answer until a solution is
        found, ``max_steps`` is exceeded, or the time budget runs out.

        ``step_schedule`` controls how the bound grows:

        * ``"linear"`` (the paper's Problem 1 loop) — add ``step_increment``
          after each UNSAT answer, which yields a step-minimal solution;
        * ``"geometric"`` — multiply the bound by 1.5 after each UNSAT
          answer, which gives up step minimality in exchange for far fewer
          SAT calls on tightly constrained instances (used by the Fig. 5
          budget sweeps on larger programs).
        """
        if max_pebbles < 1:
            raise PebblingError("max_pebbles must be >= 1")
        if step_increment < 1:
            raise PebblingError("step_increment must be >= 1")
        if step_schedule not in ("linear", "geometric"):
            raise PebblingError("step_schedule must be 'linear' or 'geometric'")
        started = time.monotonic()
        result = PebblingResult(self.dag.name, max_pebbles, PebblingOutcome.TIMEOUT)

        if max_pebbles < self.minimum_pebbles_lower_bound():
            result.outcome = PebblingOutcome.INFEASIBLE
            result.runtime = time.monotonic() - started
            return result

        if max_steps is None:
            # 4 |V|^2 is far beyond any minimal strategy we can extract and
            # only acts as a runaway guard.
            max_steps = max(16, 4 * self.dag.num_nodes * self.dag.num_nodes)
        num_steps = initial_steps or self.default_initial_steps(max_pebbles=max_pebbles)

        if self.incremental:
            outcome = self._solve_incremental(
                result, max_pebbles, num_steps, step_increment, step_schedule,
                max_steps, time_limit, started,
            )
        else:
            outcome = self._solve_monolithic(
                result, max_pebbles, num_steps, step_increment, step_schedule,
                max_steps, time_limit, started,
            )
        result.outcome = outcome
        result.runtime = time.monotonic() - started
        return result

    def _remaining(self, time_limit: float | None, started: float) -> float | None:
        if time_limit is None:
            return None
        return time_limit - (time.monotonic() - started)

    @staticmethod
    def _next_steps(num_steps: int, step_increment: int, step_schedule: str) -> int:
        if step_schedule == "geometric":
            return max(num_steps + 1, int(num_steps * 3 / 2))
        return num_steps + step_increment

    def _solve_monolithic(
        self,
        result: PebblingResult,
        max_pebbles: int,
        num_steps: int,
        step_increment: int,
        step_schedule: str,
        max_steps: int,
        time_limit: float | None,
        started: float,
    ) -> PebblingOutcome:
        while num_steps <= max_steps:
            remaining = self._remaining(time_limit, started)
            if remaining is not None and remaining <= 0:
                return PebblingOutcome.TIMEOUT
            status, strategy, record = self.solve_fixed(
                max_pebbles=max_pebbles, num_steps=num_steps, time_limit=remaining
            )
            result.attempts.append(record)
            if status is Status.SATISFIABLE and strategy is not None:
                result.strategy = strategy
                return PebblingOutcome.SOLUTION
            if status is Status.UNKNOWN:
                return PebblingOutcome.TIMEOUT
            num_steps = self._next_steps(num_steps, step_increment, step_schedule)
        return PebblingOutcome.STEP_LIMIT

    # -- incremental engine ------------------------------------------------
    def _solve_incremental(
        self,
        result: PebblingResult,
        max_pebbles: int,
        initial_steps: int,
        step_increment: int,
        step_schedule: str,
        max_steps: int,
        time_limit: float | None,
        started: float,
    ) -> PebblingOutcome:
        dag = self.dag
        nodes = dag.topological_order()
        outputs = set(dag.outputs())
        cnf = Cnf()
        variables: dict[tuple[NodeId, int], int] = {}
        solver = self.solver_factory(conflict_limit=self.conflict_limit)

        def add_configuration(step: int) -> None:
            for node in nodes:
                variables[(node, step)] = cnf.new_variable(f"p[{node},{step}]")
            if max_pebbles < len(nodes):
                at_most_k(
                    cnf,
                    [variables[(node, step)] for node in nodes],
                    max_pebbles,
                    encoding=self.options.cardinality,
                )

        def add_transition(step: int) -> None:
            move_literals: list[int] = []
            for node in nodes:
                now = variables[(node, step)]
                then = variables[(node, step + 1)]
                for dependency in dag.dependencies(node):
                    dep_now = variables[(dependency, step)]
                    dep_then = variables[(dependency, step + 1)]
                    cnf.add_clause([-now, then, dep_now])
                    cnf.add_clause([now, -then, dep_now])
                    cnf.add_clause([-now, then, dep_then])
                    cnf.add_clause([now, -then, dep_then])
                if self.options.max_moves_per_step is not None or self.options.forbid_idle_steps:
                    move = cnf.new_variable(f"m[{node},{step}]")
                    cnf.add_clause([-move, now, then])
                    cnf.add_clause([-move, -now, -then])
                    cnf.add_clause([move, -now, then])
                    cnf.add_clause([move, now, -then])
                    move_literals.append(move)
            if self.options.max_moves_per_step is not None:
                at_most_k(
                    cnf, move_literals, self.options.max_moves_per_step,
                    encoding=self.options.cardinality,
                )
            if self.options.forbid_idle_steps:
                cnf.add_clause(move_literals)

        def add_final_guard(step: int) -> int:
            guard = cnf.new_variable(f"final[{step}]")
            for node in nodes:
                literal = variables[(node, step)]
                cnf.add_clause([-guard, literal if node in outputs else -literal])
            return guard

        pushed_clauses = 0

        def flush_new_clauses() -> None:
            # Push the clauses added to ``cnf`` since the last flush into the
            # incremental solver.
            nonlocal pushed_clauses
            while pushed_clauses < len(cnf.clauses):
                solver.add_clause(cnf.clauses[pushed_clauses].literals)
                pushed_clauses += 1

        # Build configurations 0 .. initial_steps.
        add_configuration(0)
        for node in nodes:
            cnf.add_unit(-variables[(node, 0)])
        current_steps = 0
        num_steps = initial_steps
        while current_steps < num_steps:
            add_configuration(current_steps + 1)
            add_transition(current_steps)
            current_steps += 1

        while num_steps <= max_steps:
            remaining = self._remaining(time_limit, started)
            if remaining is not None and remaining <= 0:
                return PebblingOutcome.TIMEOUT
            while current_steps < num_steps:
                add_configuration(current_steps + 1)
                add_transition(current_steps)
                current_steps += 1
            guard = add_final_guard(num_steps)
            flush_new_clauses()
            call_started = time.monotonic()
            sat_result = solver.solve(
                [guard], time_limit=remaining, conflict_limit=self.conflict_limit
            )
            elapsed = time.monotonic() - call_started
            result.attempts.append(
                AttemptRecord(
                    max_pebbles=max_pebbles,
                    num_steps=num_steps,
                    status=sat_result.status,
                    runtime=elapsed,
                    conflicts=sat_result.stats.conflicts,
                    solver_stats=sat_result.stats.as_dict(),
                )
            )
            if sat_result.is_sat:
                assert sat_result.model is not None
                configurations = [
                    {
                        node
                        for node in nodes
                        if sat_result.model.get(variables[(node, step)], False)
                    }
                    for step in range(num_steps + 1)
                ]
                result.strategy = PebblingStrategy(
                    dag, configurations, max_moves_per_step=self.options.max_moves_per_step
                )
                return PebblingOutcome.SOLUTION
            if sat_result.is_unknown:
                return PebblingOutcome.TIMEOUT
            # The bound was UNSAT, so this guard will never be assumed
            # again.  Asserting its negation as a unit lets the solver
            # simplify the stale final-configuration clauses away at level 0
            # instead of dragging them through every later propagation.
            solver.add_clause([-guard])
            num_steps = self._next_steps(num_steps, step_increment, step_schedule)
        return PebblingOutcome.STEP_LIMIT

    # ------------------------------------------------------------------
    # Table I outer loop: minimise the number of pebbles
    # ------------------------------------------------------------------
    def minimize_pebbles(
        self,
        *,
        upper_bound: int | None = None,
        lower_bound: int | None = None,
        timeout_per_budget: float | None = 120.0,
        max_steps: int | None = None,
        step_increment: int = 1,
        step_schedule: str = "linear",
        stop_after_failures: int = 1,
        warm_start: bool = True,
    ) -> tuple[PebblingResult | None, list[PebblingResult]]:
        """Find the smallest pebble budget solvable within a per-budget timeout.

        Mirrors the paper's Table I methodology: "the number of pebbles
        corresponds to the minimum one for which the solver could find a
        solution within 2 minutes".  Budgets are tried in descending order
        starting just below ``upper_bound`` (default: the peak of the eager
        Bennett baseline, whose strategy also seeds the result so the scan
        never returns empty-handed); the scan stops after
        ``stop_after_failures`` consecutive budgets without a solution.

        With ``warm_start`` (default) each budget starts its step search at
        the step count of the previously found strategy — the minimum step
        count can only grow as the budget shrinks, so this skips provably
        fruitless SAT calls; disable it to obtain step-minimal answers per
        budget with the linear schedule.

        Returns ``(best_result, all_results)``.
        """
        baseline = eager_bennett_strategy(self.dag)
        if upper_bound is None:
            upper_bound = baseline.max_pebbles
        if lower_bound is None:
            lower_bound = self.minimum_pebbles_lower_bound()
        if upper_bound < lower_bound:
            upper_bound = lower_bound
        all_results: list[PebblingResult] = []
        best: PebblingResult | None = None
        steps_hint: int | None = None
        first_budget = upper_bound
        if upper_bound >= baseline.max_pebbles:
            # The eager Bennett strategy is already a witness for the loosest
            # budget; no SAT call needed for it.
            best = PebblingResult(
                self.dag.name, upper_bound, PebblingOutcome.SOLUTION, strategy=baseline
            )
            steps_hint = baseline.num_steps
            first_budget = baseline.max_pebbles - 1
        failures = 0
        for budget in range(first_budget, lower_bound - 1, -1):
            outcome = self.solve(
                budget,
                time_limit=timeout_per_budget,
                max_steps=max_steps,
                step_increment=step_increment,
                step_schedule=step_schedule,
                initial_steps=steps_hint if warm_start else None,
            )
            all_results.append(outcome)
            if outcome.found:
                best = outcome
                failures = 0
                if warm_start and outcome.num_steps is not None:
                    steps_hint = max(steps_hint or 1, outcome.num_steps)
            else:
                failures += 1
                if failures >= stop_after_failures:
                    break
        return best, all_results


# ---------------------------------------------------------------------------
# module-level conveniences
# ---------------------------------------------------------------------------
def pebble_dag(
    dag: Dag,
    max_pebbles: int,
    *,
    options: EncodingOptions | None = None,
    time_limit: float | None = None,
    **solve_kwargs,
) -> PebblingResult:
    """One-shot helper: pebble ``dag`` with at most ``max_pebbles`` pebbles."""
    solver = ReversiblePebblingSolver(dag, options=options)
    return solver.solve(max_pebbles, time_limit=time_limit, **solve_kwargs)


def minimize_pebbles(
    dag: Dag,
    *,
    options: EncodingOptions | None = None,
    timeout_per_budget: float | None = 120.0,
    **kwargs,
) -> tuple[PebblingResult | None, list[PebblingResult]]:
    """One-shot helper mirroring the Table I methodology."""
    solver = ReversiblePebblingSolver(dag, options=options)
    return solver.minimize_pebbles(timeout_per_budget=timeout_per_budget, **kwargs)
