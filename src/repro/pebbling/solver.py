"""SAT-driven reversible pebbling (Problems 1 and 2 of the paper).

:class:`ReversiblePebblingSolver` wraps the encoding of
:mod:`repro.pebbling.encoding` with the two search loops used in the
paper's evaluation:

* :meth:`ReversiblePebblingSolver.solve` — Problem 1: given a pebble budget
  ``P``, find a strategy with the minimum number of steps by asking the SAT
  oracle for ``K, K+1, K+2, ...`` steps until a solution appears (or a time
  budget runs out);
* :meth:`ReversiblePebblingSolver.minimize_pebbles` — the outer loop used
  for Table I: find the smallest ``P`` for which a strategy can be found
  within a per-budget timeout.

Both loops support the incremental mode, which keeps a single incremental
SAT backend (any :class:`~repro.sat.backend.IncrementalSatBackend`, the
native CDCL engine by default) alive across step bounds: the clause
frames come from one stateful :class:`~repro.pebbling.encoding.PebblingEncoder`
(``extend_to`` emits only the new frames), the final-configuration
constraint of each bound is guarded by an activation literal from
``final_guard`` and selected with assumptions, so learned clauses are
reused when moving between bounds.  Core-aware search strategies assume a
*ladder* of bound guards per query and use the backend's failed-assumption
core to skip provably-UNSAT bounds (see :mod:`repro.pebbling.search`).
The non-incremental mode re-encodes from scratch for every ``K`` (the
paper's plain approach) and is kept for the ablation benchmark.  How the
step bound evolves between SAT calls is a pluggable
:class:`~repro.pebbling.search.SearchStrategy`; which oracle answers is a
pluggable, picklable backend spec (see :mod:`repro.sat.backend`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import PebblingError
from repro.dag.graph import Dag
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.pebbling.bennett import eager_bennett_strategy
from repro.pebbling.cancel import resolve_token
from repro.pebbling.encoding import (
    EncodingOptions,
    PebblingEncoder,
    validated_node_weights,
)
from repro.pebbling.search import (
    GeometricRefine,
    SearchCursor,
    SearchStrategy,
    resolve_search_strategy,
)
from repro.pebbling.strategy import (
    PebblingStrategy,
    strategy_from_payload,
    strategy_payload,
)
from repro.sat.backend import (
    DEFAULT_BACKEND,
    IncrementalSatBackend,
    create_backend,
    require_backend,
)
from repro.sat.solver import Status

#: First time slice of a SAT query issued under a cancellation token or a
#: shared bound board; slices double on every retry, so non-resumable
#: backends waste at most one final slice of rework while the lane keeps
#: reacting to siblings mid-query.
_CANCEL_POLL_SLICE = 0.5


class PebblingOutcome(Enum):
    """Outcome of a pebbling search."""

    SOLUTION = "solution"
    INFEASIBLE = "infeasible"
    STEP_LIMIT = "step-limit"
    TIMEOUT = "timeout"
    #: The search was stopped by a cross-process cancellation token (a
    #: sibling race lane or cube lane already answered); a cancelled
    #: search that found a witness first reports SOLUTION instead, with
    #: ``complete=False`` and ``partial["cancelled"]`` set.
    CANCELLED = "cancelled"


@dataclass
class AttemptRecord:
    """One SAT query issued during the search (for reporting/debugging).

    ``solver_stats`` holds the full counter dictionary of the underlying
    SAT call (see :meth:`repro.sat.solver.SolverStats.as_dict`) so callers
    can aggregate propagation/decision counters across a whole search.
    """

    max_pebbles: int
    num_steps: int
    status: Status
    runtime: float
    conflicts: int
    solver_stats: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the result store)."""
        return {
            "max_pebbles": self.max_pebbles,
            "num_steps": self.num_steps,
            "status": self.status.value,
            "runtime": self.runtime,
            "conflicts": self.conflicts,
            "solver_stats": dict(self.solver_stats),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "AttemptRecord":
        """Rebuild a record from :meth:`as_dict` output."""
        return cls(
            max_pebbles=int(data["max_pebbles"]),
            num_steps=int(data["num_steps"]),
            status=Status(data["status"]),
            runtime=float(data["runtime"]),
            conflicts=int(data["conflicts"]),
            solver_stats=dict(data.get("solver_stats") or {}),
        )


@dataclass
class PebblingResult:
    """Result of a pebbling search.

    ``strategy`` is ``None`` unless ``outcome`` is
    :attr:`PebblingOutcome.SOLUTION`.  ``complete`` records whether the
    search strategy ran to its natural end (linear/geometric stopped at
    their first SAT answer, geometric-refine closed its bracket or proved
    the step budget infeasible); it is ``False`` when a time limit cut the
    search short — in particular a geometric-refine ``SOLUTION`` with
    ``complete=False`` carries a witness whose step count was *not*
    certified minimal.  ``minimal`` is set by the solver when the search
    schedule *does* certify the step count as the minimum for this budget
    (complete linear scans with unit increment from a sound floor, and
    complete geometric-refine searches); the result store only transfers
    step lower bounds between budgets from certified results.
    """

    dag_name: str
    max_pebbles: int
    outcome: PebblingOutcome
    strategy: PebblingStrategy | None = None
    runtime: float = 0.0
    attempts: list[AttemptRecord] = field(default_factory=list)
    complete: bool = False
    weighted: bool = False
    minimal: bool = False
    #: Backend spec that produced this result (metadata only: the result
    #: store's content addresses are deliberately backend-invariant, so a
    #: cache hit may report a different producer than the requester).
    backend: str = DEFAULT_BACKEND
    #: Anytime progress snapshot, present only when the search was cut
    #: short (``complete=False``): the cursor's checkpoint (next bound,
    #: largest refuted bound, smallest known-SAT bound) plus the best step
    #: count witnessed and the SAT calls spent.  A preempted request hands
    #: this back instead of nothing.
    partial: dict[str, object] | None = None
    #: How many times a bound published by *another* cube lane moved this
    #: search's cursor (skipped SAT calls it would otherwise have paid
    #: for); aggregated across lanes on a merged cube result.
    shared_bound_hits: int = 0
    #: Cube-and-conquer metadata on merged results (lane summaries, the
    #: winning cube, board traffic); ``None`` for ordinary searches.
    cubes: dict[str, object] | None = None
    #: ``True`` when this object was answered from the result store rather
    #: than computed.  Never serialised — a cache hit is byte-identical to
    #: the stored payload by contract, so the flag lives outside
    #: :meth:`to_json` and exists purely so callers can report the hit.
    from_cache: bool = field(default=False, compare=False, repr=False)

    @property
    def found(self) -> bool:
        """``True`` when a valid strategy was found."""
        return self.outcome is PebblingOutcome.SOLUTION and self.strategy is not None

    @property
    def weight_used(self) -> float | None:
        """Peak pebbled weight of the found strategy (None if not found).

        In weighted searches ``max_pebbles`` is the *weight budget* and this
        is the budget the witness actually needs; in unweighted searches it
        is reported too (useful when node weights carry qubit counts that
        the search ignored).
        """
        return self.strategy.max_weight if self.strategy is not None else None

    @property
    def num_steps(self) -> int | None:
        """Number of transitions of the found strategy (None if not found)."""
        return self.strategy.num_steps if self.strategy is not None else None

    @property
    def num_moves(self) -> int | None:
        """Number of pebble moves / gates of the found strategy."""
        return self.strategy.num_moves if self.strategy is not None else None

    def summary(self) -> dict[str, object]:
        """Plain-dictionary summary used by the CLI and benchmark tables."""
        summary: dict[str, object] = {
            "dag": self.dag_name,
            "max_pebbles": self.max_pebbles,
            "outcome": self.outcome.value,
            "pebbles_used": self.strategy.max_pebbles if self.strategy else None,
            "steps": self.num_steps,
            "moves": self.num_moves,
            "runtime": round(self.runtime, 3),
            "sat_calls": len(self.attempts),
            "complete": self.complete,
            "backend": self.backend,
        }
        if self.weighted:
            summary["weighted"] = True
            summary["weight_used"] = self.weight_used
        if self.shared_bound_hits:
            summary["shared_bound_hits"] = self.shared_bound_hits
        if self.cubes is not None:
            summary["cubes"] = self.cubes.get("count")
        if self.from_cache:
            summary["cached"] = True
        return summary

    def to_json(self) -> dict[str, object]:
        """Lossless JSON-serialisable form (see :meth:`from_json`).

        Node identifiers are serialised through ``str``, so round-tripping
        requires them to be uniquely stringifiable — true for every bundled
        workload and anything the compilation pipeline accepts.
        """
        strategy = (
            strategy_payload(self.strategy) if self.strategy is not None else None
        )
        return {
            "schema": 3,
            "dag": self.dag_name,
            "max_pebbles": self.max_pebbles,
            "outcome": self.outcome.value,
            "runtime": self.runtime,
            "complete": self.complete,
            "weighted": self.weighted,
            "minimal": self.minimal,
            "backend": self.backend,
            "partial": self.partial,
            "shared_bound_hits": self.shared_bound_hits,
            "cubes": self.cubes,
            "strategy": strategy,
            "attempts": [record.as_dict() for record in self.attempts],
        }

    @classmethod
    def from_json(cls, data: dict[str, object], dag: Dag) -> "PebblingResult":
        """Rebuild a result from :meth:`to_json` output.

        ``dag`` must be the graph the result was computed on (the strategy
        is revalidated against it, so a mismatched DAG raises instead of
        producing a silently illegal strategy).
        """
        payload = data.get("strategy")
        strategy = (
            strategy_from_payload(payload, dag) if payload is not None else None
        )
        return cls(
            dag_name=str(data["dag"]),
            max_pebbles=int(data["max_pebbles"]),
            outcome=PebblingOutcome(data["outcome"]),
            strategy=strategy,
            runtime=float(data["runtime"]),
            attempts=[
                AttemptRecord.from_dict(record) for record in data.get("attempts", [])
            ],
            complete=bool(data["complete"]),
            weighted=bool(data.get("weighted", False)),
            minimal=bool(data.get("minimal", False)),
            backend=str(data.get("backend", DEFAULT_BACKEND)),
            partial=data.get("partial"),  # type: ignore[arg-type]
            shared_bound_hits=int(data.get("shared_bound_hits", 0)),
            cubes=data.get("cubes"),  # type: ignore[arg-type]
        )


class ReversiblePebblingSolver:
    """Finds reversible pebbling strategies for one DAG via SAT."""

    def __init__(
        self,
        dag: Dag,
        *,
        options: EncodingOptions | None = None,
        incremental: bool = True,
        conflict_limit: int | None = None,
        solver_factory: Callable[..., IncrementalSatBackend] | None = None,
        backend: str | None = None,
    ) -> None:
        dag.validate()
        self.dag = dag
        self.options = options or EncodingOptions()
        self.incremental = incremental
        self.conflict_limit = conflict_limit
        # Exactly one way to choose the oracle: a registry ``backend`` spec
        # (picklable, the normal path — explicit argument wins over
        # ``EncodingOptions.backend``), or a raw ``solver_factory`` callable
        # accepting the ``CdclSolver`` constructor signature (the benchmark
        # harness injects the frozen legacy engine here to measure
        # engine-vs-engine speedups on identical searches).
        if solver_factory is not None and (
            backend is not None or self.options.backend is not None
        ):
            raise PebblingError(
                "pass either solver_factory= or a backend spec "
                "(backend= / EncodingOptions.backend), not both"
            )
        self.solver_factory = solver_factory
        if solver_factory is not None:
            factory_name = getattr(solver_factory, "__name__", "custom")
            self.backend = f"factory:{factory_name}"
        else:
            self.backend = require_backend(
                backend or self.options.backend or DEFAULT_BACKEND
            )
        self._encoder = PebblingEncoder(dag, options=self.options)

    def _make_solver(self, cnf=None) -> IncrementalSatBackend:
        """A fresh oracle for one search (optionally preloaded with a CNF)."""
        if self.solver_factory is not None:
            if cnf is not None:
                return self.solver_factory(cnf, conflict_limit=self.conflict_limit)
            return self.solver_factory(conflict_limit=self.conflict_limit)
        solver = create_backend(self.backend, conflict_limit=self.conflict_limit)
        if cnf is not None:
            solver.add_cnf(cnf)
        return solver

    @staticmethod
    def _reported_counters(solver, result) -> dict[str, float]:
        """The counter dict a backend reports for one solve call.

        Backends expose :meth:`~repro.sat.backend.IncrementalSatBackend.counters`
        with exactly the statistics they track; raw factories (the frozen
        legacy engine) fall back to the full CDCL counter dict.
        """
        counters = getattr(solver, "counters", None)
        if counters is not None:
            reported = counters()
            if reported:
                return dict(reported)
        return result.stats.as_dict()

    # ------------------------------------------------------------------
    # feasibility bounds
    # ------------------------------------------------------------------
    def minimum_pebbles_lower_bound(self) -> int:
        """A cheap lower bound on the budget of any strategy.

        Any node must be pebbled with all its dependencies pebbled, hence at
        least ``max_fanin + 1`` pebbles; the final configuration holds all
        outputs, hence at least ``|O|`` pebbles; and for a non-output DAG
        node to be cleaned up while an output stays pebbled the bound
        ``|O| + 1`` applies whenever some non-output node remains to be
        unpebbled after the last output is computed.

        In weighted mode the same arguments bound the *weight* budget: the
        moment a node ``v`` is (un)pebbled, ``v`` and all its dependencies
        are pebbled together (``w(v) + sum w(deps)``), and the final
        configuration weighs ``sum w(outputs)``.  Unit weights make both
        terms collapse to the unweighted bound, which stays sound for any
        weights >= 1.
        """
        stats = self.dag.statistics()
        bound = max(stats.max_fanin + 1, stats.num_outputs)
        if stats.num_nodes > stats.num_outputs:
            bound = max(bound, 2)
        if self.options.weighted:
            weights = validated_node_weights(self.dag)
            closure = max(
                weights[node]
                + sum(weights[dep] for dep in self.dag.dependencies(node))
                for node in self.dag.nodes()
            )
            final = sum(weights[output] for output in self.dag.outputs())
            bound = max(bound, closure, final)
        return bound

    def default_initial_steps(self, *, max_pebbles: int) -> int:
        """A safe lower bound on the number of transitions.

        With several moves allowed per transition, reaching the deepest
        output still needs at least ``depth`` transitions; with single-move
        transitions every node must be pebbled once and every non-output
        unpebbled once, giving ``2 |V| - |O|``.
        """
        stats = self.dag.statistics()
        if self.options.max_moves_per_step == 1:
            lower = 2 * stats.num_nodes - stats.num_outputs
        else:
            lower = stats.depth + (1 if stats.num_nodes > stats.num_outputs else 0)
        return max(1, lower)

    # ------------------------------------------------------------------
    # Problem 2: fixed number of steps
    # ------------------------------------------------------------------
    def solve_fixed(
        self,
        *,
        max_pebbles: int,
        num_steps: int,
        time_limit: float | None = None,
    ) -> tuple[Status, PebblingStrategy | None, AttemptRecord]:
        """Ask the SAT oracle whether a ``num_steps``-step strategy exists."""
        encoding = self._encoder.encode(max_pebbles=max_pebbles, num_steps=num_steps)
        solver = self._make_solver(encoding.cnf)
        started = time.monotonic()
        result = solver.solve(time_limit=time_limit, conflict_limit=self.conflict_limit)
        elapsed = time.monotonic() - started
        record = AttemptRecord(
            max_pebbles=max_pebbles,
            num_steps=num_steps,
            status=result.status,
            runtime=elapsed,
            conflicts=result.stats.conflicts,
            solver_stats=self._reported_counters(solver, result),
        )
        if not result.is_sat:
            return result.status, None, record
        assert result.model is not None
        configurations = encoding.configurations_from_model(result.model)
        strategy = PebblingStrategy(
            self.dag,
            configurations,
            max_moves_per_step=self.options.max_moves_per_step,
        )
        return result.status, strategy, record

    # ------------------------------------------------------------------
    # Problem 1: minimum steps for a pebble budget
    # ------------------------------------------------------------------
    def solve(
        self,
        max_pebbles: int,
        *,
        initial_steps: int | None = None,
        step_increment: int | None = None,
        step_schedule: str | None = None,
        strategy: SearchStrategy | str | None = None,
        max_steps: int | None = None,
        time_limit: float | None = None,
        step_floor: int | None = None,
        store=None,
        cubes=None,
        cube_jobs: int = 1,
        cube=None,
        board=None,
        cancel=None,
    ) -> PebblingResult:
        """Find a strategy with at most ``max_pebbles`` pebbles.

        With :attr:`EncodingOptions.weighted` set, ``max_pebbles`` is the
        *weight budget*: every configuration's total pebbled node weight is
        bounded instead of its pebble count, and the returned
        :attr:`PebblingResult.weight_used` reports the witness's peak
        weight.

        The number of steps starts at ``initial_steps`` (default: a structural
        lower bound) and evolves after every oracle answer until the search
        strategy is satisfied, ``max_steps`` is exceeded, or the time budget
        runs out.

        ``strategy`` selects how the step bound evolves — a
        :class:`~repro.pebbling.search.SearchStrategy` object or one of the
        names ``"linear"`` (the paper's Problem 1 loop, step-minimal),
        ``"geometric"`` (×1.5 after every UNSAT answer, fewer SAT calls) and
        ``"geometric-refine"`` (geometric overshoot, then binary refinement
        back down to the minimal ``K``).  The legacy ``step_schedule`` /
        ``step_increment`` keywords are still accepted; meaningless
        combinations (a non-linear schedule with ``step_increment``, or both
        ``strategy`` and ``step_schedule``) now raise instead of being
        silently ignored.

        ``step_floor`` is a *trusted* lower bound on the step count: the
        caller asserts no strategy with fewer transitions exists for this
        budget (it is combined with the structural floor, so a loose value
        is harmless, an unsound one breaks minimality certification).  The
        result store's warm-start extraction feeds certified bounds from
        neighbouring budgets through it.

        ``store`` is an opt-in :class:`~repro.store.ResultStore` (or any
        object with its ``get_pebble``/``warm_start``/``put_pebble``
        surface): an exact cache hit is returned without touching a SAT
        solver, a warm hit seeds the step bounds so the search starts near
        the answer, and any complete fresh result is written back.

        ``cubes`` (an int or a pre-built
        :class:`~repro.pebbling.cubes.CubeSet`) switches the search to
        cube-and-conquer: the instance is split into an exhaustive cube
        cover and the lanes race across ``cube_jobs`` processes, sharing
        bounds through the cross-process board (see
        :func:`~repro.pebbling.cubes.run_cube_search`).  ``cubes`` is
        deliberately *not* part of the store's cache key — a merged cube
        result answers the same question as a sequential search, so the
        two are interchangeable cache entries.

        ``cube`` / ``board`` / ``cancel`` are the lane-side half of that
        machinery (one cube's assumptions, this lane's board channel, and
        the first-winner cancellation token); callers other than
        :func:`run_cube_search` and the portfolio race normally only pass
        ``cancel``.
        """
        if max_pebbles < 1:
            raise PebblingError("max_pebbles must be >= 1")
        search = resolve_search_strategy(
            strategy, step_schedule=step_schedule, step_increment=step_increment
        )
        if search.needs_monotone_steps and self.options.forbid_idle_steps:
            # With idle steps forbidden, a K-step strategy cannot always be
            # padded to K+1 steps, so step-satisfiability is not monotone in
            # K (e.g. single-move strategies fix the parity of K): bracket
            # refinement would certify wrong minima and core ladders would
            # return wrong verdicts outright.
            raise PebblingError(
                f"the {search.name!r} schedule requires idle steps to be "
                "allowed (forbid_idle_steps makes step-satisfiability "
                "non-monotone); use the plain linear schedule instead"
            )
        # The cache key is built from the *requested* parameters, before any
        # defaulting or warm-start tightening below mutates them.
        request = {
            "budget": max_pebbles,
            "options": self.options,
            "search": search,
            "incremental": self.incremental,
            "initial_steps": initial_steps,
            "max_steps": max_steps,
            "step_floor": step_floor,
        }
        if (cube is not None or board is not None) and not self.incremental:
            raise PebblingError(
                "cube assumptions and the bound board need the incremental "
                "engine (they ride the assumption interface)"
            )
        if cube is not None and store is not None:
            # A lane's answer is conditioned on its cube — caching it under
            # the unsplit request key would poison the store.
            store = None
        if cubes is not None:
            from repro.pebbling.cubes import run_cube_search

            if store is not None:
                cached = store.get_pebble(self.dag, **request)
                if cached is not None:
                    return self._cache_answer(cached)
            with _trace.span(
                "cubes.run",
                dag=self.dag.name,
                budget=max_pebbles,
                backend=self.backend,
                schedule=search.name,
            ) as cube_span:
                merged = run_cube_search(
                    self,
                    max_pebbles,
                    cubes=cubes,
                    jobs=cube_jobs,
                    search=search,
                    initial_steps=initial_steps,
                    max_steps=max_steps,
                    time_limit=time_limit,
                    step_floor=step_floor,
                    cancel=cancel,
                )
                cube_span.set(
                    outcome=merged.outcome.value,
                    sat_calls=len(merged.attempts),
                    certified=merged.minimal,
                    shared_bound_hits=merged.shared_bound_hits,
                )
            if store is not None and merged.complete:
                store.put_pebble(self.dag, merged, **request)
            return merged
        token = resolve_token(cancel)
        warm = None
        if store is not None:
            cached = store.get_pebble(self.dag, **request)
            if cached is not None:
                return self._cache_answer(cached)
            _metrics.counter("repro_store_misses_total").inc()
            # Warm bounds are only safe for schedules whose answer is
            # invariant under a sound floor/ceiling: unit-increment linear
            # scans and geometric-refine converge to the same minimum from
            # any sound bracket, but overshooting schedules (geometric,
            # coarse linear) read their probe grid off the floor — a warm
            # floor would shift the grid and change (worsen) the returned
            # step count for the *same* request, and the ceiling clamp
            # could make their grid jump past the only in-budget bound.
            if search.certifies_minimality:
                warm = store.warm_start(
                    self.dag, budget=max_pebbles, options=self.options
                )
                if warm is not None and _trace.active():
                    _trace.event(
                        "store.warm",
                        dag=self.dag.name,
                        budget=max_pebbles,
                        step_floor=warm.step_floor,
                        step_ceiling=warm.step_ceiling,
                    )
        started = time.monotonic()
        result = PebblingResult(
            self.dag.name,
            max_pebbles,
            PebblingOutcome.TIMEOUT,
            weighted=self.options.weighted,
            backend=self.backend,
        )

        if max_pebbles < self.minimum_pebbles_lower_bound():
            result.outcome = PebblingOutcome.INFEASIBLE
            result.complete = True
            result.runtime = time.monotonic() - started
            if store is not None:
                store.put_pebble(self.dag, result, **request)
            return result

        if max_steps is None:
            # 4 |V|^2 is far beyond any minimal strategy we can extract and
            # only acts as a runaway guard.
            max_steps = max(16, 4 * self.dag.num_nodes * self.dag.num_nodes)
        floor = self.default_initial_steps(max_pebbles=max_pebbles)
        if step_floor is not None:
            floor = max(floor, step_floor)
        if warm is not None:
            if warm.step_floor is not None:
                floor = max(floor, warm.step_floor)
            if warm.step_ceiling is not None:
                # A cached witness at this (or a tighter) budget proves
                # ``step_ceiling`` transitions suffice, so the runaway guard
                # can shrink to it — overshooting schedules then jump
                # straight to a known-achievable bound.
                max_steps = min(max_steps, max(warm.step_ceiling, floor))
        initial = initial_steps or floor
        cursor = search.start(initial, min(floor, initial), max_steps)

        with _trace.span(
            "pebble.solve",
            dag=self.dag.name,
            budget=max_pebbles,
            schedule=search.name,
            backend=self.backend,
            incremental=self.incremental,
            cube=cube is not None,
        ) as solve_span:
            if self.incremental:
                outcome = self._solve_incremental(
                    result,
                    max_pebbles,
                    cursor,
                    max_steps,
                    time_limit,
                    started,
                    cube=cube,
                    board=board,
                    token=token,
                )
            else:
                outcome = self._solve_monolithic(
                    result, max_pebbles, cursor, max_steps, time_limit, started, token
                )
            solve_span.set(
                outcome=outcome.value,
                sat_calls=len(result.attempts),
                shared_bound_hits=result.shared_bound_hits,
            )
        result.outcome = outcome
        if not result.complete:
            # Preempted (time limit / spurious UNKNOWN): hand back the
            # search's progress so the caller gets an anytime answer — a
            # narrowed bound interval plus the best witness seen — instead
            # of a bare timeout.  Complete searches carry their answer in
            # full, so no snapshot is attached.
            result.partial = {
                "checkpoint": cursor.checkpoint(),
                "best_steps": result.num_steps,
                "sat_calls": len(result.attempts),
            }
            if token is not None and token.cancelled():
                result.partial["cancelled"] = True
        # Step-minimality certification: the schedule must close on the
        # minimum AND the scan must have started at (or below) a sound
        # floor.  GeometricRefine brackets from ``min(floor, initial)``, so
        # any starting point is certified; a linear scan seeded above the
        # floor only proves minimality among bounds >= its seed.
        result.minimal = (
            result.found
            and result.complete
            and search.certifies_minimality
            and (initial <= floor or isinstance(search, GeometricRefine))
        )
        result.runtime = time.monotonic() - started
        if store is not None and result.complete:
            store.put_pebble(self.dag, result, **request)
        return result

    def _strategy_budget(self, strategy: PebblingStrategy) -> int:
        """The budget a strategy consumes: pebble count, or peak weight."""
        if self.options.weighted:
            return int(strategy.max_weight)
        return strategy.max_pebbles

    def _remaining(self, time_limit: float | None, started: float) -> float | None:
        if time_limit is None:
            return None
        return time_limit - (time.monotonic() - started)

    def _cache_answer(self, cached: PebblingResult) -> PebblingResult:
        """Flag and report a store hit; the payload itself is untouched."""
        cached.from_cache = True
        _metrics.counter("repro_store_hits_total").inc()
        if _trace.active():
            _trace.event(
                "store.hit",
                dag=cached.dag_name,
                budget=cached.max_pebbles,
                outcome=cached.outcome.value,
                steps=cached.num_steps,
            )
        return cached

    @staticmethod
    def _keep_best(
        best: PebblingStrategy | None, candidate: PebblingStrategy
    ) -> PebblingStrategy:
        if best is None or candidate.num_steps <= best.num_steps:
            return candidate
        return best

    def _solve_monolithic(
        self,
        result: PebblingResult,
        max_pebbles: int,
        cursor: SearchCursor,
        max_steps: int,
        time_limit: float | None,
        started: float,
        token=None,
    ) -> PebblingOutcome:
        best: PebblingStrategy | None = None
        bound: int | None = cursor.bound
        while bound is not None and bound <= max_steps:
            if token is not None and token.cancelled():
                if _trace.active():
                    _trace.event("solve.cancelled", bound=bound, witness=best is not None)
                _metrics.counter("repro_cancellations_total").inc()
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.CANCELLED
                )
            remaining = self._remaining(time_limit, started)
            if remaining is not None and remaining <= 0:
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.TIMEOUT
                )
            with _trace.span(
                "sat.call", bound=bound, budget=max_pebbles, backend=self.backend
            ) as call_span:
                status, strategy, record = self.solve_fixed(
                    max_pebbles=max_pebbles, num_steps=bound, time_limit=remaining
                )
                call_span.set(verdict=status.value, conflicts=record.conflicts)
            result.attempts.append(record)
            _metrics.counter("repro_sat_calls_total").inc()
            _metrics.histogram("repro_sat_call_seconds").observe(record.runtime)
            if status is Status.SATISFIABLE and strategy is not None:
                best = self._keep_best(best, strategy)
                bound = cursor.advance(True)
            elif status is Status.UNKNOWN:
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.TIMEOUT
                )
            else:
                bound = cursor.advance(False)
        result.strategy = best
        result.complete = True
        if best is not None:
            return PebblingOutcome.SOLUTION
        return PebblingOutcome.STEP_LIMIT

    # -- incremental engine ------------------------------------------------
    def _solve_incremental(
        self,
        result: PebblingResult,
        max_pebbles: int,
        cursor: SearchCursor,
        max_steps: int,
        time_limit: float | None,
        started: float,
        *,
        cube=None,
        board=None,
        token=None,
    ) -> PebblingOutcome:
        """Drive the search over one live solver fed by the frame encoder.

        All pebbling clauses come from a single stateful
        :class:`PebblingEncoder`: ``extend_to`` emits the new frames,
        ``final_guard`` the per-bound activation literal, and
        ``drain_new_clauses`` hands exactly the fresh clauses to the
        incremental SAT backend.

        Core-aware cursors publish a *ladder* of bounds per query; their
        guards are assumed together (sound under step monotonicity, which
        ``solve()`` validated).  The query is then SAT exactly when the
        lowest laddered bound is feasible, and on UNSAT the backend's
        failed-assumption core names the guards its refutation used — the
        lowest surviving guard is a *harder* bound proven infeasible, so
        the cursor fast-forwards past everything up to it.

        In a cube-and-conquer lane, ``cube`` fixes early-frame pebble
        variables via extra assumptions, ``board`` is the lane's channel
        onto the shared bound board (polled before every query through
        :meth:`~repro.pebbling.search.SearchCursor.observe`, published to
        after every verdict), and ``token`` stops the lane once a sibling
        has certified the global answer.
        """
        encoder = PebblingEncoder(
            self.dag, max_pebbles=max_pebbles, options=self.options
        )
        solver = self._make_solver()
        guard_of_bound: dict[int, int] = {}
        bound_of_guard: dict[int, int] = {}
        negated: set[int] = set()
        cube_literals: list[int] = []
        cube_frame = 0
        if cube is not None and cube.assignments:
            cube_frame = max(step for _, step, _ in cube.assignments)
        best: PebblingStrategy | None = None
        bound: int | None = cursor.bound
        while bound is not None and bound <= max_steps:
            if token is not None and token.cancelled():
                if _trace.active():
                    _trace.event("solve.cancelled", bound=bound, witness=best is not None)
                _metrics.counter("repro_cancellations_total").inc()
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.CANCELLED
                )
            if board is not None:
                view = board.poll()
                if view.refuted is not None or view.known_sat is not None:
                    observed = cursor.observe(
                        refuted=view.refuted, known_sat=view.known_sat
                    )
                    if observed != bound:
                        # A sibling lane killed (or answered) this bound;
                        # observe() is idempotent, so one skip per fact.
                        result.shared_bound_hits += 1
                        _trace.event("board.hit", bound=bound, observed=observed)
                        bound = observed
                        continue
            remaining = self._remaining(time_limit, started)
            if remaining is not None and remaining <= 0:
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.TIMEOUT
                )
            # Refinement queries below the encoded frontier are sound here:
            # the later frames stay satisfiable by freezing the final
            # configuration (idle steps are always legal on this path —
            # solve() rejects refining strategies under forbid_idle_steps).
            ladder = [step for step in cursor.ladder() if step <= max_steps]
            if not ladder:
                ladder = [bound]
            encoder.extend_to(max(max(ladder), cube_frame))
            if cube_frame and not cube_literals:
                cube_literals = [
                    encoder.variable(node, step) * (1 if value else -1)
                    for node, step, value in cube.assignments
                ]
            for step in ladder:
                if step not in guard_of_bound:
                    guard = encoder.final_guard(step)
                    guard_of_bound[step] = guard
                    bound_of_guard[guard] = step
            # Highest bound first: the solver places assumptions in order,
            # so the refutation tends to bind at the *loosest* infeasible
            # guard it meets — and a core whose lowest bound is m > bound
            # proves every bound <= m infeasible at once.  (Ascending order
            # almost always binds at the probed bound itself, making the
            # core information-free; measured in EXPERIMENTS.md.)  Cube
            # literals ride along in every query of the lane.
            assumptions = cube_literals + [
                guard_of_bound[step] for step in sorted(ladder, reverse=True)
            ]
            for clause in encoder.drain_new_clauses():
                solver.add_clause(clause.literals)
            # Pebble and guard variables are re-mentioned by every later
            # frame and assumption ladder; backends with root-level variable
            # elimination must never eliminate them.  The loop deliberately
            # does NOT call solver.simplify() between bounds: explicit
            # inter-bound passes measured a net slowdown on this suite —
            # BVE trades the encoder's short structured clauses for fatter
            # resolvents over the (frozen) pebble variables, and the
            # per-bound queries are too short to amortise the swap (see
            # EXPERIMENTS.md, schema v10).  The solver's own
            # conflict-counted inprocessing trigger still fires on long
            # queries, which is why the freeze discipline matters here.
            freeze = getattr(solver, "freeze", None)
            if freeze is not None:
                fresh_variables = encoder.drain_new_named_variables()
                if fresh_variables:
                    freeze(fresh_variables)
            call_started = time.monotonic()
            # With a shared board or a cancellation token, long queries run
            # in growing time slices so the lane reacts mid-call: a slice
            # that expires polls the token and the board, then re-issues
            # the same query.  The native incremental engine resumes from
            # its learned clauses, so a retry costs almost nothing; for
            # backends that restart from scratch the doubling bounds the
            # total rework by the cost of the final slice.
            chunked = (
                (board is not None or token is not None)
                and self.conflict_limit is None
            )
            slice_budget = _CANCEL_POLL_SLICE
            interrupted = False
            probed = bound
            core: list[int] | None = None
            with _trace.span(
                "sat.call",
                bound=probed,
                budget=max_pebbles,
                backend=self.backend,
                ladder=len(ladder),
            ) as call_span:
                while True:
                    call_limit = remaining
                    if chunked:
                        call_limit = (
                            slice_budget
                            if remaining is None
                            else min(remaining, slice_budget)
                        )
                    sat_result = solver.solve(
                        assumptions,
                        time_limit=call_limit,
                        conflict_limit=self.conflict_limit,
                    )
                    if not chunked or not sat_result.is_unknown:
                        break
                    remaining = self._remaining(time_limit, started)
                    if remaining is not None and remaining <= 0:
                        break  # genuine timeout, handled as UNKNOWN below
                    if token is not None and token.cancelled():
                        interrupted = True
                        break
                    if board is not None:
                        view = board.poll()
                        if view.refuted is not None or view.known_sat is not None:
                            observed = cursor.observe(
                                refuted=view.refuted, known_sat=view.known_sat
                            )
                            if observed != bound:
                                # A sibling settled this bound while we were
                                # inside the query: abandon the call.
                                result.shared_bound_hits += 1
                                _trace.event(
                                    "board.hit", bound=probed, observed=observed
                                )
                                bound = observed
                                interrupted = True
                                break
                    slice_budget *= 2
                elapsed = time.monotonic() - call_started
                if (
                    not interrupted
                    and sat_result.status is Status.UNSATISFIABLE
                    and len(assumptions) > 1
                ):
                    # The span charges core extraction to the call that paid
                    # for it (the minimising backend probes the solver here).
                    extract = getattr(solver, "failed_assumptions", None)
                    core = extract() if extract is not None else list(assumptions)
                    call_span.set(core_size=len(core))
                call_span.set(
                    verdict=sat_result.status.value,
                    conflicts=sat_result.stats.conflicts,
                    interrupted=interrupted,
                )
                result.attempts.append(
                    AttemptRecord(
                        max_pebbles=max_pebbles,
                        num_steps=probed,
                        status=sat_result.status,
                        runtime=elapsed,
                        conflicts=sat_result.stats.conflicts,
                        solver_stats=self._reported_counters(solver, sat_result),
                    )
                )
            _metrics.counter("repro_sat_calls_total").inc()
            _metrics.histogram("repro_sat_call_seconds").observe(elapsed)
            if interrupted:
                continue
            if sat_result.is_sat:
                assert sat_result.model is not None
                configurations = encoder.configurations_from_model(
                    sat_result.model, num_steps=bound
                )
                best = self._keep_best(
                    best,
                    PebblingStrategy(
                        self.dag,
                        configurations,
                        max_moves_per_step=self.options.max_moves_per_step,
                    ),
                )
                if board is not None and best is not None:
                    # A witness under cube assumptions is a witness for
                    # the whole instance (the cube only *restricts* it).
                    board.publish_sat(best.num_steps)
                    if token is not None:
                        view = board.poll()
                        if (
                            view.known_sat is not None
                            and view.refuted is not None
                            and view.refuted >= view.known_sat - 1
                        ):
                            # Pooled refutations meet the shared witness:
                            # the global minimum is pinned, stop every
                            # sibling lane still probing.
                            token.cancel()
                bound = cursor.advance_core(True)
            elif sat_result.is_unknown:
                result.strategy = best
                return (
                    PebblingOutcome.SOLUTION if best else PebblingOutcome.TIMEOUT
                )
            else:
                refuted = bound
                # Until the core proves otherwise, a cube lane's refutation
                # is only valid under its cube assumptions.
                core_used_cube = bool(cube_literals)
                if core is not None:
                    # Backends without real core extraction (the external
                    # DIMACS path, raw factories) degrade to the trivial
                    # full-assumption core — sound, never faster.  The core
                    # itself was extracted inside the ``sat.call`` span.
                    core_bounds = [
                        bound_of_guard[literal]
                        for literal in core
                        if literal in bound_of_guard
                    ]
                    if cube_literals:
                        lane_literals = set(cube_literals)
                        core_used_cube = any(
                            literal in lane_literals for literal in core
                        )
                    if cube_literals and not core_bounds and core:
                        # The refutation used no final-configuration guard:
                        # the cube itself is contradictory at every bound.
                        # Close the lane for its whole range so the board's
                        # min-over-cubes aggregation never waits on it.
                        if board is not None:
                            board.publish_refuted(max_steps)
                        result.strategy = best
                        result.complete = True
                        return PebblingOutcome.STEP_LIMIT
                    # An empty core means the frames alone are contradictory
                    # (impossible for this encoding, but a backend bug must
                    # fail towards "only the probed bound is refuted").
                    refuted = min(core_bounds) if core_bounds else bound
                if board is not None and cube_literals and core_used_cube:
                    # The core leaned on the cube, but the refutation is
                    # often cube-free anyway: re-ask the same bound without
                    # the cube literals.  The incremental engine answers
                    # from its learned clauses (measured at milliseconds),
                    # and the slice cap bounds the rare unlucky recheck.
                    # UNSAT promotes the bound to the instance-global row;
                    # SAT hands this lane a witness for the whole instance
                    # that its own cube excludes.
                    recheck_limit = max(_CANCEL_POLL_SLICE, 0.5 * elapsed)
                    remaining = self._remaining(time_limit, started)
                    if remaining is not None:
                        recheck_limit = min(recheck_limit, remaining)
                    if recheck_limit > 0:
                        recheck = solver.solve(
                            [guard_of_bound[refuted]],
                            time_limit=recheck_limit,
                            conflict_limit=self.conflict_limit,
                        )
                        if recheck.is_sat:
                            assert recheck.model is not None
                            configurations = encoder.configurations_from_model(
                                recheck.model, num_steps=refuted
                            )
                            best = self._keep_best(
                                best,
                                PebblingStrategy(
                                    self.dag,
                                    configurations,
                                    max_moves_per_step=(
                                        self.options.max_moves_per_step
                                    ),
                                ),
                            )
                            board.publish_refuted(refuted)
                            if best is not None:
                                board.publish_sat(best.num_steps)
                                if token is not None:
                                    view = board.poll()
                                    if (
                                        view.known_sat is not None
                                        and view.refuted is not None
                                        and view.refuted >= view.known_sat - 1
                                    ):
                                        token.cancel()
                            # The lane's own cube stays refuted through
                            # ``refuted``; with the adopted witness there
                            # too, the cursor closes unless the bracket
                            # still has room below.
                            bound = cursor.advance_core(False, refuted)
                            if bound is not None:
                                bound = cursor.observe(known_sat=refuted)
                            continue
                        if not recheck.is_unknown:
                            core_used_cube = False
                # Every guard at or below the refuted bound will never be
                # assumed again.  Asserting the negations as units lets the
                # solver simplify the stale final-configuration clauses away
                # at level 0 instead of dragging them through every later
                # propagation.
                for step in sorted(guard_of_bound):
                    if step <= refuted and step not in negated:
                        solver.add_clause([-guard_of_bound[step]])
                        negated.add(step)
                if board is not None:
                    # Valid under this lane's assumptions; the channel
                    # routes it to the per-cube row — or straight to the
                    # global row when the UNSAT core used no cube literal
                    # (the proof never touched the split, so it holds for
                    # the unsplit instance and every sibling can skip the
                    # bound instead of re-proving it).
                    board.publish_refuted(
                        refuted, assumption_free=not core_used_cube
                    )
                bound = cursor.advance_core(False, refuted)
        result.strategy = best
        result.complete = True
        if best is not None:
            return PebblingOutcome.SOLUTION
        return PebblingOutcome.STEP_LIMIT

    # ------------------------------------------------------------------
    # Table I outer loop: minimise the number of pebbles
    # ------------------------------------------------------------------
    def minimize_pebbles(
        self,
        *,
        upper_bound: int | None = None,
        lower_bound: int | None = None,
        timeout_per_budget: float | None = 120.0,
        max_steps: int | None = None,
        step_increment: int | None = None,
        step_schedule: str | None = None,
        strategy: SearchStrategy | str | None = None,
        stop_after_failures: int = 1,
        warm_start: bool = True,
        store=None,
        cubes=None,
        cube_jobs: int = 1,
    ) -> tuple[PebblingResult | None, list[PebblingResult]]:
        """Find the smallest pebble budget solvable within a per-budget timeout.

        Mirrors the paper's Table I methodology: "the number of pebbles
        corresponds to the minimum one for which the solver could find a
        solution within 2 minutes".  Budgets are tried in descending order
        starting just below ``upper_bound`` (default: the peak of the eager
        Bennett baseline, whose strategy also seeds the result so the scan
        never returns empty-handed); the scan stops after
        ``stop_after_failures`` consecutive budgets without a solution.

        With ``warm_start`` (default) each budget starts its step search at
        the step count of the previously found strategy — the minimum step
        count can only grow as the budget shrinks, so this skips provably
        fruitless SAT calls; disable it to obtain step-minimal answers per
        budget with the linear schedule.

        In weighted mode the scan runs over *weight budgets* (the eager
        Bennett baseline's peak weight anchors the upper bound) and returns
        the smallest solvable weight budget instead of pebble count.

        ``store`` (an opt-in :class:`~repro.store.ResultStore`) is threaded
        into every per-budget search, so a repeated scan over the same DAG
        answers from the cache and a partial scan warm-starts its
        neighbours.

        ``cubes`` / ``cube_jobs`` switch every per-budget step search to
        cube-and-conquer (see :meth:`solve`); the scan itself stays
        sequential over budgets, so the parallelism lands exactly on the
        hard per-budget searches the Table I methodology times out on.

        Returns ``(best_result, all_results)``.
        """
        # Resolve (and validate) the search schedule once for the whole scan.
        search = resolve_search_strategy(
            strategy, step_schedule=step_schedule, step_increment=step_increment
        )
        baseline = eager_bennett_strategy(self.dag)
        baseline_budget = self._strategy_budget(baseline)
        if upper_bound is None:
            upper_bound = baseline_budget
        if lower_bound is None:
            lower_bound = self.minimum_pebbles_lower_bound()
        if upper_bound < lower_bound:
            upper_bound = lower_bound
        all_results: list[PebblingResult] = []
        best: PebblingResult | None = None
        steps_hint: int | None = None
        first_budget = upper_bound
        if upper_bound >= baseline_budget:
            # The eager Bennett strategy is already a witness for the loosest
            # budget; no SAT call needed for it.
            best = PebblingResult(
                self.dag.name,
                upper_bound,
                PebblingOutcome.SOLUTION,
                strategy=baseline,
                weighted=self.options.weighted,
            )
            steps_hint = baseline.num_steps
            first_budget = baseline_budget - 1
        failures = 0
        for budget in range(first_budget, lower_bound - 1, -1):
            outcome = self.solve(
                budget,
                time_limit=timeout_per_budget,
                max_steps=max_steps,
                strategy=search,
                initial_steps=steps_hint if warm_start else None,
                store=store,
                cubes=cubes,
                cube_jobs=cube_jobs,
            )
            all_results.append(outcome)
            if outcome.found:
                best = outcome
                failures = 0
                if warm_start and outcome.num_steps is not None:
                    steps_hint = max(steps_hint or 1, outcome.num_steps)
            else:
                failures += 1
                if failures >= stop_after_failures:
                    break
        return best, all_results


# ---------------------------------------------------------------------------
# module-level conveniences
# ---------------------------------------------------------------------------
def pebble_dag(
    dag: Dag,
    max_pebbles: int,
    *,
    options: EncodingOptions | None = None,
    time_limit: float | None = None,
    backend: str | None = None,
    **solve_kwargs,
) -> PebblingResult:
    """One-shot helper: pebble ``dag`` with at most ``max_pebbles`` pebbles.

    ``backend`` selects the incremental-SAT backend by registry spec (see
    :mod:`repro.sat.backend`); the default is the native CDCL engine.
    """
    solver = ReversiblePebblingSolver(dag, options=options, backend=backend)
    return solver.solve(max_pebbles, time_limit=time_limit, **solve_kwargs)


def minimize_pebbles(
    dag: Dag,
    *,
    options: EncodingOptions | None = None,
    timeout_per_budget: float | None = 120.0,
    backend: str | None = None,
    **kwargs,
) -> tuple[PebblingResult | None, list[PebblingResult]]:
    """One-shot helper mirroring the Table I methodology.

    ``backend`` selects the incremental-SAT backend by registry spec (see
    :mod:`repro.sat.backend`) for every per-budget search of the scan.
    """
    solver = ReversiblePebblingSolver(dag, options=options, backend=backend)
    return solver.minimize_pebbles(timeout_per_budget=timeout_per_budget, **kwargs)
