"""Bennett-style baseline pebbling strategies.

Two baselines are provided:

* :func:`bennett_strategy` -- Bennett's original strategy [Bennett 1989]
  as described in Section II-A of the paper: compute every node in
  topological order, then uncompute every non-output node in reverse
  topological order.  It uses the minimum possible number of moves
  (``2·|V| - |O|``) and the maximum number of pebbles (``|V|``).

* :func:`eager_bennett_strategy` -- the space-optimised variant obtained by
  reordering (Fig. 3(b)): still computes every node exactly once (same
  number of moves) but releases a non-output node as soon as none of its
  dependents will ever need it again, which lowers the peak pebble count
  without increasing the move count.  This is the realistic baseline a
  designer would use without a pebbling solver, and the one the Table I
  comparison harness reports as "Bennett".
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PebblingError
from repro.dag.graph import Dag, NodeId
from repro.pebbling.strategy import PebbleMove, PebblingStrategy


def bennett_strategy(dag: Dag, *, order: Sequence[NodeId] | None = None) -> PebblingStrategy:
    """Bennett's compute-all-then-uncompute strategy.

    ``order`` overrides the compute order (it must be a topological order of
    the DAG); uncomputation uses the reverse of the same order.
    """
    topo = _resolve_order(dag, order)
    outputs = set(dag.outputs())
    moves = [PebbleMove(node, pebble=True) for node in topo]
    moves.extend(
        PebbleMove(node, pebble=False) for node in reversed(topo) if node not in outputs
    )
    return PebblingStrategy.from_moves(dag, moves)


def eager_bennett_strategy(
    dag: Dag, *, order: Sequence[NodeId] | None = None
) -> PebblingStrategy:
    """Bennett's strategy with eager release of pebbles (reordering only).

    Every node is still computed exactly once, so the move count is the
    Bennett minimum ``2·|V| - |O|``; but after each computation any node
    that has become *finalised-irrelevant* is uncomputed immediately.

    A non-output node ``v`` may be released once every dependent of ``v``
    is *finalised*: an output dependent is finalised when it has been
    computed, a non-output dependent is finalised when it has been
    uncomputed again.  Releasing earlier would make a later (un)computation
    of a dependent illegal.
    """
    topo = _resolve_order(dag, order)
    outputs = set(dag.outputs())
    moves: list[PebbleMove] = []
    computed: set[NodeId] = set()
    released: set[NodeId] = set()

    def finalised(node: NodeId) -> bool:
        if node in outputs:
            return node in computed
        return node in released

    def release_available() -> None:
        progress = True
        while progress:
            progress = False
            for candidate in list(computed):
                if candidate in outputs or candidate in released:
                    continue
                if all(finalised(dependent) for dependent in dag.dependents(candidate)):
                    moves.append(PebbleMove(candidate, pebble=False))
                    released.add(candidate)
                    computed.discard(candidate)
                    progress = True

    for node in topo:
        moves.append(PebbleMove(node, pebble=True))
        computed.add(node)
        release_available()

    # Any remaining non-output node is released in reverse order, exactly as
    # in the plain Bennett strategy (their dependencies are still pebbled).
    for node in reversed(topo):
        if node in outputs or node in released:
            continue
        moves.append(PebbleMove(node, pebble=False))
        released.add(node)
        computed.discard(node)

    return PebblingStrategy.from_moves(dag, moves)


def _resolve_order(dag: Dag, order: Sequence[NodeId] | None) -> list[NodeId]:
    if order is None:
        return dag.topological_order()
    order = list(order)
    if sorted(map(str, order)) != sorted(map(str, dag.nodes())):
        raise PebblingError("order must be a permutation of the DAG nodes")
    seen: set[NodeId] = set()
    for node in order:
        for dependency in dag.dependencies(node):
            if dependency not in seen:
                raise PebblingError(
                    f"order is not topological: {node!r} appears before its "
                    f"dependency {dependency!r}"
                )
        seen.add(node)
    return order
