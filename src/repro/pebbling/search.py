"""Step-bound search strategies for the pebbling solver (Problem 1).

The paper's Problem 1 asks for the minimum number of steps ``K`` within a
pebble budget.  The solver probes the SAT oracle at a sequence of step
bounds; *how* that sequence evolves is a pluggable :class:`SearchStrategy`:

* :class:`LinearSearch` — the paper's loop: try ``K, K + d, K + 2d, ...``
  until the first SAT answer, which (with ``d = 1`` and a valid lower
  bound) is step-minimal;
* :class:`GeometricSearch` — multiply the bound after every UNSAT answer;
  far fewer SAT calls on tightly constrained instances, at the price of
  step minimality (used by the Fig. 5 budget sweeps);
* :class:`GeometricRefine` — overshoot geometrically until the first SAT
  answer, then binary-search the interval between the largest known-UNSAT
  bound and the SAT bound down to the minimal ``K``.  Combined with the
  incremental engine this reuses one live solver (and its learned clauses)
  across the whole search, giving geometric's call count *and* linear's
  minimality.

Core-guided variants
--------------------
When idle steps are allowed, step-satisfiability is *monotone* in ``K``
(a ``K``-step strategy pads to ``K+1`` with an idle step), so assuming the
final-configuration guards of a whole **ladder** of bounds
``{b, b+1, ..., t}`` at once is satisfiable exactly when the lowest bound
``b`` is.  On UNSAT, the backend's failed-assumption core
(:meth:`repro.sat.backend.IncrementalSatBackend.failed_assumptions`) names
the guards its refutation actually used; if the lowest surviving guard is
``m > b``, the refutation proves the *harder* bound ``m`` infeasible, and
monotonicity extends that to every bound ``<= m`` — the search skips them
without ever querying.  :class:`LinearSearch` with ``core_lookahead > 0``
fast-forwards past bounds named in the core; :class:`GeometricRefine` with
``core_guided=True`` tightens the refinement bracket's lower edge the same
way (its ladder spans the whole open bracket, so a single good core can
collapse several binary-search levels).  Both remain certificate-sound:
every skipped bound is proven UNSAT by the core, never guessed.

Strategies are immutable, picklable configuration objects; each search
obtains a private :class:`SearchCursor` via :meth:`SearchStrategy.start`,
so one strategy instance can drive many searches (e.g. every budget of a
``minimize_pebbles`` scan) concurrently.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import PebblingError


class SearchCursor(ABC):
    """Mutable state of one step-bound search.

    ``bound`` is the step count to query next; :meth:`advance` consumes the
    SAT/UNSAT answer for the current bound and returns the next bound, or
    ``None`` when the search is complete (the engine then reports the best
    solution seen so far).

    Core-aware cursors additionally publish a :meth:`ladder` of bounds to
    co-assume with ``bound`` and accept the core's verdict through
    :meth:`advance_core`; the default implementations make every cursor a
    plain single-bound search.
    """

    bound: int

    @abstractmethod
    def advance(self, sat: bool) -> int | None:
        """Record the oracle's answer for ``bound``; return the next bound."""

    def ladder(self) -> list[int]:
        """Step bounds whose guards the next query should assume together.

        Always starts at ``bound``; only sound to widen when
        step-satisfiability is monotone (idle steps allowed), which the
        solver enforces via :attr:`SearchStrategy.needs_monotone_steps`.
        """
        return [self.bound]

    def advance_core(self, sat: bool, refuted: int | None = None) -> int | None:
        """Like :meth:`advance`, with the core's strongest refuted bound.

        On UNSAT, ``refuted`` is the largest bound the failed-assumption
        core proves infeasible (``>= bound``; by monotonicity every bound
        up to it is infeasible too).  Cursors that ignore cores fall back
        to :meth:`advance`.
        """
        del refuted
        return self.advance(sat)

    def observe(
        self, refuted: int | None = None, known_sat: int | None = None
    ) -> int | None:
        """Fold externally certified bounds in; return the next bound to probe.

        Cube-and-conquer lanes poll a shared bound board between SAT calls
        (see :mod:`repro.pebbling.cubes`); ``refuted`` is the largest bound
        another lane proved infeasible *for the whole instance* and
        ``known_sat`` the smallest bound any lane witnessed satisfiable.
        Both facts are globally sound (refutations transfer by exhaustive
        cube cover, witnesses by step monotonicity), so the cursor may skip
        every bound they settle.  Returns ``None`` when the external facts
        alone finish this search — nothing below the shared witness is left
        to probe — and must be *idempotent*: re-observing the same facts
        returns the same bound, so the caller can poll freely.

        The base implementation covers single-bound cursors: an external
        refutation at or past ``bound`` fast-forwards exactly like an UNSAT
        answer with that core, and a witness at or below ``bound`` ends the
        search (this lane cannot improve on it).
        """
        if known_sat is not None and known_sat <= self.bound:
            return None
        if refuted is not None and refuted >= self.bound:
            return self.advance_core(False, refuted)
        return self.bound

    def checkpoint(self) -> dict[str, int | None]:
        """Snapshot of search progress, for anytime partial answers.

        ``next_bound`` is the bound the search would query next;
        ``refuted_through`` the largest bound proven UNSAT so far (``None``
        when no bound has been refuted); ``known_sat`` the smallest bound
        known satisfiable (``None`` until one is).  A preempted search
        reports this snapshot so a retry — or a human — can resume from the
        narrowed interval instead of starting over.
        """
        return {"next_bound": self.bound, "refuted_through": None, "known_sat": None}


class SearchStrategy(ABC):
    """Immutable configuration of a step-bound search schedule."""

    #: Short name used by the CLI and result summaries.
    name: str = "abstract"

    @property
    def signature(self) -> str:
        """Canonical ``name:parameters`` string identifying the schedule.

        Two strategy objects with the same signature drive identical
        searches, so the result store uses it as part of its cache key.
        """
        return self.name

    @property
    def certifies_minimality(self) -> bool:
        """``True`` when a *complete* search proves its step count minimal.

        Holds for the linear schedule with unit increment and for
        geometric-refine (whose bracket closes on the minimum); geometric
        overshoot and coarse linear increments may stop above the minimum.
        Core-guided skips preserve certification — every skipped bound is
        refuted by an UNSAT core, not guessed.
        """
        return False

    @property
    def needs_monotone_steps(self) -> bool:
        """``True`` when the schedule is only sound with idle steps allowed.

        Bracket refinement and core ladders both rely on a ``K``-step
        strategy padding to ``K+1`` steps; the solver rejects such
        schedules when :attr:`EncodingOptions.forbid_idle_steps` breaks
        that monotonicity.
        """
        return False

    @abstractmethod
    def start(self, initial: int, floor: int, ceiling: int | None = None) -> SearchCursor:
        """Begin a search at ``initial`` steps.

        ``floor`` is a *sound* structural lower bound on the step count
        (every strategy may assume no solution exists below it); refining
        strategies use it as the lower bracket when the very first query is
        already satisfiable.  ``ceiling`` is the caller's ``max_steps``
        budget: overshooting strategies clamp their growth to it so a
        solution just below the budget is not jumped over.
        """


class _LinearCursor(SearchCursor):
    def __init__(
        self,
        initial: int,
        step_increment: int,
        lookahead: int = 0,
        ceiling: int | None = None,
    ):
        self.bound = initial
        self._increment = step_increment
        self._lookahead = lookahead
        self._ceiling = ceiling
        self._refuted: int | None = None

    def ladder(self) -> list[int]:
        if self._lookahead <= 0:
            return [self.bound]
        top = self.bound + self._lookahead
        if self._ceiling is not None:
            top = min(top, self._ceiling)
        return list(range(self.bound, max(self.bound, top) + 1))

    def advance(self, sat: bool) -> int | None:
        return self.advance_core(sat, None)

    def advance_core(self, sat: bool, refuted: int | None = None) -> int | None:
        if sat:
            return None
        # Fast-forward past every bound the core proved infeasible.
        unsat_through = self.bound if refuted is None else max(self.bound, refuted)
        self._refuted = unsat_through
        self.bound = unsat_through + self._increment
        return self.bound

    def checkpoint(self) -> dict[str, int | None]:
        return {"next_bound": self.bound, "refuted_through": self._refuted, "known_sat": None}


@dataclass(frozen=True)
class LinearSearch(SearchStrategy):
    """Add ``step_increment`` after every UNSAT answer (paper's Problem 1).

    With ``core_lookahead > 0`` each query co-assumes the guards of the
    next ``core_lookahead`` bounds and fast-forwards past every bound the
    UNSAT core refutes (see the module docstring); requires idle steps to
    be allowed.
    """

    step_increment: int = 1
    core_lookahead: int = 0
    name = "linear"

    def __post_init__(self) -> None:
        if self.step_increment < 1:
            raise PebblingError("step_increment must be >= 1")
        if self.core_lookahead < 0:
            raise PebblingError("core_lookahead must be >= 0")

    @property
    def signature(self) -> str:
        signature = f"linear:{self.step_increment}"
        if self.core_lookahead:
            signature += f":core{self.core_lookahead}"
        return signature

    @property
    def certifies_minimality(self) -> bool:
        return self.step_increment == 1

    @property
    def needs_monotone_steps(self) -> bool:
        return self.core_lookahead > 0

    def start(self, initial: int, floor: int, ceiling: int | None = None) -> SearchCursor:
        return _LinearCursor(initial, self.step_increment, self.core_lookahead, ceiling)


def _grow(bound: int, factor: float) -> int:
    return max(bound + 1, int(bound * factor))


class _GeometricCursor(SearchCursor):
    def __init__(self, initial: int, factor: float):
        self.bound = initial
        self._factor = factor
        self._refuted: int | None = None

    def advance(self, sat: bool) -> int | None:
        if sat:
            return None
        self._refuted = self.bound
        self.bound = _grow(self.bound, self._factor)
        return self.bound

    def checkpoint(self) -> dict[str, int | None]:
        return {"next_bound": self.bound, "refuted_through": self._refuted, "known_sat": None}


@dataclass(frozen=True)
class GeometricSearch(SearchStrategy):
    """Multiply the bound by ``factor`` after every UNSAT answer."""

    factor: float = 1.5
    name = "geometric"

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise PebblingError("geometric factor must be > 1")

    @property
    def signature(self) -> str:
        return f"geometric:{self.factor:g}"

    def start(self, initial: int, floor: int, ceiling: int | None = None) -> SearchCursor:
        return _GeometricCursor(initial, self.factor)


class _GeometricRefineCursor(SearchCursor):
    """Geometric overshoot, then binary refinement down to the minimum.

    Invariants: every bound below ``_lo`` is known (or structurally
    guaranteed) UNSAT; ``_hi`` is the smallest known-SAT bound (``None``
    during the overshoot phase).  The search ends when the bracket closes
    (``_lo == _hi``).  Soundness of both the bracket and the ceiling
    cut-off relies on step-satisfiability being monotone in K (a K-step
    strategy pads to K+1 with an idle step), which is why the solver
    rejects this strategy when idle steps are forbidden.

    Overshoot growth is clamped to ``ceiling``: an UNSAT answer *at* the
    ceiling proves (by monotonicity) that no bound within the budget works,
    so the search stops definitively instead of jumping past a feasible
    bound just below the budget.
    """

    def __init__(
        self,
        initial: int,
        floor: int,
        factor: float,
        ceiling: int | None,
        core_guided: bool = False,
        lookahead: int = 0,
    ):
        self.bound = initial
        self._lo = min(floor, initial)
        self._hi: int | None = None
        self._factor = factor
        self._ceiling = ceiling
        self._core_guided = core_guided
        self._lookahead = lookahead

    def ladder(self) -> list[int]:
        if not self._core_guided:
            return [self.bound]
        if self._hi is not None:
            # Refinement phase: span the whole open bracket, so the core
            # can push the lower edge anywhere up to ``hi - 1``.
            return list(range(self.bound, self._hi))
        top = self.bound + self._lookahead
        if self._ceiling is not None:
            top = min(top, self._ceiling)
        return list(range(self.bound, max(self.bound, top) + 1))

    def advance(self, sat: bool) -> int | None:
        return self.advance_core(sat, None)

    def advance_core(self, sat: bool, refuted: int | None = None) -> int | None:
        if sat:
            self._hi = self.bound
        else:
            unsat_through = self.bound if refuted is None else max(self.bound, refuted)
            self._lo = unsat_through + 1
            if self._hi is None:
                if self._ceiling is not None and unsat_through >= self._ceiling:
                    return None  # UNSAT at the ceiling: nothing in budget works
                self.bound = _grow(unsat_through, self._factor)
                if self._ceiling is not None:
                    self.bound = min(self.bound, self._ceiling)
                return self.bound
        if self._lo >= self._hi:
            return None
        self.bound = (self._lo + self._hi) // 2
        return self.bound

    def observe(
        self, refuted: int | None = None, known_sat: int | None = None
    ) -> int | None:
        # External facts tighten the bracket exactly like own answers: a
        # shared refutation raises ``_lo``, a shared witness lowers ``_hi``
        # even though this cursor holds no model for it — when the bracket
        # then closes without an own witness, the *search* is complete (no
        # solution below the shared bound exists in this lane's subspace)
        # and the merge layer pairs that certificate with the witnessing
        # lane's strategy.
        if refuted is not None and refuted + 1 > self._lo:
            self._lo = refuted + 1
        if known_sat is not None and (self._hi is None or known_sat < self._hi):
            self._hi = known_sat
        if self._hi is not None:
            if self._lo >= self._hi:
                return None
            # Only re-aim when the current probe fell out of the bracket;
            # keeping an in-bracket bound stable makes observation
            # idempotent (the caller polls between every SAT call).
            if not self._lo <= self.bound < self._hi:
                self.bound = (self._lo + self._hi) // 2
            return self.bound
        if self._ceiling is not None and self._lo > self._ceiling:
            return None  # everything within the step budget is refuted
        if self.bound < self._lo:
            self.bound = self._lo
            if self._ceiling is not None:
                self.bound = min(self.bound, self._ceiling)
        return self.bound

    def checkpoint(self) -> dict[str, int | None]:
        # ``_lo`` starts at the structural floor, so ``_lo - 1`` is always a
        # sound "everything below is infeasible" statement.
        return {"next_bound": self.bound, "refuted_through": self._lo - 1, "known_sat": self._hi}


@dataclass(frozen=True)
class GeometricRefine(SearchStrategy):
    """Overshoot geometrically, then binary-search down to the minimal K.

    With ``core_guided=True`` every query co-assumes a ladder of bound
    guards (``core_lookahead`` wide during overshoot, the whole bracket
    during refinement) and the UNSAT core's strongest refuted bound
    tightens the bracket's lower edge — same certified minimum, never more
    SAT calls (the bracket can only shrink faster).
    """

    factor: float = 1.5
    core_guided: bool = False
    core_lookahead: int = 4
    name = "geometric-refine"

    def __post_init__(self) -> None:
        if self.factor <= 1.0:
            raise PebblingError("geometric factor must be > 1")
        if self.core_lookahead < 0:
            raise PebblingError("core_lookahead must be >= 0")

    @property
    def signature(self) -> str:
        signature = f"geometric-refine:{self.factor:g}"
        if self.core_guided:
            signature += f":core{self.core_lookahead}"
        return signature

    @property
    def certifies_minimality(self) -> bool:
        return True

    @property
    def needs_monotone_steps(self) -> bool:
        return True

    def start(self, initial: int, floor: int, ceiling: int | None = None) -> SearchCursor:
        return _GeometricRefineCursor(
            initial,
            floor,
            self.factor,
            ceiling,
            core_guided=self.core_guided,
            lookahead=self.core_lookahead,
        )


class _StripedClimbCursor(SearchCursor):
    """Climb the ``lane``-th of the next ``lanes`` unsettled rungs.

    Invariants mirror the refine cursor: every bound below ``_lo`` is
    settled for this cursor's subspace, ``_hi`` is the smallest bound
    known satisfiable anywhere.  The next probe is
    ``_lo + (lane + _lo) % lanes``: for a fixed frontier the ``lanes``
    sibling cursors aim at ``lanes`` *distinct* rungs (the offsets form a
    permutation), so a cube-and-conquer team divides the UNSAT ladder
    instead of each lane re-proving every rung, and the offset rotates
    with the frontier so no rung is permanently owned by a lane that died
    early (a vacuous cube) or fell behind.  Step-monotonicity makes an
    UNSAT answer above ``_lo`` settle the skipped rungs below it for
    free, and caps the probe at ``_hi - 1`` — never past the bracket, so
    the schedule issues no loose-bound SAT probes (measured ruinously
    expensive in this encoding; see EXPERIMENTS.md).
    """

    def __init__(self, initial: int, lane: int, lanes: int, ceiling: int | None):
        self._lo = initial
        self._hi: int | None = None
        self._lanes = max(1, lanes)
        self._lane = lane % self._lanes
        self._ceiling = ceiling
        self.bound = self._aim()

    def _aim(self) -> int:
        target = self._lo + (self._lane + self._lo) % self._lanes
        if self._hi is not None:
            target = min(target, self._hi - 1)
        if self._ceiling is not None:
            target = min(target, self._ceiling)
        return max(target, self._lo)

    def _exhausted(self) -> bool:
        if self._hi is not None and self._lo >= self._hi:
            return True
        return self._ceiling is not None and self._lo > self._ceiling

    def advance(self, sat: bool) -> int | None:
        return self.advance_core(sat, None)

    def advance_core(self, sat: bool, refuted: int | None = None) -> int | None:
        if sat:
            if self._hi is None or self.bound < self._hi:
                self._hi = self.bound
        else:
            unsat_through = self.bound if refuted is None else max(self.bound, refuted)
            self._lo = max(self._lo, unsat_through + 1)
        if self._exhausted():
            return None
        self.bound = self._aim()
        return self.bound

    def observe(
        self, refuted: int | None = None, known_sat: int | None = None
    ) -> int | None:
        if refuted is not None and refuted + 1 > self._lo:
            self._lo = refuted + 1
        if known_sat is not None and (self._hi is None or known_sat < self._hi):
            self._hi = known_sat
        if self._exhausted():
            return None
        # Only re-aim when the current probe fell out of the bracket:
        # keeping an in-bracket bound stable makes observation idempotent
        # (the caller polls between and *during* SAT calls).
        in_bracket = (
            self._lo <= self.bound
            and (self._hi is None or self.bound < self._hi)
            and (self._ceiling is None or self.bound <= self._ceiling)
        )
        if not in_bracket:
            self.bound = self._aim()
        return self.bound

    def checkpoint(self) -> dict[str, int | None]:
        # ``_lo`` starts at the caller's initial bound, which the cube
        # layer pins to a sound structural floor, so ``_lo - 1`` is a
        # sound "everything below is infeasible" statement.
        return {"next_bound": self.bound, "refuted_through": self._lo - 1, "known_sat": self._hi}


@dataclass(frozen=True)
class StripedClimb(SearchStrategy):
    """One lane of a striped cube-and-conquer climb.

    ``lanes`` sibling cursors share one frontier through the bound board
    (each lane's :meth:`~SearchCursor.observe` folds the board's pooled
    refutations and witnesses in); each probes a distinct rung of the
    next ``lanes`` unsettled ones, so deep UNSAT rungs are proven once
    *somewhere* instead of once per lane.  A lane's own bracket closing
    certifies the minimum of *its* subspace only — instance-level
    certification is the merge layer's job.  Built by
    :func:`repro.pebbling.cubes.run_cube_search`; not a CLI schedule.
    """

    lane: int = 0
    lanes: int = 1
    name = "striped"

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise PebblingError("lanes must be >= 1")
        if not 0 <= self.lane < self.lanes:
            raise PebblingError("lane must be in [0, lanes)")

    @property
    def signature(self) -> str:
        return f"striped:{self.lane}/{self.lanes}"

    @property
    def certifies_minimality(self) -> bool:
        return True

    @property
    def needs_monotone_steps(self) -> bool:
        return True

    def start(self, initial: int, floor: int, ceiling: int | None = None) -> SearchCursor:
        del floor  # the cube layer pins ``initial`` to the structural floor
        return _StripedClimbCursor(initial, self.lane, self.lanes, ceiling)


#: Names accepted wherever a schedule can be given as a string.
STRATEGY_NAMES = ("linear", "geometric", "geometric-refine", "linear-core", "core-refine")

#: Ladder width used by the named core-guided schedules (``linear-core``,
#: ``core-refine``): each query co-assumes this many extra bound guards.
DEFAULT_CORE_LOOKAHEAD = 4


def strategy_from_name(name: str, *, step_increment: int | None = None) -> SearchStrategy:
    """Build a strategy from its CLI/legacy name.

    ``step_increment`` only makes sense for the linear schedule; passing it
    with any other name raises, instead of the historical behaviour of
    silently ignoring it.
    """
    if name == "linear":
        return LinearSearch(step_increment=1 if step_increment is None else step_increment)
    if name == "linear-core":
        return LinearSearch(
            step_increment=1 if step_increment is None else step_increment,
            core_lookahead=DEFAULT_CORE_LOOKAHEAD,
        )
    if step_increment is not None and step_increment != 1:
        raise PebblingError(
            f"step_increment={step_increment} has no effect on the {name!r} "
            "schedule; drop it or use the linear schedule"
        )
    if name == "geometric":
        return GeometricSearch()
    if name == "geometric-refine":
        return GeometricRefine()
    if name == "core-refine":
        return GeometricRefine(core_guided=True, core_lookahead=DEFAULT_CORE_LOOKAHEAD)
    raise PebblingError(
        f"step_schedule must be one of {', '.join(map(repr, STRATEGY_NAMES))}"
    )


def resolve_search_strategy(
    strategy: SearchStrategy | str | None = None,
    *,
    step_schedule: str | None = None,
    step_increment: int | None = None,
) -> SearchStrategy:
    """Resolve the solver's search-schedule arguments to one strategy object.

    Exactly one of ``strategy`` (an object or a name) and the legacy
    ``step_schedule`` string may be given; combining them, or combining a
    non-linear schedule with ``step_increment``, raises
    :class:`~repro.errors.PebblingError` — validation lives here, once,
    instead of being duplicated across the solver's search loops.
    """
    if strategy is not None and step_schedule is not None:
        raise PebblingError("pass either strategy= or step_schedule=, not both")
    if isinstance(strategy, SearchStrategy):
        if step_increment is not None:
            raise PebblingError(
                "step_increment cannot be combined with a SearchStrategy object; "
                "configure the strategy instead"
            )
        return strategy
    name = strategy if isinstance(strategy, str) else step_schedule
    if name is None:
        name = "linear"
    return strategy_from_name(name, step_increment=step_increment)
