"""ASCII rendering of pebbling strategies (Fig. 4 / Fig. 5 style)."""

from __future__ import annotations

from repro.pebbling.strategy import PebblingStrategy


def render_strategy_grid(
    strategy: PebblingStrategy,
    *,
    pebbled_char: str = "█",
    empty_char: str = "·",
    show_header: bool = True,
) -> str:
    """Render the strategy as a node × step grid.

    Each row is one DAG node (top row = first node in topological order);
    each column is one configuration, from the initial empty one on the left
    to the final outputs-only one on the right.  A filled cell means the
    node is pebbled in that configuration — the same picture as Fig. 4.
    """
    nodes = strategy.dag.topological_order()
    configurations = strategy.configurations
    width = len(configurations)
    name_width = max(len(str(node)) for node in nodes)
    lines: list[str] = []
    if show_header:
        lines.append(
            f"{strategy.dag.name}: {strategy.max_pebbles} pebbles, "
            f"{strategy.num_steps} steps, {strategy.num_moves} moves"
        )
        lines.append(memory_profile_chart(strategy, indent=name_width + 1))
    for node in nodes:
        cells = [
            pebbled_char if node in config else empty_char for config in configurations
        ]
        lines.append(f"{str(node).rjust(name_width)} {''.join(cells)}")
    footer_digits = [str((step // 10) % 10) if step % 10 == 0 and step > 0 else " "
                     for step in range(width)]
    footer_units = [str(step % 10) for step in range(width)]
    lines.append(f"{' ' * name_width} {''.join(footer_digits)}")
    lines.append(f"{' ' * name_width} {''.join(footer_units)}")
    return "\n".join(lines)


def memory_profile_chart(strategy: PebblingStrategy, *, indent: int = 0) -> str:
    """One-line sparkline of the pebble count over time (Fig. 5 top curves)."""
    blocks = " ▁▂▃▄▅▆▇█"
    profile = strategy.pebble_profile()
    peak = max(profile) or 1
    chars = [blocks[round(count / peak * (len(blocks) - 1))] for count in profile]
    return f"{' ' * indent}{''.join(chars)}  (peak {peak})"


def strategy_report(strategy: PebblingStrategy) -> str:
    """A textual report: grid, operation counts and headline metrics."""
    counts = strategy.operation_counts()
    count_text = ", ".join(f"{operation}: {count}" for operation, count in sorted(counts.items()))
    lines = [
        render_strategy_grid(strategy),
        "",
        f"operations executed: {strategy.num_moves} ({count_text})",
        f"peak pebbles (ancillae): {strategy.max_pebbles}",
        f"steps (transitions): {strategy.num_steps}",
    ]
    return "\n".join(lines)
