"""Text rendering of pebbling strategies.

The paper visualises strategies as grids (Fig. 4 and Fig. 5): one row per
DAG node, one column per step, with a filled cell when the node is pebbled
at that step, plus a memory-usage curve on top.  :mod:`repro.visualize.grid`
renders the same pictures as plain text so they can be printed from the CLI
and embedded in EXPERIMENTS.md.
"""

from repro.visualize.grid import memory_profile_chart, render_strategy_grid, strategy_report

__all__ = ["memory_profile_chart", "render_strategy_grid", "strategy_report"]
