"""Reversible pebbling game for quantum memory management.

A from-scratch reproduction of G. Meuli, M. Soeken, M. Roetteler,
N. Bjorner and G. De Micheli, *Reversible Pebbling Game for Quantum Memory
Management*, DATE 2019 (arXiv:1904.02121).

The package is organised in layers (see ``DESIGN.md`` for the full map):

* :mod:`repro.sat` — a CDCL SAT solver with cardinality encodings (the
  substrate the paper delegates to Z3);
* :mod:`repro.dag` — dependency DAGs, the board of the pebbling game;
* :mod:`repro.logic` — logic networks, ``.bench`` parsing, arithmetic and
  ISCAS-style circuit generators;
* :mod:`repro.slp` — straight-line cryptographic programs;
* :mod:`repro.pebbling` — the paper's contribution: baselines, SAT
  encoding and the pebbling solver;
* :mod:`repro.circuits` — reversible circuits, compilation of strategies,
  Barenco decomposition, simulation and cost models;
* :mod:`repro.visualize` — ASCII strategy grids;
* :mod:`repro.workloads` — the named evaluation workloads of the paper;
* :mod:`repro.store` — the content-addressed result store (isomorphism-
  invariant DAG fingerprints, SQLite cache, warm-start extraction);
* :mod:`repro.service` — the asyncio serving layer (request dedup,
  batching, cache-first answering).

Quick start::

    from repro import load_workload, pebble_dag, bennett_strategy

    dag = load_workload("fig2")
    baseline = bennett_strategy(dag)
    result = pebble_dag(dag, max_pebbles=4)
    print(baseline.max_pebbles, "->", result.strategy.max_pebbles)
"""

from repro.dag import Dag
from repro.logic import LogicNetwork
from repro.pebbling import (
    EncodingOptions,
    PebblingResult,
    PebblingStrategy,
    ReversiblePebblingSolver,
    bennett_strategy,
    eager_bennett_strategy,
    greedy_pebbling_strategy,
    minimize_pebbles,
    pebble_dag,
)
from repro.service import JobRequest, PebblingService
from repro.slp import StraightLineProgram
from repro.store import ResultStore, dag_fingerprint
from repro.visualize import render_strategy_grid, strategy_report
from repro.workloads import list_workloads, load_workload

__version__ = "1.0.0"

__all__ = [
    "Dag",
    "EncodingOptions",
    "JobRequest",
    "LogicNetwork",
    "PebblingResult",
    "PebblingService",
    "PebblingStrategy",
    "ResultStore",
    "ReversiblePebblingSolver",
    "StraightLineProgram",
    "__version__",
    "bennett_strategy",
    "dag_fingerprint",
    "eager_bennett_strategy",
    "greedy_pebbling_strategy",
    "list_workloads",
    "load_workload",
    "minimize_pebbles",
    "pebble_dag",
    "render_strategy_grid",
    "strategy_report",
]
