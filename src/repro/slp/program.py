"""Straight-line programs over modular arithmetic.

A straight-line program (SLP) is a branch-free sequence of assignments

.. code-block:: text

    t1 = add(a, b)
    t2 = mul(t1, c)
    out = sqr(t2)

over a set of named inputs.  The paper uses SLPs from cryptographic point
arithmetic as pebbling workloads: every instruction becomes one node of the
dependency DAG, every use of an earlier result becomes an edge, and the
program outputs become the DAG outputs.

The interpreter evaluates programs over the ring of integers modulo ``m``
(or over plain integers), which the test-suite uses to check that the
bundled cryptographic programs compute what they claim, and that DAG
conversion preserves dependency structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.errors import SlpError
from repro.dag.graph import Dag


class Operation(Enum):
    """Arithmetic operations supported in straight-line programs."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    SQR = "sqr"
    NEG = "neg"
    CONST_MUL = "cmul"

    @classmethod
    def from_name(cls, name: "str | Operation") -> "Operation":
        """Accept an enum member or its lower-case name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(name.lower())
        except (ValueError, AttributeError) as exc:
            valid = ", ".join(member.value for member in cls)
            raise SlpError(f"unknown operation {name!r} (valid: {valid})") from exc


_ARITY = {
    Operation.ADD: 2,
    Operation.SUB: 2,
    Operation.MUL: 2,
    Operation.SQR: 1,
    Operation.NEG: 1,
    Operation.CONST_MUL: 1,
}


@dataclass(frozen=True)
class Instruction:
    """One SLP assignment: ``target = operation(*arguments)``.

    ``constant`` is only used by :attr:`Operation.CONST_MUL` (multiplication
    by a program constant, e.g. a curve coefficient).
    """

    target: str
    operation: Operation
    arguments: tuple[str, ...]
    constant: int | None = None

    def __post_init__(self) -> None:
        expected = _ARITY[self.operation]
        if len(self.arguments) != expected:
            raise SlpError(
                f"{self.operation.value} expects {expected} arguments, "
                f"got {len(self.arguments)} for target {self.target!r}"
            )
        if self.operation is Operation.CONST_MUL and self.constant is None:
            raise SlpError(f"cmul instruction {self.target!r} needs a constant")


@dataclass
class StraightLineProgram:
    """A named straight-line program.

    Build programs through :meth:`add`, :meth:`sub`, :meth:`mul`,
    :meth:`sqr`, :meth:`neg` and :meth:`cmul`, then mark outputs with
    :meth:`set_outputs`.
    """

    name: str = "slp"
    inputs: list[str] = field(default_factory=list)
    instructions: list[Instruction] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare an input value."""
        self._check_fresh(name)
        self.inputs.append(name)
        return name

    def add_inputs(self, names: Iterable[str]) -> list[str]:
        """Declare several inputs at once."""
        return [self.add_input(name) for name in names]

    def _check_fresh(self, name: str) -> None:
        if not name:
            raise SlpError("value names must be non-empty")
        if self.defines(name):
            raise SlpError(f"value {name!r} already defined")

    def _check_known(self, name: str) -> None:
        if not self.defines(name):
            raise SlpError(f"value {name!r} is not defined at this point")

    def defines(self, name: str) -> bool:
        """Return ``True`` if ``name`` is an input or an instruction target."""
        return name in self.inputs or any(ins.target == name for ins in self.instructions)

    def _emit(self, target: str, operation: Operation, arguments: Sequence[str],
              constant: int | None = None) -> str:
        self._check_fresh(target)
        for argument in arguments:
            self._check_known(argument)
        self.instructions.append(Instruction(target, operation, tuple(arguments), constant))
        return target

    def add(self, target: str, left: str, right: str) -> str:
        """Emit ``target = left + right``."""
        return self._emit(target, Operation.ADD, [left, right])

    def sub(self, target: str, left: str, right: str) -> str:
        """Emit ``target = left - right``."""
        return self._emit(target, Operation.SUB, [left, right])

    def mul(self, target: str, left: str, right: str) -> str:
        """Emit ``target = left * right``."""
        return self._emit(target, Operation.MUL, [left, right])

    def sqr(self, target: str, argument: str) -> str:
        """Emit ``target = argument ** 2``."""
        return self._emit(target, Operation.SQR, [argument])

    def neg(self, target: str, argument: str) -> str:
        """Emit ``target = -argument``."""
        return self._emit(target, Operation.NEG, [argument])

    def cmul(self, target: str, argument: str, constant: int) -> str:
        """Emit ``target = constant * argument``."""
        return self._emit(target, Operation.CONST_MUL, [argument], constant)

    def set_outputs(self, names: Iterable[str]) -> None:
        """Designate program outputs (each must be a defined value)."""
        names = list(names)
        if not names:
            raise SlpError("a program needs at least one output")
        for name in names:
            self._check_known(name)
        self.outputs = list(dict.fromkeys(names))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_instructions(self) -> int:
        """Number of instructions (DAG nodes after conversion)."""
        return len(self.instructions)

    def operation_counts(self) -> dict[str, int]:
        """Return ``{operation name: count}`` over the instructions."""
        counts: dict[str, int] = {}
        for instruction in self.instructions:
            key = instruction.operation.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def validate(self) -> None:
        """Raise :class:`~repro.errors.SlpError` if the program is malformed."""
        if not self.inputs:
            raise SlpError("program has no inputs")
        if not self.outputs:
            raise SlpError("program has no outputs")
        defined = set(self.inputs)
        for instruction in self.instructions:
            for argument in instruction.arguments:
                if argument not in defined:
                    raise SlpError(
                        f"instruction {instruction.target!r} uses {argument!r} before definition"
                    )
            if instruction.target in defined:
                raise SlpError(f"value {instruction.target!r} defined twice")
            defined.add(instruction.target)
        for output in self.outputs:
            if output not in defined:
                raise SlpError(f"output {output!r} is never defined")

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        assignment: Mapping[str, int],
        *,
        modulus: int | None = None,
    ) -> dict[str, int]:
        """Run the program; return the value of every defined name.

        With ``modulus`` set, arithmetic is performed modulo that value
        (inputs are reduced first).
        """
        self.validate()
        values: dict[str, int] = {}
        for name in self.inputs:
            if name not in assignment:
                raise SlpError(f"assignment is missing input {name!r}")
            value = int(assignment[name])
            values[name] = value % modulus if modulus else value
        for instruction in self.instructions:
            arguments = [values[name] for name in instruction.arguments]
            result = _apply(instruction, arguments)
            values[instruction.target] = result % modulus if modulus else result
        return values

    def evaluate_outputs(
        self,
        assignment: Mapping[str, int],
        *,
        modulus: int | None = None,
    ) -> dict[str, int]:
        """Run the program and return only the outputs."""
        values = self.evaluate(assignment, modulus=modulus)
        return {name: values[name] for name in self.outputs}

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_dag(self) -> Dag:
        """Return the pebbling dependency DAG of the program.

        Each instruction is a node labelled with its operation; program
        inputs are not nodes (they are always available); the DAG outputs
        are the instructions producing program outputs.  An output that is
        simply an input is dropped (no computation required).
        """
        self.validate()
        dag = Dag(name=self.name)
        input_set = set(self.inputs)
        for instruction in self.instructions:
            dependencies = [
                argument for argument in instruction.arguments if argument not in input_set
            ]
            dag.add_node(
                instruction.target,
                list(dict.fromkeys(dependencies)),
                operation=instruction.operation.value,
            )
        outputs = [name for name in self.outputs if name not in input_set]
        if not outputs:
            raise SlpError("program outputs are all inputs; nothing to pebble")
        dag.set_outputs(outputs)
        return dag

    def __repr__(self) -> str:
        return (
            f"StraightLineProgram(name={self.name!r}, inputs={len(self.inputs)}, "
            f"instructions={self.num_instructions}, outputs={len(self.outputs)})"
        )


def _apply(instruction: Instruction, arguments: list[int]) -> int:
    operation = instruction.operation
    if operation is Operation.ADD:
        return arguments[0] + arguments[1]
    if operation is Operation.SUB:
        return arguments[0] - arguments[1]
    if operation is Operation.MUL:
        return arguments[0] * arguments[1]
    if operation is Operation.SQR:
        return arguments[0] * arguments[0]
    if operation is Operation.NEG:
        return -arguments[0]
    assert instruction.constant is not None
    return instruction.constant * arguments[0]
