"""Straight-line program (SLP) substrate.

Straight-line programs over modular arithmetic are the paper's first
show-case: cryptographic computations (elliptic-curve / Kummer-surface
point operations) expressed as a fixed sequence of additions, subtractions,
multiplications and squarings.  Each operation becomes one node of the
pebbling DAG.

* :mod:`repro.slp.program` -- the SLP intermediate representation, a
  modular-arithmetic interpreter and the conversion to a pebbling DAG;
* :mod:`repro.slp.crypto` -- the concrete programs used in the paper's
  evaluation: the Hadamard ``H`` operator (Section IV-B), Kummer-surface
  point addition/doubling in the style of Bos et al. (Fig. 5) and projective
  twisted-Edwards point addition;
* :mod:`repro.slp.expand` -- expansion of word-level SLPs into gate-level
  logic networks (modular adders/subtractors), which produces the
  ``b<bits>_m<modulus>`` rows of Table I.
"""

from repro.slp.crypto import (
    edwards_point_addition_slp,
    hadamard_operator_slp,
    kummer_doubling_slp,
    kummer_point_addition_slp,
)
from repro.slp.expand import expand_slp_to_network
from repro.slp.program import Instruction, Operation, StraightLineProgram

__all__ = [
    "Instruction",
    "Operation",
    "StraightLineProgram",
    "edwards_point_addition_slp",
    "expand_slp_to_network",
    "hadamard_operator_slp",
    "kummer_doubling_slp",
    "kummer_point_addition_slp",
]
