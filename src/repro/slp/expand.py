"""Expansion of word-level straight-line programs to gate-level networks.

Table I's ``b<bits>_m<modulus>`` designs are the Hadamard ``H`` operator
with different bit widths and moduli, expanded to the gate level.  This
module performs that expansion: every SLP value becomes a ``bits``-wide bus
of signals, every ``add``/``sub`` instruction instantiates a modular
adder/subtractor (from :mod:`repro.logic.arithmetic`), and ``mul``/``sqr``
instructions instantiate a shift-and-add modular multiplier.  The result is
one flat :class:`~repro.logic.network.LogicNetwork` whose dependency DAG is
what the paper pebbles.
"""

from __future__ import annotations

from repro.errors import SlpError
from repro.logic.arithmetic import modular_adder_network, modular_subtractor_network
from repro.logic.network import LogicNetwork
from repro.slp.program import Operation, StraightLineProgram


def expand_slp_to_network(
    program: StraightLineProgram,
    *,
    bits: int,
    modulus: int,
    use_majority: bool = True,
    name: str | None = None,
) -> LogicNetwork:
    """Expand ``program`` into a gate-level network over ``bits``-bit buses.

    Every program input becomes ``bits`` primary inputs ``<name>_<i>``;
    every program output exposes its bus as primary outputs.  Arithmetic is
    performed modulo ``modulus``.

    Supported word-level operations: ``add``, ``sub``, ``neg`` (as ``0 - x``),
    ``mul``, ``sqr`` and ``cmul`` (via shift-and-add over the binary
    expansion of the constant).
    """
    program.validate()
    if not 2 <= modulus <= (1 << bits):
        raise SlpError("modulus must satisfy 2 <= modulus <= 2**bits")
    network = LogicNetwork(name or f"{program.name}_b{bits}_m{modulus}")
    buses: dict[str, list[str]] = {}
    for input_name in program.inputs:
        buses[input_name] = [network.add_input(f"{input_name}_{i}") for i in range(bits)]

    counter = 0
    for instruction in program.instructions:
        counter += 1
        prefix = f"i{counter}_{instruction.target}"
        if instruction.operation is Operation.ADD:
            result = _instantiate_binary(
                network, modular_adder_network(bits, modulus, use_majority=use_majority),
                buses[instruction.arguments[0]], buses[instruction.arguments[1]], prefix,
            )
        elif instruction.operation is Operation.SUB:
            result = _instantiate_binary(
                network, modular_subtractor_network(bits, modulus, use_majority=use_majority),
                buses[instruction.arguments[0]], buses[instruction.arguments[1]], prefix,
            )
        elif instruction.operation is Operation.NEG:
            zero_bus = _constant_bus(network, 0, bits, f"{prefix}_zero")
            result = _instantiate_binary(
                network, modular_subtractor_network(bits, modulus, use_majority=use_majority),
                zero_bus, buses[instruction.arguments[0]], prefix,
            )
        elif instruction.operation is Operation.MUL:
            result = _modular_multiply(
                network, buses[instruction.arguments[0]], buses[instruction.arguments[1]],
                bits, modulus, prefix, use_majority,
            )
        elif instruction.operation is Operation.SQR:
            bus = buses[instruction.arguments[0]]
            result = _modular_multiply(network, bus, bus, bits, modulus, prefix, use_majority)
        elif instruction.operation is Operation.CONST_MUL:
            assert instruction.constant is not None
            constant_bus = _constant_bus(
                network, instruction.constant % modulus, bits, f"{prefix}_const"
            )
            result = _modular_multiply(
                network, buses[instruction.arguments[0]], constant_bus,
                bits, modulus, prefix, use_majority,
            )
        else:  # pragma: no cover - all operations handled above
            raise SlpError(f"unsupported operation {instruction.operation}")
        buses[instruction.target] = result

    for output in program.outputs:
        for signal in buses[output]:
            if network.has_signal(signal):
                network.add_output(signal)
    network.validate()
    return network


def _constant_bus(network: LogicNetwork, value: int, bits: int, prefix: str) -> list[str]:
    """Create a bus of constant signals for ``value``."""
    bus = []
    for i in range(bits):
        signal = f"{prefix}_{i}"
        network.add_gate(signal, "CONST1" if (value >> i) & 1 else "CONST0", [])
        bus.append(signal)
    return bus


def _instantiate_binary(
    network: LogicNetwork,
    template: LogicNetwork,
    bus_a: list[str],
    bus_b: list[str],
    prefix: str,
) -> list[str]:
    """Inline ``template`` (a two-operand circuit) into ``network``.

    The template's inputs ``a<i>``/``b<i>`` are bound to ``bus_a``/``bus_b``
    and every internal signal is prefixed to keep names unique.  Returns the
    signals bound to the template's outputs.
    """
    bits = len(bus_a)
    binding: dict[str, str] = {}
    for i in range(bits):
        binding[f"a{i}"] = bus_a[i]
        binding[f"b{i}"] = bus_b[i]
    for gate in template.gates():
        new_name = f"{prefix}_{gate.output}"
        fanins = [binding[fanin] for fanin in gate.fanins]
        network.add_gate(new_name, gate.gate_type, fanins)
        binding[gate.output] = new_name
    return [binding[output] for output in template.outputs]


def _modular_multiply(
    network: LogicNetwork,
    bus_a: list[str],
    bus_b: list[str],
    bits: int,
    modulus: int,
    prefix: str,
    use_majority: bool,
) -> list[str]:
    """Shift-and-add modular multiplication of two buses.

    ``result = sum_i b_i * (a << i)  (mod modulus)`` where each doubled
    partial ``(a << i) mod modulus`` is obtained by a modular addition of the
    previous partial with itself, each conditional accumulation is an AND
    mask followed by a modular addition.
    """
    adder = modular_adder_network(bits, modulus, use_majority=use_majority)
    accumulator = _constant_bus(network, 0, bits, f"{prefix}_acc0")
    shifted = list(bus_a)
    for i in range(bits):
        # masked = shifted AND b_i (bitwise mask by the multiplier bit)
        masked = []
        for j in range(bits):
            signal = f"{prefix}_mask{i}_{j}"
            network.add_gate(signal, "AND", [shifted[j], bus_b[i]])
            masked.append(signal)
        accumulator = _instantiate_binary(
            network, adder, accumulator, masked, f"{prefix}_accadd{i}"
        )
        if i + 1 < bits:
            shifted = _instantiate_binary(
                network, adder, shifted, shifted, f"{prefix}_double{i}"
            )
    return accumulator
