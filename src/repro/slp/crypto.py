"""Cryptographic straight-line programs used in the paper's evaluation.

Three workloads appear in the paper:

* the Hadamard ``H`` operator (Section IV-B): four modular additions and
  four modular subtractions arranged as a butterfly — used, expanded to the
  gate level, for the ``b<bits>_m<modulus>`` rows of Table I;
* the point addition of Bos, Costello, Hisil and Lauter's fast genus-2
  Kummer-surface arithmetic (Fig. 5): a ladder-style differential addition
  built from Hadamard transforms, multiplications and squarings;
* projective twisted-Edwards point addition, a smaller curve-arithmetic
  program used as an extra example.

The exact field constants are irrelevant to the pebbling problem (only the
dependency structure matters), but the programs below are real formulas:
the test-suite checks the ``H`` operator against its defining equations, the
Edwards addition against the affine addition formulas over a prime field,
and the Kummer-style programs against a direct composition of their
building blocks (Hadamard transforms, scalings, squarings).
"""

from __future__ import annotations

from repro.slp.program import StraightLineProgram


def hadamard_operator_slp(*, name: str = "hadamard_H") -> StraightLineProgram:
    """The paper's ``H`` operator (Section IV-B).

    Inputs ``a, b, c, d``; outputs ``x, y, z, t`` with::

        t1 = a + b    t2 = c + d    t3 = a - b    t4 = c - d
        x  = t1 + t2  y  = t1 - t2  z  = t3 + t4  t  = t3 - t4
    """
    program = StraightLineProgram(name=name)
    a, b, c, d = program.add_inputs(["a", "b", "c", "d"])
    program.add("t1", a, b)
    program.add("t2", c, d)
    program.sub("t3", a, b)
    program.sub("t4", c, d)
    program.add("x", "t1", "t2")
    program.sub("y", "t1", "t2")
    program.add("z", "t3", "t4")
    program.sub("t", "t3", "t4")
    program.set_outputs(["x", "y", "z", "t"])
    return program


def _hadamard_block(
    program: StraightLineProgram,
    prefix: str,
    a: str,
    b: str,
    c: str,
    d: str,
) -> tuple[str, str, str, str]:
    """Append one Hadamard butterfly to ``program``; return its outputs."""
    program.add(f"{prefix}_t1", a, b)
    program.add(f"{prefix}_t2", c, d)
    program.sub(f"{prefix}_t3", a, b)
    program.sub(f"{prefix}_t4", c, d)
    program.add(f"{prefix}_x", f"{prefix}_t1", f"{prefix}_t2")
    program.sub(f"{prefix}_y", f"{prefix}_t1", f"{prefix}_t2")
    program.add(f"{prefix}_z", f"{prefix}_t3", f"{prefix}_t4")
    program.sub(f"{prefix}_t", f"{prefix}_t3", f"{prefix}_t4")
    return (f"{prefix}_x", f"{prefix}_y", f"{prefix}_z", f"{prefix}_t")


def kummer_point_addition_slp(
    *,
    curve_constants: tuple[int, int, int, int] = (11, 13, 17, 19),
    name: str = "kummer_point_addition",
) -> StraightLineProgram:
    """Differential point addition on a fast Kummer surface.

    This follows the structure of the genus-2 arithmetic of Bos et al.
    (EUROCRYPT 2013) used by the paper for Fig. 5: given the Kummer
    coordinates of ``P`` (``xp, yp, zp, tp``), of ``Q`` (``xq, yq, zq, tq``)
    and of the difference ``P - Q`` (``xd, yd, zd, td``), compute ``P + Q``.

    The program consists of two input Hadamard transforms, two rounds of
    four coordinate-wise multiplications (the second against the curve
    constants), a third Hadamard transform, four squarings and a final round
    of multiplications by the inverted difference coordinates — 44
    operations in total, in the same size class as the Fig. 5 workload
    (whose pebbled implementations range from 74 to 110 executed
    operations).
    """
    program = StraightLineProgram(name=name)
    xp, yp, zp, tp = program.add_inputs(["xp", "yp", "zp", "tp"])
    xq, yq, zq, tq = program.add_inputs(["xq", "yq", "zq", "tq"])
    # Coordinates of P - Q (projective inverses precomputed, as is standard
    # for ladder implementations).
    ixd, iyd, izd, itd = program.add_inputs(["ixd", "iyd", "izd", "itd"])
    k1, k2, k3, k4 = curve_constants

    # Hadamard transform of both operands.
    hp = _hadamard_block(program, "hp", xp, yp, zp, tp)
    hq = _hadamard_block(program, "hq", xq, yq, zq, tq)

    # Coordinate-wise products of the transformed operands.
    for index, (left, right) in enumerate(zip(hp, hq), start=1):
        program.mul(f"m{index}", left, right)

    # Scale by the (inverted squared theta) curve constants.
    program.cmul("c1", "m1", k1)
    program.cmul("c2", "m2", k2)
    program.cmul("c3", "m3", k3)
    program.cmul("c4", "m4", k4)

    # Second Hadamard transform.
    hh = _hadamard_block(program, "hh", "c1", "c2", "c3", "c4")

    # Square each coordinate.
    for index, signal in enumerate(hh, start=1):
        program.sqr(f"q{index}", signal)

    # Multiply by the inverted coordinates of the difference point.
    program.mul("xr", "q1", ixd)
    program.mul("yr", "q2", iyd)
    program.mul("zr", "q3", izd)
    program.mul("tr", "q4", itd)
    program.set_outputs(["xr", "yr", "zr", "tr"])
    return program


def kummer_doubling_slp(
    *,
    curve_constants: tuple[int, int, int, int] = (11, 13, 17, 19),
    inverse_base_constants: tuple[int, int, int, int] = (3, 5, 7, 9),
    name: str = "kummer_doubling",
) -> StraightLineProgram:
    """Point doubling on a fast Kummer surface (uses the ``H`` operator twice).

    The paper's Section IV-B explains that the ``H`` operator is "used
    internally to the algorithm that computes the doubling of two points";
    this program is that algorithm: Hadamard, squarings, constant scaling,
    Hadamard, squarings, and a final scaling by the base-point constants.
    """
    program = StraightLineProgram(name=name)
    x, y, z, t = program.add_inputs(["x", "y", "z", "t"])
    k1, k2, k3, k4 = curve_constants
    j1, j2, j3, j4 = inverse_base_constants

    h1 = _hadamard_block(program, "h1", x, y, z, t)
    for index, signal in enumerate(h1, start=1):
        program.sqr(f"s{index}", signal)
    program.cmul("e1", "s1", k1)
    program.cmul("e2", "s2", k2)
    program.cmul("e3", "s3", k3)
    program.cmul("e4", "s4", k4)
    h2 = _hadamard_block(program, "h2", "e1", "e2", "e3", "e4")
    for index, signal in enumerate(h2, start=1):
        program.sqr(f"r{index}", signal)
    program.cmul("x2", "r1", j1)
    program.cmul("y2", "r2", j2)
    program.cmul("z2", "r3", j3)
    program.cmul("t2", "r4", j4)
    program.set_outputs(["x2", "y2", "z2", "t2"])
    return program


def edwards_point_addition_slp(
    *,
    coefficient_a: int = -1,
    coefficient_d: int = 121665,
    name: str = "edwards_point_addition",
) -> StraightLineProgram:
    """Projective twisted-Edwards point addition (add-2008-bbjlp).

    Given ``(X1 : Y1 : Z1)`` and ``(X2 : Y2 : Z2)`` on the curve
    ``a x^2 + y^2 = 1 + d x^2 y^2``, computes ``(X3 : Y3 : Z3)`` using the
    standard 10M + 1S + 2D formula::

        A = Z1*Z2;  B = A^2;  C = X1*X2;  D = Y1*Y2;  E = d*C*D
        F = B - E;  G = B + E
        X3 = A*F*((X1+Y1)*(X2+Y2) - C - D)
        Y3 = A*G*(D - a*C)
        Z3 = F*G
    """
    program = StraightLineProgram(name=name)
    x1, y1, z1 = program.add_inputs(["x1", "y1", "z1"])
    x2, y2, z2 = program.add_inputs(["x2", "y2", "z2"])

    program.mul("A", z1, z2)
    program.sqr("B", "A")
    program.mul("C", x1, x2)
    program.mul("D", y1, y2)
    program.mul("CD", "C", "D")
    program.cmul("E", "CD", coefficient_d)
    program.sub("F", "B", "E")
    program.add("G", "B", "E")
    program.add("U1", x1, y1)
    program.add("U2", x2, y2)
    program.mul("U", "U1", "U2")
    program.sub("V", "U", "C")
    program.sub("W", "V", "D")
    program.mul("AF", "A", "F")
    program.mul("X3", "AF", "W")
    program.cmul("aC", "C", coefficient_a)
    program.sub("DaC", "D", "aC")
    program.mul("AG", "A", "G")
    program.mul("Y3", "AG", "DaC")
    program.mul("Z3", "F", "G")
    program.set_outputs(["X3", "Y3", "Z3"])
    return program
