"""SQLite-backed content-addressed store for pebbling and compile results.

The paper's workflow solves many instances that differ only in budget over
the *same* DAG (Table I budget scans, Fig. 5/6 sweeps), and production
serving repeats whole requests verbatim.  :class:`ResultStore` exploits
both access patterns:

* **exact reuse** — a request whose content address
  (:func:`~repro.store.fingerprint.pebble_request_key`) matches a stored
  row is answered from the database without touching a SAT solver, and the
  deserialised result is byte-identical (JSON-compared) to the one that
  was stored;
* **warm starts** — a request for the *same game* on an isomorphic DAG at
  a *different* budget extracts certified step bounds from its cached
  neighbours (:meth:`ResultStore.warm_start`): a solution at a tighter
  (or equal) budget is feasible here too and gives an achievable step
  ceiling, a certified-minimal solution at a looser (or equal) budget
  gives a sound step floor (minimum steps only grow as the budget
  shrinks), and the solver's search then starts next to the answer
  instead of at the structural lower bound.

Rows are keyed by content, so the store is safe to share between processes
(every portfolio worker opens its own connection; SQLite WAL journalling
handles the concurrency) and survives across runs.  Only searches that ran
to their natural end are stored — a timeout is not a fact about the
instance, just about the deadline.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path

from repro.dag.graph import Dag
from repro.errors import ReproError
from repro.logic.network import LogicNetwork
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import SearchStrategy
from repro.pebbling.solver import PebblingResult
from repro.store.fingerprint import (
    compile_request_key,
    dag_fingerprint,
    exact_dag_digest,
    options_key,
    pebble_request_key,
)

#: Bump on any incompatible change to the table layout or payload format;
#: an existing database with a different version is wiped and rebuilt (a
#: cache may always be dropped).  v2: result payloads record the producing
#: SAT backend (content addresses stay backend-invariant).  v3: pebbling
#: payloads carry the anytime ``partial`` snapshot field.
STORE_SCHEMA = 3

_LOG = logging.getLogger(__name__)


class StoreError(ReproError):
    """Raised when the result store is used incorrectly."""


@dataclass(frozen=True)
class WarmStart:
    """Certified step bounds extracted from cached neighbouring budgets.

    ``step_floor`` comes from a certified-minimal solution at a budget at
    least as *loose* as requested — minimum steps cannot shrink when the
    budget shrinks, so ``K*(requested) >= K*(looser)``.  ``step_ceiling``
    comes from any complete solution at a budget at least as *tight* as
    requested: its witness fits the requested budget too, so its step
    count is achievable here.  Either side may be ``None`` when no
    qualifying neighbour is cached.
    """

    step_floor: int | None = None
    step_ceiling: int | None = None
    floor_budget: int | None = None
    ceiling_budget: int | None = None


@dataclass
class StoreStats:
    """Snapshot of a store's contents plus this session's traffic."""

    path: str
    entries: int
    pebble_entries: int
    compile_entries: int
    total_hits: int
    size_bytes: int
    session: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "entries": self.entries,
            "pebble_entries": self.pebble_entries,
            "compile_entries": self.compile_entries,
            "total_hits": self.total_hits,
            "size_bytes": self.size_bytes,
            "session": dict(self.session),
        }


_TABLE = """
CREATE TABLE IF NOT EXISTS results (
    key TEXT PRIMARY KEY,
    canonical TEXT NOT NULL,
    options TEXT NOT NULL,
    kind TEXT NOT NULL,
    dag_name TEXT NOT NULL,
    budget INTEGER NOT NULL,
    outcome TEXT NOT NULL,
    steps INTEGER,
    complete INTEGER NOT NULL,
    minimal INTEGER NOT NULL,
    payload TEXT NOT NULL,
    created REAL NOT NULL,
    last_used REAL NOT NULL,
    hits INTEGER NOT NULL DEFAULT 0
)
"""


class ResultStore:
    """Content-addressed cache of pebbling/compile results (see module doc).

    ``max_entries`` bounds the table size: every insertion beyond it
    evicts the least-recently-used rows (reads refresh recency).  The
    store is a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: "str | Path" = ":memory:", *, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise StoreError("max_entries must be >= 1 (or None for unbounded)")
        self.path = str(path)
        self.max_entries = max_entries
        self._fingerprints: "weakref.WeakKeyDictionary[Dag, tuple[str, str]]" = (
            weakref.WeakKeyDictionary()
        )
        self.session = {
            "gets": 0,
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "warm_queries": 0,
            "warm_hits": 0,
            "evictions": 0,
            "corrupt": 0,
        }
        self._connection = sqlite3.connect(self.path, check_same_thread=False)
        self._connection.execute("PRAGMA busy_timeout = 10000")
        if self.path != ":memory:":
            self._connection.execute("PRAGMA journal_mode = WAL")
        self._initialise()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _initialise(self) -> None:
        with self._connection as connection:
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is not None and row[0] != str(STORE_SCHEMA):
                # An old cache is just a cache: drop and rebuild.
                connection.execute("DROP TABLE IF EXISTS results")
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema', ?)",
                (str(STORE_SCHEMA),),
            )
            connection.execute(_TABLE)
            connection.execute(
                "CREATE INDEX IF NOT EXISTS idx_results_canonical "
                "ON results (canonical, options, kind)"
            )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require(self) -> sqlite3.Connection:
        if self._connection is None:
            raise StoreError("the result store is closed")
        return self._connection

    # ------------------------------------------------------------------
    # fingerprints (memoised per DAG object)
    # ------------------------------------------------------------------
    def _dag_keys(self, dag: Dag) -> tuple[str, str]:
        """(canonical fingerprint, exact digest) of ``dag``, memoised.

        Memoisation is keyed by the DAG object through a weak reference
        (``Dag`` hashes by identity), so a freed graph's slot disappears
        with it — a raw ``id()`` key could be recycled by a *different*
        DAG and serve it another graph's digests.  Identity keying is
        sound because both digests are pure functions of the graph, and a
        mutated DAG object must not be reused across solves anyway (the
        solver validates and caches topological order the same way).
        """
        keys = self._fingerprints.get(dag)
        if keys is None:
            keys = (dag_fingerprint(dag), exact_dag_digest(dag))
            self._fingerprints[dag] = keys
        return keys

    # ------------------------------------------------------------------
    # exact pebbling results
    # ------------------------------------------------------------------
    def _pebble_key(self, dag: Dag, **request: object) -> tuple[str, str, str]:
        canonical, exact = self._dag_keys(dag)
        options = request["options"]
        if not isinstance(options, EncodingOptions):
            raise StoreError("options must be an EncodingOptions instance")
        search = request["search"]
        if not isinstance(search, SearchStrategy):
            raise StoreError("search must be a resolved SearchStrategy object")
        key = pebble_request_key(
            exact_digest=exact,
            budget=int(request["budget"]),  # type: ignore[arg-type]
            options=options,
            search=search,
            incremental=bool(request["incremental"]),
            initial_steps=request.get("initial_steps"),  # type: ignore[arg-type]
            max_steps=request.get("max_steps"),  # type: ignore[arg-type]
            step_floor=request.get("step_floor"),  # type: ignore[arg-type]
        )
        return key, canonical, options_key(options)

    def get_pebble(self, dag: Dag, **request: object) -> "PebblingResult | None":
        """Return the cached result of an exact pebbling request, if any.

        ``request`` carries the solver's keyword surface (``budget``,
        ``options``, ``search``, ``incremental``, ``initial_steps``,
        ``max_steps``, ``step_floor``); see
        :meth:`repro.pebbling.solver.ReversiblePebblingSolver.solve`.
        """
        key, _, _ = self._pebble_key(dag, **request)
        payload = self._fetch(key)
        if payload is None:
            return None
        return self._decode(key, payload, lambda data: PebblingResult.from_json(data, dag))

    def put_pebble(self, dag: Dag, result: PebblingResult, **request: object) -> bool:
        """Store a pebbling result under its request's content address.

        Only results whose search ran to its natural end are stored
        (``result.complete``); returns whether a row was written.
        """
        if not result.complete:
            return False
        key, canonical, options = self._pebble_key(dag, **request)
        self._insert(
            key=key,
            canonical=canonical,
            options=options,
            kind="pebble",
            dag_name=dag.name,
            budget=int(request["budget"]),  # type: ignore[arg-type]
            outcome=result.outcome.value,
            steps=result.num_steps,
            complete=result.complete,
            minimal=result.minimal,
            payload=json.dumps(result.to_json(), sort_keys=True),
        )
        return True

    # ------------------------------------------------------------------
    # warm starts
    # ------------------------------------------------------------------
    def warm_start(
        self, dag: Dag, *, budget: int, options: EncodingOptions
    ) -> "WarmStart | None":
        """Extract certified step bounds from cached neighbouring budgets.

        Matches on the isomorphism-invariant DAG fingerprint and the game
        semantics (:func:`~repro.store.fingerprint.options_key`), so bounds
        transfer across node relabellings, cardinality encodings, engine
        modes and search schedules.  The fingerprint is a 1-WL refinement
        hash — complete on anything resembling a circuit DAG but not on
        adversarial graph-isomorphism gadgets, so the extracted bounds are
        trusted to exactly the degree the cache's inputs are (see
        :func:`~repro.store.fingerprint.dag_fingerprint`).  Returns
        ``None`` when no cached neighbour constrains this budget.
        """
        self.session["warm_queries"] += 1
        canonical, _ = self._dag_keys(dag)
        connection = self._require()
        rows = connection.execute(
            "SELECT key, budget, steps, minimal FROM results "
            "WHERE canonical = ? AND options = ? AND kind = 'pebble' "
            "AND outcome = 'solution' AND complete = 1 AND steps IS NOT NULL",
            (canonical, options_key(options)),
        ).fetchall()
        floor: tuple[int, int, str] | None = None
        ceiling: tuple[int, int, str] | None = None
        for key, row_budget, steps, minimal in rows:
            if row_budget >= budget and minimal and (floor is None or steps > floor[0]):
                floor = (steps, row_budget, key)
            if row_budget <= budget and (ceiling is None or steps < ceiling[0]):
                ceiling = (steps, row_budget, key)
        if floor is None and ceiling is None:
            return None
        if floor is not None and ceiling is not None and ceiling[0] < floor[0]:
            # Inconsistent neighbours can only come from a corrupted store;
            # trust neither side rather than steering the search wrong.
            return None
        # A warm read is a use: refresh the anchor rows' recency so LRU
        # eviction does not drop the store's most valuable neighbours just
        # because they are never re-fetched exactly.
        anchors = {source[2] for source in (floor, ceiling) if source is not None}
        with connection:
            connection.executemany(
                "UPDATE results SET last_used = ? WHERE key = ?",
                [(time.time(), key) for key in anchors],
            )
        self.session["warm_hits"] += 1
        return WarmStart(
            step_floor=floor[0] if floor else None,
            step_ceiling=ceiling[0] if ceiling else None,
            floor_budget=floor[1] if floor else None,
            ceiling_budget=ceiling[1] if ceiling else None,
        )

    # ------------------------------------------------------------------
    # compile reports
    # ------------------------------------------------------------------
    def get_compile(
        self, dag: Dag, *, network: "LogicNetwork | None" = None, **request: object
    ):
        """Return a cached :class:`~repro.circuits.pipeline.CompilationReport`.

        ``request`` mirrors the keyword surface of
        :func:`repro.store.fingerprint.compile_request_key` (minus the
        digests, which are derived from ``dag``/``network`` here).
        """
        from repro.circuits.pipeline import CompilationReport

        key = self._compile_key(dag, network, request)
        payload = self._fetch(key)
        if payload is None:
            return None
        return self._decode(key, payload, lambda data: CompilationReport.from_json(data, dag))

    def put_compile(
        self,
        dag: Dag,
        report,
        *,
        network: "LogicNetwork | None" = None,
        **request: object,
    ) -> bool:
        """Store a compilation report; only complete searches are kept."""
        if not report.search_complete:
            return False
        key = self._compile_key(dag, network, request)
        canonical, _ = self._dag_keys(dag)
        self._insert(
            key=key,
            canonical=canonical,
            options="-",  # compile rows never feed warm starts
            kind="compile",
            dag_name=dag.name,
            budget=int(report.budget),
            outcome=report.outcome,
            steps=report.steps,
            complete=report.search_complete,
            minimal=False,
            payload=json.dumps(report.to_json(), sort_keys=True),
        )
        return True

    def _compile_key(
        self, dag: Dag, network: "LogicNetwork | None", request: dict[str, object]
    ) -> str:
        _, exact = self._dag_keys(dag)
        return compile_request_key(exact_digest=exact, network=network, **request)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # row plumbing
    # ------------------------------------------------------------------
    def _decode(self, key: str, payload: str, decoder):
        """Deserialise a fetched payload, quarantining poison on failure.

        A truncated write, a bit-flipped file or a payload from a
        different library version must degrade to a cache *miss*, not an
        exception out of ``get`` — and the poisoned row is deleted so it
        cannot re-trip every future lookup of the same key.
        """
        try:
            return decoder(json.loads(payload))
        except Exception as error:  # noqa: BLE001 — any poison ⇒ miss
            _LOG.warning(
                "result store %s: dropping corrupt payload row %s…: %s",
                self.path,
                key[:16],
                error,
            )
            connection = self._require()
            with connection:
                connection.execute("DELETE FROM results WHERE key = ?", (key,))
            # _fetch already booked this lookup as a hit; it was not one.
            self.session["hits"] -= 1
            self.session["misses"] += 1
            self.session["corrupt"] += 1
            return None

    def _fetch(self, key: str) -> "str | None":
        self.session["gets"] += 1
        connection = self._require()
        row = connection.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self.session["misses"] += 1
            return None
        with connection:
            connection.execute(
                "UPDATE results SET hits = hits + 1, last_used = ? WHERE key = ?",
                (time.time(), key),
            )
        self.session["hits"] += 1
        return row[0]

    def _insert(self, **row: object) -> None:
        connection = self._require()
        now = time.time()
        with connection:
            # Upsert, not INSERT OR REPLACE: two workers racing on the same
            # uncached request both put on miss, and a blind replace would
            # zero the row's accumulated ``hits`` (which `cache stats` and
            # the CI smoke assert on) and forge its ``created`` time.
            connection.execute(
                "INSERT INTO results (key, canonical, options, kind, "
                "dag_name, budget, outcome, steps, complete, minimal, payload, "
                "created, last_used, hits) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0) "
                "ON CONFLICT(key) DO UPDATE SET "
                "outcome = excluded.outcome, steps = excluded.steps, "
                "complete = excluded.complete, minimal = excluded.minimal, "
                "payload = excluded.payload, last_used = excluded.last_used",
                (
                    row["key"],
                    row["canonical"],
                    row["options"],
                    row["kind"],
                    row["dag_name"],
                    row["budget"],
                    row["outcome"],
                    row["steps"],
                    int(bool(row["complete"])),
                    int(bool(row["minimal"])),
                    row["payload"],
                    now,
                    now,
                ),
            )
        self.session["puts"] += 1
        if self.max_entries is not None:
            self.evict(self.max_entries)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def evict(self, keep: int) -> int:
        """Shrink to at most ``keep`` rows, dropping least-recently-used.

        Returns the number of rows evicted.
        """
        if keep < 0:
            raise StoreError("keep must be >= 0")
        connection = self._require()
        with connection:
            cursor = connection.execute(
                "DELETE FROM results WHERE key IN ("
                "SELECT key FROM results ORDER BY last_used DESC, key "
                "LIMIT -1 OFFSET ?)",
                (keep,),
            )
        evicted = cursor.rowcount if cursor.rowcount > 0 else 0
        self.session["evictions"] += evicted
        return evicted

    def clear(self) -> int:
        """Drop every row; returns the number of entries removed."""
        connection = self._require()
        with connection:
            cursor = connection.execute("DELETE FROM results")
        return cursor.rowcount if cursor.rowcount > 0 else 0

    def stats(self) -> StoreStats:
        """Snapshot of contents (row counts, hit totals) + session traffic."""
        connection = self._require()
        entries, total_hits = connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(hits), 0) FROM results"
        ).fetchone()
        by_kind = dict(
            connection.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            ).fetchall()
        )
        size = 0
        if self.path != ":memory:":
            try:
                size = Path(self.path).stat().st_size
            except OSError:
                size = 0
        return StoreStats(
            path=self.path,
            entries=entries,
            pebble_entries=by_kind.get("pebble", 0),
            compile_entries=by_kind.get("compile", 0),
            total_hits=total_hits,
            size_bytes=size,
            session=dict(self.session),
        )
