"""Content-addressed result store (cache + warm-start substrate).

The store layer gives the pebbling stack memory across solves, processes
and runs:

* :mod:`repro.store.fingerprint` — isomorphism-invariant DAG fingerprints
  (Weisfeiler–Leman colour refinement), label-sensitive exact digests,
  network digests, and the content addresses of pebble/compile requests;
* :mod:`repro.store.store` — :class:`ResultStore`, the SQLite-backed
  cache with exact ``get``/``put``, LRU eviction, statistics, and
  *warm-start extraction* (certified step bounds transferred between
  budgets of the same DAG).

Everything is opt-in: the solver, portfolio, pipeline and CLI accept a
store (or a database path) and behave exactly as before without one.
"""

from repro.store.fingerprint import (
    compile_request_key,
    dag_fingerprint,
    exact_dag_digest,
    network_digest,
    options_key,
    pebble_request_key,
)
from repro.store.store import ResultStore, StoreError, StoreStats, WarmStart

__all__ = [
    "ResultStore",
    "StoreError",
    "StoreStats",
    "WarmStart",
    "compile_request_key",
    "dag_fingerprint",
    "exact_dag_digest",
    "network_digest",
    "options_key",
    "pebble_request_key",
]
