"""Canonical content fingerprints for DAGs, networks and solve requests.

The result store addresses cached results by *content*, not by name, so
two kinds of digest are needed:

* :func:`dag_fingerprint` — an **isomorphism-invariant** fingerprint of a
  :class:`~repro.dag.graph.Dag`: relabelling the nodes or rebuilding the
  graph in a different insertion order yields the same value, while any
  structural change (an edge, an operation label, a node weight, the
  output set) changes it.  It is computed by Weisfeiler–Leman colour
  refinement: every node starts with a colour hashing its local signature
  (operation, weight, output flag, fan-in/fan-out degrees) and is
  repeatedly re-coloured with the sorted colours of its dependencies and
  dependents until the colour partition stabilises; the fingerprint hashes
  the final colour multiset.  Warm-start extraction keys on it, so bound
  information transfers between any two isomorphic instances.

* :func:`exact_dag_digest` — a **label-sensitive** digest of the same
  graph (node names included).  Exact result reuse requires it: a cached
  strategy stores node names, which are only meaningful on a DAG with the
  same labelling.  Two isomorphic DAGs share a fingerprint but not
  necessarily an exact digest.

:func:`network_digest` fingerprints a :class:`~repro.logic.network.LogicNetwork`
(gate functions included), which the compilation cache folds into its key —
two workloads with identical pebbling DAGs but different gate-level
semantics must not share compiled circuits.

All digests are hex SHA-256 strings, stable across processes and Python
versions (no use of the salted builtin ``hash``).
"""

from __future__ import annotations

import hashlib
import json

from repro.dag.graph import Dag
from repro.logic.network import LogicNetwork
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import SearchStrategy

#: Bump when a digest definition changes: every fingerprint embeds it, so
#: stores written by older code simply miss instead of returning stale or
#: differently-keyed payloads.
FINGERPRINT_VERSION = 1


def _digest(*parts: object) -> str:
    """SHA-256 over a canonical JSON rendering of ``parts``."""
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def dag_fingerprint(dag: Dag) -> str:
    """Isomorphism-invariant fingerprint of a DAG (see module docstring).

    Runs in ``O(rounds * (V + E))`` with at most ``V`` refinement rounds
    (the colour partition can only refine that often); on the bundled
    workloads it stabilises within the DAG depth.

    Soundness boundary: isomorphic DAGs *always* hash equal, but 1-WL is a
    known-incomplete isomorphism test — adversarially constructed
    non-isomorphic graphs (CFI-style gadgets, some degree-regular
    families) can collide.  Operation labels, weights, output flags and
    edge direction make collisions vanishingly unlikely on circuit DAGs,
    and the store only ever keys *advisory bounds* on this digest (exact
    result reuse goes through the label-sensitive
    :func:`exact_dag_digest`), but a deliberately crafted collision could
    transfer a step bound between unrelated DAGs — do not feed the cache
    adversarial workloads.
    """
    nodes = dag.nodes()
    outputs = set(dag.outputs())
    colors: dict[object, str] = {}
    for node in nodes:
        record = dag.node(node)
        colors[node] = _digest(
            "node",
            FINGERPRINT_VERSION,
            record.operation,
            repr(record.weight),
            node in outputs,
            len(dag.dependencies(node)),
            len(dag.dependents(node)),
        )
    distinct = len(set(colors.values()))
    for _ in range(len(nodes)):
        refined = {
            node: _digest(
                "refine",
                colors[node],
                sorted(colors[dep] for dep in dag.dependencies(node)),
                sorted(colors[dep] for dep in dag.dependents(node)),
            )
            for node in nodes
        }
        colors = refined
        now_distinct = len(set(colors.values()))
        if now_distinct == distinct:
            break  # the partition stopped refining
        distinct = now_distinct
    return _digest("dag", FINGERPRINT_VERSION, len(nodes), sorted(colors.values()))


def exact_dag_digest(dag: Dag) -> str:
    """Label-sensitive digest of a DAG: names, edges, operations, weights.

    Unlike :func:`dag_fingerprint` this changes under relabelling (and
    includes ``dag.name``), so a match guarantees a cached strategy's node
    names are directly valid on the queried graph.
    """
    rows = sorted(
        (
            str(node),
            dag.node(node).operation,
            repr(dag.node(node).weight),
            sorted(str(dep) for dep in dag.dependencies(node)),
        )
        for node in dag.nodes()
    )
    return _digest(
        "exact-dag",
        FINGERPRINT_VERSION,
        dag.name,
        rows,
        sorted(str(output) for output in dag.outputs()),
    )


def network_digest(network: LogicNetwork) -> str:
    """Label-sensitive digest of a logic network (gate functions included)."""
    return _digest(
        "network",
        FINGERPRINT_VERSION,
        network.name,
        list(network.inputs),
        sorted(
            (gate.output, gate.gate_type.value, list(gate.fanins))
            for gate in network.gates()
        ),
        list(network.outputs),
    )


def options_key(options: EncodingOptions) -> str:
    """Digest of the *game semantics* of an encoding configuration.

    Two searches whose options share this key play the same pebbling game
    (same move/idle/weight rules), so certified step bounds transfer
    between them.  The cardinality encoding is deliberately excluded — it
    changes the CNF, never the set of legal strategies.
    """
    return _digest(
        "options",
        FINGERPRINT_VERSION,
        options.weighted,
        options.max_moves_per_step,
        options.forbid_idle_steps,
    )


def pebble_request_key(
    *,
    exact_digest: str,
    budget: int,
    options: EncodingOptions,
    search: SearchStrategy,
    incremental: bool,
    initial_steps: int | None,
    max_steps: int | None,
    step_floor: int | None,
) -> str:
    """Content address of one exact pebbling request.

    Everything that can influence the returned result object is included —
    the full encoding options (cardinality too: it shapes per-attempt
    solver statistics), the search schedule signature and seeds, and the
    engine mode.  The time limit is *excluded*: only searches that ran to
    their natural end are stored, and those are time-limit-independent.
    The SAT *backend* is excluded too (``EncodingOptions.backend`` is
    deliberately not hashed): every backend returns the same verdicts and
    step counts, so results transfer across backends — the stored payload
    records its producer as metadata instead.
    """
    return _digest(
        "pebble-request",
        FINGERPRINT_VERSION,
        exact_digest,
        budget,
        options.cardinality.value,
        options.max_moves_per_step,
        options.forbid_idle_steps,
        options.weighted,
        search.signature,
        incremental,
        initial_steps,
        max_steps,
        step_floor,
    )


def compile_request_key(
    *,
    exact_digest: str,
    network: LogicNetwork | None,
    budget: int,
    weighted: bool,
    decompose: bool,
    single_move: bool,
    cardinality: str,
    schedule: str,
    step_increment: int | None,
    max_steps: int | None,
    verify: bool,
    max_verify_patterns: int,
    verify_seed: int,
    workload: str | None,
    name: str | None,
) -> str:
    """Content address of one end-to-end compilation request."""
    return _digest(
        "compile-request",
        FINGERPRINT_VERSION,
        exact_digest,
        network_digest(network) if network is not None else None,
        budget,
        weighted,
        decompose,
        single_move,
        cardinality,
        schedule,
        step_increment,
        max_steps,
        verify,
        max_verify_patterns,
        verify_seed,
        workload,
        name,
    )
