"""Asynchronous serving layer over the pebbling/compile stack.

:mod:`repro.service.scheduler` provides :class:`PebblingService`, an
asyncio job scheduler with in-flight request deduplication, cache-first
answering through :class:`repro.store.ResultStore`, and batching of
queued misses into the portfolio process pool — plus the JSON
request-file runner behind the CLI's ``serve`` subcommand.
"""

from repro.service.scheduler import (
    JobRequest,
    JobResult,
    PebblingService,
    ServiceError,
    ServiceOverloadError,
    ServiceStats,
    parse_request_file,
    run_request_file,
)

__all__ = [
    "JobRequest",
    "JobResult",
    "PebblingService",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceStats",
    "parse_request_file",
    "run_request_file",
]
