"""Asynchronous pebbling service: dedup, batching, cache-first answering.

:class:`PebblingService` is the serving layer the ROADMAP's north star
asks for: an :mod:`asyncio` front door that accepts pebble / compile /
sweep requests and drives them through the existing layers with three
amortisation tricks stacked on top of each other:

* **in-flight deduplication** — two identical requests submitted while the
  first is still running share one future (and therefore one solve);
* **cache-first answering** — with a :class:`~repro.store.ResultStore`
  attached, an exact repeat of a previously *completed* request is
  answered straight from the database without touching a SAT solver;
* **request batching** — queued misses are drained into one batch per
  dispatch round and fanned out over the portfolio pool
  (:func:`repro.pebbling.portfolio.run_portfolio`), so concurrent traffic
  shares worker processes instead of racing for them.

Requests are plain frozen dataclasses (:class:`JobRequest`), so the whole
service is drivable from JSON: :func:`run_request_file` powers the CLI's
``serve --json requests.json`` mode and doubles as the programmatic batch
entry point.  A ``sweep`` request expands into per-budget ``pebble``
sub-requests *through the same submit path*, which means two overlapping
sweeps deduplicate their shared budgets and fill the same cache.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.circuits.pipeline import compile_cache_request, compile_workload
from repro.obs import metrics as _metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import TraceContext
from repro.pebbling.portfolio import (
    PortfolioHealth,
    PortfolioTask,
    RetryPolicy,
    record_from_result,
    run_portfolio,
    task_solve_parameters,
    _execute_task,
)
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.store.store import ResultStore
from repro.workloads.registry import load_workload_network, load_workload_or_path


class ServiceError(ReproError):
    """Raised for malformed service requests or misuse of the scheduler."""


class ServiceOverloadError(ServiceError):
    """Raised by :meth:`PebblingService.submit` when admission control sheds.

    A bounded service under overload must fail *fast and loud* at the
    door, not queue unboundedly and time every request out; callers can
    catch exactly this class to retry elsewhere/later.
    :meth:`PebblingService.run` converts sheds into per-request error
    results so a gathered batch degrades instead of raising.
    """


@dataclass(frozen=True)
class JobRequest:
    """One unit of service traffic, as hashable plain data.

    ``kind`` selects the pipeline: ``"pebble"`` (SAT pebbling search,
    needs ``budget``), ``"compile"`` (end-to-end compilation, needs
    ``budget``) or ``"sweep"`` (one pebble search per budget of
    ``[min_budget, max_budget]``; both default to the workload's feasible
    range).  Identical requests — field-for-field — deduplicate in flight
    and share cache entries.
    """

    kind: str = "pebble"
    workload: str = ""
    budget: int | None = None
    min_budget: int | None = None
    max_budget: int | None = None
    scale: float = 1.0
    single_move: bool = False
    weighted: bool = False
    cardinality: str = "sequential"
    schedule: str = "linear"
    step_increment: int = 1
    time_limit: float | None = 60.0
    max_steps: int | None = None
    decompose: bool = False
    verify: bool = True
    #: Incremental-SAT backend spec (see :mod:`repro.sat.backend`).  Part
    #: of request identity for dedup, but NOT of the store's content
    #: address — cached results transfer across backends and record their
    #: producer in metadata.
    backend: str = "cdcl"
    #: Per-request wall-clock budget in seconds, measured from submission.
    #: When it runs out the search is preempted *gracefully*: the SAT time
    #: limit is clamped to what is left, so the answer degrades to an
    #: anytime partial (checkpointed bounds + best witness) instead of an
    #: error.  ``None`` means no deadline.  Not part of the store's content
    #: address (a deadline is about the caller's patience, not the
    #: instance).
    deadline: float | None = None
    #: Cube-and-conquer width for the request's step search (``0`` =
    #: sequential; ``N > 1`` splits the instance into an exhaustive cube
    #: cover, see :mod:`repro.pebbling.cubes`).  Part of request identity
    #: for dedup, but like ``backend`` NOT of the store's content address:
    #: a merged cube answer is interchangeable with a sequential one.
    cubes: int = 0
    #: Trace context stamped by :meth:`PebblingService.submit` when tracing
    #: is active, so solver spans from pool workers parent under this
    #: request's ``service.request`` span.  Excluded from equality/hash
    #: (dedup ignores it), from :meth:`as_dict` and from the JSON fields
    #: :meth:`from_dict` accepts — it is runtime plumbing, not request data.
    trace: TraceContext | None = field(default=None, compare=False, repr=False)

    def validate(self) -> None:
        if self.kind not in ("pebble", "compile", "sweep"):
            raise ServiceError(
                f"unknown request kind {self.kind!r}; "
                "expected 'pebble', 'compile' or 'sweep'"
            )
        if not isinstance(self.backend, str) or not self.backend.strip():
            raise ServiceError(
                "a request's backend must be a registry backend spec "
                f"string, got {self.backend!r}"
            )
        if not self.workload:
            raise ServiceError("a request needs a workload")
        if self.kind in ("pebble", "compile") and self.budget is None:
            raise ServiceError(f"a {self.kind!r} request needs a budget")
        if self.kind == "sweep" and self.budget is not None:
            raise ServiceError(
                "a 'sweep' request takes min_budget/max_budget, not budget"
            )
        if (
            self.min_budget is not None
            and self.max_budget is not None
            and self.max_budget < self.min_budget
        ):
            raise ServiceError("max_budget must be >= min_budget")
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError("a request deadline must be > 0 seconds (or null)")
        if self.cubes < 0:
            raise ServiceError("a request's cubes must be >= 0")

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "JobRequest":
        """Build a request from parsed JSON, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ServiceError(
                f"a request must be a JSON object, got {type(data).__name__}"
            )
        known = {entry.name for entry in fields(cls)} - {"trace"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServiceError(
                f"unknown request fields {unknown}; valid fields: {sorted(known)}"
            )
        request = cls(**data)  # type: ignore[arg-type]
        request.validate()
        return request

    def as_dict(self) -> dict[str, object]:
        data = asdict(self)
        data.pop("trace", None)
        return data

    def to_task(self) -> PortfolioTask:
        """The portfolio task equivalent of a ``pebble`` request."""
        assert self.budget is not None
        return PortfolioTask(
            workload=self.workload,
            pebbles=self.budget,
            scale=self.scale,
            single_move=self.single_move,
            cardinality=self.cardinality,
            schedule=self.schedule,
            step_increment=self.step_increment,
            time_limit=self.time_limit,
            max_steps=self.max_steps,
            weighted=self.weighted,
            backend=self.backend,
            cubes=self.cubes,
            trace=self.trace,
        )


@dataclass
class JobResult:
    """The service's answer to one request."""

    request: JobRequest
    status: str  # "ok" | "error"
    source: str  # "cache" | "solver" | "aggregate"
    payload: dict[str, object] | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> dict[str, object]:
        return {
            "request": self.request.as_dict(),
            "status": self.status,
            "source": self.source,
            "payload": self.payload,
            "error": self.error,
        }


@dataclass
class ServiceStats:
    """Traffic counters of one service instance.

    Mirrored into the process-wide :mod:`repro.obs.metrics` registry as
    ``repro_service_*`` instruments; prefer reading those (or the
    ``metrics`` key of :meth:`PebblingService.health`) — this per-instance
    dataclass stays for exact request accounting, but its duplicated
    top-level copies in :meth:`PebblingService.health` are deprecated and
    will be dropped after one release.
    """

    submitted: int = 0
    completed: int = 0
    errors: int = 0
    deduplicated: int = 0
    cache_hits: int = 0
    solver_jobs: int = 0
    batches: int = 0
    expanded: int = 0  # sweep sub-requests spawned
    sheds: int = 0  # requests rejected by admission control
    preempted: int = 0  # deadline cut a search short (anytime answer)
    partial_answers: int = 0  # answers carrying an anytime partial snapshot
    retries: int = 0  # worker retry attempts spent (via RetryPolicy)
    pool_rebuilds: int = 0  # broken process pools rebuilt

    def as_dict(self) -> dict[str, int]:
        return dict(asdict(self))


class PebblingService:
    """Async scheduler over the pebbling/compile stack (see module doc).

    ``store`` may be ``None`` (no caching), a database path, or an open
    :class:`~repro.store.ResultStore`.  ``workers`` is the portfolio width
    for batched misses (the portfolio's single-core inline fallback
    applies).  ``batch_window`` is how long the dispatcher waits after the
    first queued miss for stragglers to join the batch; ``0`` batches only
    what is already queued.  ``max_queue`` bounds the dispatch queue —
    admission control sheds excess submissions with
    :class:`ServiceOverloadError` instead of queueing them to time out.
    ``retry`` applies a :class:`~repro.pebbling.portfolio.RetryPolicy`
    inside every solver job; :meth:`health` reports the resulting
    fault-tolerance counters.

    Use as an async context manager, or call :meth:`close` when done —
    results are awaited through :meth:`submit`.  The service itself is
    single-loop; the blocking work runs in the default executor, so the
    event loop stays responsive for new submissions (which is what makes
    dedup-while-in-flight and batching observable at all).
    """

    def __init__(
        self,
        *,
        store: "ResultStore | str | None" = None,
        workers: int = 1,
        batch_window: float = 0.01,
        max_queue: int | None = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ServiceError("max_queue must be >= 1 (or None for unbounded)")
        if isinstance(store, str):
            store = ResultStore(store)
            self._owns_store = True
        else:
            self._owns_store = False
        self.store = store
        #: Path shipped to portfolio worker processes; in-memory stores are
        #: process-local, so pool workers then run uncached and the
        #: service's own (in-process) cache checks still apply.
        self.store_path = (
            store.path if store is not None and store.path != ":memory:" else None
        )
        self.workers = workers
        self.batch_window = batch_window
        self.max_queue = max_queue
        self.retry = retry
        self.stats = ServiceStats()
        self._health = PortfolioHealth()
        self._queue: asyncio.Queue[tuple[JobRequest, asyncio.Future, float]] = (
            asyncio.Queue()
        )
        self._inflight: dict[JobRequest, asyncio.Future] = {}
        self._dispatcher: asyncio.Task | None = None
        self._closed = False
        # A running service turns the process-wide metrics registry on:
        # health() is the service's observability surface and an empty
        # snapshot would defeat it.  Enabling is idempotent and sticky.
        _metrics.enable()

    def _saturation_gauges(self) -> None:
        """Refresh the queue-depth / in-flight gauges (cheap, lock-free)."""
        _metrics.gauge(
            "repro_service_queue_depth", "Requests waiting for a dispatch round"
        ).set(self._queue.qsize())
        _metrics.gauge(
            "repro_service_in_flight", "Admitted requests not yet answered"
        ).set(len(self._inflight))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "PebblingService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Stop the dispatcher and (if owned) close the store.

        Requests still queued or mid-flight have their futures failed with
        :class:`ServiceError` — a concurrent ``submit`` must raise, not
        await a result that will never arrive.
        """
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        while not self._queue.empty():
            self._queue.get_nowait()
        for future in self._inflight.values():
            if not future.done():
                future.set_exception(
                    ServiceError("the service was closed with requests pending")
                )
        self._inflight.clear()
        if self._owns_store and self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, request: JobRequest) -> JobResult:
        """Schedule one request and await its result.

        Identical in-flight requests share a single execution; errors come
        back as ``status="error"`` results, never as raised exceptions
        (one poisoned request must not break a gathered batch) — with one
        deliberate exception: when ``max_queue`` is set and the queue is
        full, admission control raises :class:`ServiceOverloadError`
        *before* enqueueing (load shedding must be distinguishable from a
        request that ran and failed).  Deduplicated requests piggyback on
        in-flight work and are never shed.
        """
        if self._closed:
            raise ServiceError("the service is closed")
        self.stats.submitted += 1
        _metrics.counter(
            "repro_service_requests_total", "Requests submitted to the service"
        ).inc()
        try:
            request.validate()
        except ServiceError as error:
            self.stats.errors += 1
            return JobResult(request, "error", "aggregate", error=str(error))
        if request.kind == "sweep":
            return await self._submit_sweep(request)
        shared = self._inflight.get(request)
        if shared is not None:
            self.stats.deduplicated += 1
            _metrics.counter(
                "repro_service_dedup_total", "Requests served by in-flight dedup"
            ).inc()
            obs_trace.event(
                "service.dedup",
                kind=request.kind,
                workload=request.workload,
                budget=request.budget,
            )
            return await shared
        if self.max_queue is not None and self._queue.qsize() >= self.max_queue:
            self.stats.sheds += 1
            _metrics.counter(
                "repro_service_sheds_total", "Requests shed by admission control"
            ).inc()
            obs_trace.event(
                "service.shed",
                kind=request.kind,
                workload=request.workload,
                queue_depth=self._queue.qsize(),
                max_queue=self.max_queue,
            )
            raise ServiceOverloadError(
                f"service queue is full ({self._queue.qsize()} >= "
                f"max_queue={self.max_queue}); request shed"
            )
        # One span per admitted request, covering queueing + solving.  The
        # trace context snapshotted *inside* the span is stamped onto the
        # request, so solver spans from pool workers (or the inline path)
        # parent under it.  Concurrent submits interleave save/restore of
        # the tracer's current-span slot; that can momentarily misattribute
        # parentage of records emitted between switches, but every parent
        # id still resolves because parent span records are always written.
        with obs_trace.span(
            "service.request",
            kind=request.kind,
            workload=request.workload,
            budget=request.budget,
            backend=request.backend,
        ) as req_span:
            if request.trace is None:
                ctx = obs_trace.current_context()
                if ctx is not None:
                    request = replace(request, trace=ctx)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._inflight[request] = future
            self._queue.put_nowait((request, future, time.monotonic()))
            self._saturation_gauges()
            if self._dispatcher is None:
                self._dispatcher = asyncio.create_task(self._dispatch_loop())
            result = await future
            req_span.set(status=result.status, source=result.source)
            return result

    async def run(self, requests: Iterable[JobRequest]) -> list[JobResult]:
        """Submit many requests concurrently; results in request order.

        Load sheds surface here as ``status="error"`` results with source
        ``"shed"`` — a gathered batch degrades per-request instead of
        raising out of the whole gather.
        """

        async def _guarded(request: JobRequest) -> JobResult:
            try:
                return await self.submit(request)
            except ServiceOverloadError as error:
                return JobResult(request, "error", "shed", error=str(error))

        return list(await asyncio.gather(*(_guarded(r) for r in requests)))

    def health(self) -> dict[str, object]:
        """Structured liveness/saturation snapshot of this service.

        Cheap to call at any time (no locks, no solver work): current
        queue depth and in-flight count, the admission/retry configuration,
        the cumulative fault-tolerance counters (under ``stats``), and —
        under ``metrics`` — the process-wide :mod:`repro.obs.metrics`
        snapshot covering every layer (``repro_service_*``,
        ``repro_portfolio_*``, ``repro_sat_*``, ``repro_solver_*``).

        The top-level duplicates of individual ``stats`` counters
        (``sheds``/``preempted``/``partial_answers``/``retries``/
        ``pool_rebuilds``) were deprecated for one release and are gone:
        ``stats`` holds the exact service counters and ``metrics`` the
        cross-layer registry.
        """
        self._saturation_gauges()
        return {
            "queue_depth": self._queue.qsize(),
            "in_flight": len(self._inflight),
            "workers": self.workers,
            "max_queue": self.max_queue,
            "stats": self.stats.as_dict(),
            "metrics": _metrics.snapshot(),
        }

    # ------------------------------------------------------------------
    # sweep expansion
    # ------------------------------------------------------------------
    async def _submit_sweep(self, request: JobRequest) -> JobResult:
        try:
            low, high = await asyncio.get_running_loop().run_in_executor(
                None, self._sweep_bounds, request
            )
        except Exception as error:  # noqa: BLE001 — unknown workload and friends
            self.stats.errors += 1
            return JobResult(request, "error", "aggregate", error=str(error))
        obs_trace.event(
            "service.sweep",
            workload=request.workload,
            min_budget=low,
            max_budget=high,
        )
        children = [
            JobRequest(
                kind="pebble",
                workload=request.workload,
                budget=budget,
                scale=request.scale,
                single_move=request.single_move,
                weighted=request.weighted,
                cardinality=request.cardinality,
                schedule=request.schedule,
                step_increment=request.step_increment,
                time_limit=request.time_limit,
                max_steps=request.max_steps,
                backend=request.backend,
                deadline=request.deadline,
                trace=request.trace,
            )
            for budget in range(low, high + 1)
        ]
        self.stats.expanded += len(children)
        results = await self.run(children)
        minimum = None
        for child, result in zip(children, results):
            if result.ok and result.payload and result.payload.get("outcome") == "solution":
                if minimum is None or child.budget < minimum:
                    minimum = child.budget
        payload = {
            "min_budget": low,
            "max_budget": high,
            "minimum_feasible_budget": minimum,
            "points": [result.as_dict() for result in results],
        }
        failed = sum(1 for result in results if not result.ok)
        if failed:
            # Infeasible budgets are ordinary sweep points; a child that
            # *errored* (crashed worker, bad workload) is a failed sweep —
            # mirror pebble-batch, whose exit code flags any error record.
            self.stats.errors += 1
            return JobResult(
                request,
                "error",
                "aggregate",
                payload=payload,
                error=f"{failed} of {len(results)} budget searches failed",
            )
        self.stats.completed += 1
        return JobResult(request, "ok", "aggregate", payload=payload)

    def _sweep_bounds(self, request: JobRequest) -> tuple[int, int]:
        if request.min_budget is not None and request.max_budget is not None:
            return request.min_budget, request.max_budget
        dag = load_workload_or_path(request.workload, scale=request.scale)
        low = request.min_budget
        high = request.max_budget
        if low is None:
            low = ReversiblePebblingSolver(dag).minimum_pebbles_lower_bound()
        if high is None:
            from repro.pebbling.bennett import eager_bennett_strategy

            baseline = eager_bennett_strategy(dag)
            high = (
                int(baseline.max_weight) if request.weighted else baseline.max_pebbles
            )
        return low, max(low, high)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            if self.batch_window > 0:
                # Let concurrently submitted requests join this round.
                await asyncio.sleep(self.batch_window)
            batch = [first]
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            self.stats.batches += 1
            _metrics.counter(
                "repro_service_batches_total", "Dispatch rounds executed"
            ).inc()
            self._saturation_gauges()
            batch_started = time.monotonic()
            try:
                outcomes = await asyncio.get_running_loop().run_in_executor(
                    None,
                    self._process_batch,
                    [(request, enqueued) for request, _, enqueued in batch],
                )
            except Exception as error:  # noqa: BLE001 — defensive: never kill the loop
                outcomes = [
                    JobResult(request, "error", "solver", error=str(error))
                    for request, _, _ in batch
                ]
            _metrics.histogram(
                "repro_service_batch_seconds", "Wall time of one dispatch round"
            ).observe(time.monotonic() - batch_started)
            for (request, future, _), outcome in zip(batch, outcomes):
                if outcome.source == "cache":
                    self.stats.cache_hits += 1
                if outcome.ok:
                    self.stats.completed += 1
                else:
                    self.stats.errors += 1
                self._inflight.pop(request, None)
                if not future.cancelled():
                    future.set_result(outcome)
            self._saturation_gauges()

    # -- blocking section (runs in the default executor) -------------------
    def _deadline_task(
        self, request: JobRequest, enqueued: float
    ) -> PortfolioTask:
        """The portfolio task of a request, with its deadline folded in.

        The time the request spent *queued* counts against its deadline;
        whatever remains clamps the task's SAT time budget (floored at a
        token 50 ms so an already-expired request still returns a
        checkpointed partial instead of an instant empty timeout).  This is
        graceful preemption: the search is bounded, never cancelled, so
        the anytime machinery always gets to report progress.
        """
        task = request.to_task()
        if request.deadline is None:
            return task
        remaining = max(request.deadline - (time.monotonic() - enqueued), 0.05)
        if task.time_limit is None or remaining < task.time_limit:
            task = replace(task, time_limit=remaining)
        return task

    def _process_batch(
        self, items: Sequence[tuple[JobRequest, float]]
    ) -> list[JobResult]:
        """Answer a batch: cache first, then one portfolio fan-out."""
        outcomes: dict[int, JobResult] = {}
        pebble_misses: list[tuple[int, JobRequest, float]] = []
        for index, (request, enqueued) in enumerate(items):
            try:
                if request.kind == "compile":
                    outcomes[index] = self._run_compile(request)
                else:
                    hit = self._cached_pebble(request)
                    if hit is not None:
                        outcomes[index] = hit
                    else:
                        pebble_misses.append((index, request, enqueued))
            except Exception as error:  # noqa: BLE001 — per-request containment
                outcomes[index] = JobResult(request, "error", "solver", error=str(error))
        if pebble_misses:
            tasks = [
                self._deadline_task(request, enqueued)
                for _, request, enqueued in pebble_misses
            ]
            self.stats.solver_jobs += len(tasks)
            _metrics.counter(
                "repro_service_solver_jobs_total", "Batched misses sent to solvers"
            ).inc(len(tasks))
            if self.store is not None and self.store_path is None:
                # In-memory store: pool workers could not see it, so run the
                # batch inline against the live store object instead.
                records = [
                    _execute_task(task, self.store, self.retry) for task in tasks
                ]
                self._health.absorb_records(records)
            else:
                records = run_portfolio(
                    tasks,
                    jobs=self.workers,
                    store_path=self.store_path,
                    retry=self.retry,
                    health=self._health,
                )
            self.stats.retries = self._health.retry_attempts
            self.stats.pool_rebuilds = self._health.pool_rebuilds
            for (index, request, _), record in zip(pebble_misses, records):
                if record.partial is not None:
                    self.stats.partial_answers += 1
                    _metrics.counter(
                        "repro_service_partial_answers_total",
                        "Answers carrying an anytime partial snapshot",
                    ).inc()
                if (
                    request.deadline is not None
                    and record.outcome != "error"
                    and not record.complete
                ):
                    self.stats.preempted += 1
                    _metrics.counter(
                        "repro_service_preempted_total",
                        "Searches cut short by a request deadline",
                    ).inc()
                    obs_trace.event(
                        "service.preempt",
                        workload=request.workload,
                        budget=request.budget,
                        deadline=request.deadline,
                    )
                if record.outcome == "error":
                    outcomes[index] = JobResult(
                        request, "error", "solver", error=record.error
                    )
                else:
                    outcomes[index] = JobResult(
                        request, "ok", "solver", payload=record.as_dict()
                    )
        return [outcomes[index] for index in range(len(items))]

    def _cached_pebble(self, request: JobRequest) -> "JobResult | None":
        """Answer a pebble request from the store without touching a solver."""
        if self.store is None:
            return None
        task = request.to_task()
        dag = load_workload_or_path(task.workload, scale=task.scale)
        parameters = task_solve_parameters(task)
        result = self.store.get_pebble(dag, **parameters)
        if result is None:
            return None
        _metrics.counter(
            "repro_service_cache_hits_total", "Requests answered from the store"
        ).inc()
        obs_trace.event(
            "service.cache_hit",
            kind=request.kind,
            workload=request.workload,
            budget=request.budget,
            outcome=result.outcome.value,
        )
        payload = record_from_result(task, result).as_dict()
        return JobResult(request, "ok", "cache", payload=payload)

    def _run_compile(self, request: JobRequest) -> JobResult:
        """Run (or cache-answer) one compile request in the batch thread.

        ``compile_workload`` does its own store lookup with the same
        content address, so a repeat compiles nothing and solves nothing;
        the source is attributed by probing the cache first.
        """
        cached = None
        if self.store is not None:
            dag = load_workload_or_path(request.workload, scale=request.scale)
            network = load_workload_network(request.workload, scale=request.scale)
            cached = self.store.get_compile(
                dag,
                network=network,
                **compile_cache_request(
                    pebbles=request.budget,
                    weighted=request.weighted,
                    decompose=request.decompose,
                    single_move=request.single_move,
                    cardinality=request.cardinality,
                    schedule=request.schedule,
                    step_increment=request.step_increment,
                    max_steps=request.max_steps,
                    verify=request.verify,
                    workload=request.workload,
                ),
            )
        if cached is not None:
            return JobResult(request, "ok", "cache", payload=cached.as_dict())
        report = compile_workload(
            request.workload,
            pebbles=request.budget,
            scale=request.scale,
            weighted=request.weighted,
            decompose=request.decompose,
            single_move=request.single_move,
            cardinality=request.cardinality,
            schedule=request.schedule,
            step_increment=(
                request.step_increment if request.step_increment != 1 else None
            ),
            time_limit=request.time_limit,
            max_steps=request.max_steps,
            verify=request.verify,
            backend=request.backend,
            store=self.store,
        )
        return JobResult(request, "ok", "solver", payload=report.as_dict())


# ---------------------------------------------------------------------------
# request-file mode (the CLI's ``serve --json``)
# ---------------------------------------------------------------------------
def _request_file_entries(
    path: "str | Path",
    *,
    default_backend: str | None = None,
    default_deadline: float | None = None,
    default_cubes: int | None = None,
) -> list[object]:
    """Raw entries of a request file; file-level problems always raise.

    An unreadable file, invalid JSON, or a top-level shape that is neither
    ``{"requests": [...]}`` nor a bare list is a caller error no matter how
    lenient entry handling is; *per-entry* strictness is the caller's
    choice (:func:`parse_request_file` raises, :func:`run_request_file`
    degrades to structured error records).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ServiceError(f"cannot read request file {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request file {path} is not valid JSON: {exc}") from exc
    if isinstance(data, dict):
        entries = data.get("requests")
        if not isinstance(entries, list):
            raise ServiceError(
                'a request file object needs a "requests" list '
                '(or use a bare JSON list of requests)'
            )
    elif isinstance(data, list):
        entries = data
    else:
        raise ServiceError("a request file must hold a JSON object or list")
    defaults: dict[str, object] = {}
    if default_backend is not None:
        defaults["backend"] = default_backend
    if default_deadline is not None:
        defaults["deadline"] = default_deadline
    if default_cubes is not None:
        defaults["cubes"] = default_cubes
    if defaults:
        entries = [
            {**{k: v for k, v in defaults.items() if k not in entry}, **entry}
            if isinstance(entry, dict)
            else entry
            for entry in entries
        ]
    return entries


def parse_request_file(
    path: "str | Path", *, default_backend: str | None = None
) -> list[JobRequest]:
    """Parse a JSON request file: ``{"requests": [...]}`` or a bare list.

    ``default_backend`` (the CLI's ``serve --backend``) applies to every
    request that does not name its own ``backend`` field; explicit
    per-request backends always win.  Strict: any malformed entry raises
    (:func:`run_request_file` offers the lenient per-entry behaviour).
    """
    entries = _request_file_entries(path, default_backend=default_backend)
    return [JobRequest.from_dict(entry) for entry in entries]  # type: ignore[arg-type]


def run_request_file(
    path: "str | Path",
    *,
    store: "ResultStore | str | None" = None,
    workers: int = 1,
    batch_window: float = 0.01,
    default_backend: str | None = None,
    retry: "RetryPolicy | None" = None,
    deadline: float | None = None,
    max_queue: int | None = None,
    default_cubes: int | None = None,
) -> dict[str, object]:
    """Drive a request file through a fresh service; return the JSON report.

    All requests are submitted concurrently, so the file as a whole enjoys
    deduplication, batching and cache service exactly like live traffic.
    ``default_backend``, ``deadline`` and ``default_cubes`` fill the
    corresponding fields of requests that omit them; ``retry`` /
    ``max_queue`` configure the service's fault tolerance and admission
    control.

    A *malformed entry* does not abort the file: it is skipped with a
    structured error record at its position (``"source": "request-file"``,
    carrying the raw entry) while every well-formed sibling still runs.
    The report's ``"health"`` key holds the service's final health
    snapshot.
    """
    entries = _request_file_entries(
        path,
        default_backend=default_backend,
        default_deadline=deadline,
        default_cubes=default_cubes,
    )
    requests: list[tuple[int, JobRequest]] = []
    placed: dict[int, dict[str, object]] = {}
    for position, entry in enumerate(entries):
        try:
            requests.append((position, JobRequest.from_dict(entry)))  # type: ignore[arg-type]
        except (ServiceError, TypeError) as error:
            placed[position] = {
                "request": entry,
                "status": "error",
                "source": "request-file",
                "payload": None,
                "error": str(error),
            }

    async def _run() -> dict[str, object]:
        async with PebblingService(
            store=store,
            workers=workers,
            batch_window=batch_window,
            max_queue=max_queue,
            retry=retry,
        ) as service:
            results = await service.run([request for _, request in requests])
            for (position, _), result in zip(requests, results):
                placed[position] = result.as_dict()
            report: dict[str, object] = {
                "results": [placed[position] for position in range(len(entries))],
                "stats": service.stats.as_dict(),
                "health": service.health(),
            }
            if service.store is not None:
                report["store"] = service.store.stats().as_dict()
            return report

    return asyncio.run(_run())
