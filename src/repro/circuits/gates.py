"""Gate types used by the reversible-circuit substrate.

Two gate families cover everything the reproduction needs:

* :class:`SingleTargetGate` — the paper's Definition 1: a reversible gate
  that XORs an arbitrary Boolean control function of its control qubits
  onto one target qubit.  Pebbling moves compile one-to-one into these.
* :class:`ToffoliGate` — a multi-controlled NOT with optional negative
  controls.  It is the special case of a single-target gate whose control
  function is a product of literals, and the unit in which the Barenco
  decomposition (Fig. 6(d)) is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import CircuitError


@dataclass(frozen=True)
class SingleTargetGate:
    """A single-target gate ``|c..><t|  ->  |c..>|t xor f(c..)>``.

    ``controls`` are qubit names; ``function`` evaluates the control
    function given a ``{control name: bool}`` mapping.  ``label`` is used in
    reports (e.g. the DAG node or operation name the gate realises).
    """

    target: str
    controls: tuple[str, ...]
    function: Callable[[Mapping[str, bool]], bool] | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.target in self.controls:
            raise CircuitError(f"gate target {self.target!r} cannot also be a control")
        if len(set(self.controls)) != len(self.controls):
            raise CircuitError("duplicate control qubits")

    @property
    def num_controls(self) -> int:
        """Number of control qubits."""
        return len(self.controls)

    def qubits(self) -> tuple[str, ...]:
        """All qubits touched by the gate (controls then target)."""
        return self.controls + (self.target,)

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        """Evaluate the control function for the given control values."""
        if self.function is None:
            raise CircuitError(
                f"gate {self.label or self.target!r} has no concrete control function"
            )
        return bool(self.function({name: bool(values[name]) for name in self.controls}))

    def __str__(self) -> str:
        label = self.label or "f"
        controls = ", ".join(self.controls)
        return f"{self.target} ^= {label}({controls})"


@dataclass(frozen=True)
class ToffoliGate:
    """A multi-controlled NOT with positive and negative controls.

    ``controls`` maps qubit name to required polarity (``True`` = positive
    control).  With zero controls the gate is a NOT, with one a CNOT, with
    two the classic Toffoli.
    """

    target: str
    controls: tuple[tuple[str, bool], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [name for name, _ in self.controls]
        if self.target in names:
            raise CircuitError(f"gate target {self.target!r} cannot also be a control")
        if len(set(names)) != len(names):
            raise CircuitError("duplicate control qubits")

    @classmethod
    def from_names(
        cls, target: str, controls: Sequence[str], *, negated: Sequence[str] = ()
    ) -> "ToffoliGate":
        """Build a Toffoli gate from control names (``negated`` lists the 0-controls)."""
        negated_set = set(negated)
        unknown = negated_set - set(controls)
        if unknown:
            raise CircuitError(f"negated controls {sorted(unknown)} are not controls")
        return cls(target, tuple((name, name not in negated_set) for name in controls))

    @property
    def num_controls(self) -> int:
        """Number of control qubits."""
        return len(self.controls)

    def control_names(self) -> tuple[str, ...]:
        """Control qubit names."""
        return tuple(name for name, _ in self.controls)

    def qubits(self) -> tuple[str, ...]:
        """All qubits touched by the gate."""
        return self.control_names() + (self.target,)

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        """Return ``True`` when the target should be flipped."""
        return all(bool(values[name]) == polarity for name, polarity in self.controls)

    def as_single_target_gate(self) -> SingleTargetGate:
        """View the Toffoli gate as a single-target gate."""
        controls = self.control_names()
        polarities = dict(self.controls)

        def function(values: Mapping[str, bool]) -> bool:
            return all(bool(values[name]) == polarities[name] for name in controls)

        label = f"and{self.num_controls}" if self.num_controls else "not"
        return SingleTargetGate(self.target, controls, function, label=label)

    def __str__(self) -> str:
        if not self.controls:
            return f"X({self.target})"
        controls = ", ".join(
            name if polarity else f"!{name}" for name, polarity in self.controls
        )
        return f"X({self.target}) if ({controls})"


Gate = SingleTargetGate | ToffoliGate
