"""Cost models for reversible circuits.

The paper evaluates strategies along two axes: the number of qubits and the
number of operations, and notes that "increasing the number of gates can
negatively affect the noise in the final result".  This module provides a
small configurable cost model used by the benchmark harnesses:

* every gate contributes its *gate count* (1 by default);
* multi-controlled gates can optionally be costed by the number of Toffoli
  gates of their Barenco decomposition and by an estimated T-count
  (7 T gates per Toffoli, 0 for NOT/CNOT), which is the standard
  fault-tolerant cost proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import SingleTargetGate, ToffoliGate


@dataclass(frozen=True)
class CostModel:
    """Relative costs per gate category.

    ``toffoli_t_count`` is the T-count charged per 2-control Toffoli;
    ``stg_control_factor`` scales the cost of a ``k``-control single-target
    gate as ``max(1, stg_control_factor * (k - 1))`` Toffoli equivalents,
    reflecting that larger control functions decompose into more elementary
    gates.
    """

    toffoli_t_count: int = 7
    stg_control_factor: int = 2

    def toffoli_equivalents(self, gate: "SingleTargetGate | ToffoliGate") -> int:
        """Estimated number of Toffoli-class gates needed to realise ``gate``."""
        controls = gate.num_controls
        if controls <= 2:
            return 1
        if isinstance(gate, ToffoliGate):
            # Barenco Lemma 7.2 count with enough ancillae.
            return 4 * (controls - 2)
        return max(1, self.stg_control_factor * (controls - 1))

    def t_count(self, gate: "SingleTargetGate | ToffoliGate") -> int:
        """Estimated T-count of ``gate``."""
        controls = gate.num_controls
        if controls <= 1:
            return 0
        return self.toffoli_equivalents(gate) * self.toffoli_t_count


@dataclass(frozen=True)
class CircuitCost:
    """Aggregate cost report of a circuit."""

    qubits: int
    gates: int
    toffoli_equivalents: int
    t_count: int

    def as_dict(self) -> dict[str, int]:
        """Return the cost report as a dictionary."""
        return {
            "qubits": self.qubits,
            "gates": self.gates,
            "toffoli_equivalents": self.toffoli_equivalents,
            "t_count": self.t_count,
        }


def circuit_cost(circuit: ReversibleCircuit, model: CostModel | None = None) -> CircuitCost:
    """Compute the aggregate cost of ``circuit`` under ``model``."""
    model = model or CostModel()
    toffoli_equivalents = 0
    t_count = 0
    for gate in circuit.gates:
        toffoli_equivalents += model.toffoli_equivalents(gate)
        t_count += model.t_count(gate)
    return CircuitCost(
        qubits=circuit.num_qubits,
        gates=circuit.num_gates,
        toffoli_equivalents=toffoli_equivalents,
        t_count=t_count,
    )
