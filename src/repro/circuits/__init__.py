"""Reversible-circuit substrate.

The pebbling strategies found by :mod:`repro.pebbling` are abstract; this
subpackage turns them into reversible circuits over single-target gates
(Definition 1 of the paper), provides the Barenco decomposition baseline of
the hardware-constrained show-case (Fig. 6), simulates the resulting
circuits classically to verify that ancillae are restored and outputs are
correct, and estimates gate costs.

* :mod:`repro.circuits.gates` -- gate types (single-target gates,
  multi-controlled Toffoli, NOT/CNOT as special cases);
* :mod:`repro.circuits.circuit` -- the :class:`ReversibleCircuit` container
  with qubit roles (input / ancilla / output);
* :mod:`repro.circuits.compile` -- compilation of pebbling strategies and
  Bennett baselines into circuits;
* :mod:`repro.circuits.barenco` -- decomposition of multi-controlled
  Toffoli gates with few ancillae, plus ANF lowering of single-target
  gates to Toffoli gates;
* :mod:`repro.circuits.simulator` -- classical basis-state simulation;
* :mod:`repro.circuits.costs` -- qubit / gate / T-count cost model;
* :mod:`repro.circuits.pipeline` -- the end-to-end compilation pipeline
  (DAG → SAT pebbling → circuit → verification → cost report) and the
  Fig. 6-style space-time Pareto sweep.
"""

from repro.circuits.barenco import (
    barenco_and_oracle,
    decompose_circuit,
    decompose_mct,
    single_target_gate_to_mct,
)
from repro.circuits.circuit import QubitRole, ReversibleCircuit
from repro.circuits.compile import (
    compile_bennett,
    compile_network_oracle,
    compile_strategy,
)
from repro.circuits.costs import CostModel, circuit_cost
from repro.circuits.gates import SingleTargetGate, ToffoliGate
from repro.circuits.pipeline import (
    CompilationReport,
    SweepPoint,
    SweepReport,
    compile_dag,
    compile_workload,
    pareto_sweep,
    verify_compiled_against_network,
)
from repro.circuits.simulator import simulate_circuit, verify_oracle_circuit

__all__ = [
    "CompilationReport",
    "CostModel",
    "QubitRole",
    "ReversibleCircuit",
    "SingleTargetGate",
    "SweepPoint",
    "SweepReport",
    "ToffoliGate",
    "barenco_and_oracle",
    "circuit_cost",
    "compile_bennett",
    "compile_dag",
    "compile_network_oracle",
    "compile_strategy",
    "compile_workload",
    "decompose_circuit",
    "decompose_mct",
    "simulate_circuit",
    "single_target_gate_to_mct",
    "pareto_sweep",
    "verify_compiled_against_network",
    "verify_oracle_circuit",
]
