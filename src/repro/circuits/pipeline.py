"""End-to-end quantum compilation pipeline (pebble → circuit → verify → cost).

This module connects every layer of the reproduction into the compiler the
paper describes: a dependency DAG is pebbled by the SAT engine (optionally
under the *weighted* game, where each node's weight is the number of qubits
its value occupies), the strategy is compiled into a reversible circuit
over single-target gates, the gates are optionally lowered to Toffoli
(<= 2-control) gates through the Barenco construction, the circuit is
verified by classical simulation against the source
:class:`~repro.logic.network.LogicNetwork`, and the qubit/gate/T-count
costs are aggregated into a :class:`CompilationReport`.

Two entry points:

* :func:`compile_dag` — the core pipeline over an explicit DAG (and
  optional network for Boolean fidelity);
* :func:`compile_workload` — resolves a registry workload name or file
  path to its DAG *and* network and runs :func:`compile_dag`.

:func:`pareto_sweep` reproduces the space–time trade-off of the paper's
Fig. 6: one compilation per pebble/weight budget, fanned out over the
portfolio process pool, with the Pareto-optimal points marked.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import CircuitError
from repro.dag.graph import Dag
from repro.circuits.barenco import decompose_circuit
from repro.circuits.circuit import QubitRole, ReversibleCircuit
from repro.circuits.compile import (
    CompiledCircuit,
    compile_strategy,
    dag_controls,
    network_controls,
)
from repro.circuits.costs import CostModel, circuit_cost
from repro.circuits.simulator import simulate_circuit
from repro.logic.network import LogicNetwork
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.portfolio import PortfolioTask, run_portfolio
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.pebbling.strategy import (
    PebblingStrategy,
    strategy_from_payload,
    strategy_payload,
)
from repro.sat.cards import CardinalityEncoding
from repro.workloads.registry import load_workload_network, load_workload_or_path


@dataclass
class CompilationReport:
    """The result of one end-to-end compilation.

    All scalar fields are JSON-serialisable through :meth:`as_dict` (the
    schema is documented in EXPERIMENTS.md); ``strategy`` and ``circuit``
    carry the actual artifacts for callers that want to print grids or
    export gates, and are excluded from the dictionary.
    """

    workload: str
    dag_name: str
    nodes: int
    budget: int
    weighted: bool
    decomposed: bool
    outcome: str
    steps: int | None = None
    moves: int | None = None
    pebbles_used: int | None = None
    weight_used: float | None = None
    qubits: int | None = None
    gates: int | None = None
    toffoli_equivalents: int | None = None
    t_count: int | None = None
    verified: bool | None = None
    verify_patterns: int = 0
    sat_calls: int = 0
    conflicts: int = 0
    solve_runtime: float = 0.0
    runtime: float = 0.0
    search_complete: bool = False
    #: Backend spec that ran the SAT search (metadata only: the store's
    #: compile addresses are backend-invariant, so a cached report may
    #: name a different producer than the requester).
    backend: str = "cdcl"
    strategy: PebblingStrategy | None = field(
        default=None, repr=False, compare=False
    )
    circuit: ReversibleCircuit | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def found(self) -> bool:
        """``True`` when the pebbling search produced a strategy."""
        return self.outcome == "solution"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (see EXPERIMENTS.md for the schema)."""
        return {
            "workload": self.workload,
            "dag": self.dag_name,
            "nodes": self.nodes,
            "budget": self.budget,
            "weighted": self.weighted,
            "decomposed": self.decomposed,
            "outcome": self.outcome,
            "steps": self.steps,
            "moves": self.moves,
            "pebbles_used": self.pebbles_used,
            "weight_used": self.weight_used,
            "qubits": self.qubits,
            "gates": self.gates,
            "toffoli_equivalents": self.toffoli_equivalents,
            "t_count": self.t_count,
            "verified": self.verified,
            "verify_patterns": self.verify_patterns,
            "sat_calls": self.sat_calls,
            "conflicts": self.conflicts,
            "solve_runtime": round(self.solve_runtime, 3),
            "runtime": round(self.runtime, 3),
            "search_complete": self.search_complete,
            "backend": self.backend,
        }

    def to_json(self) -> dict[str, object]:
        """Lossless JSON form for the result store (see :meth:`from_json`).

        Extends :meth:`as_dict` with unrounded runtimes and the strategy's
        configurations so a cached report can rebuild its
        :class:`~repro.pebbling.strategy.PebblingStrategy`; the compiled
        ``circuit`` object is *not* serialised (it is cheap to recompile
        from the strategy when needed).
        """
        payload = self.as_dict()
        payload["schema"] = 1
        payload["solve_runtime"] = self.solve_runtime
        payload["runtime"] = self.runtime
        payload["strategy"] = (
            strategy_payload(self.strategy) if self.strategy is not None else None
        )
        return payload

    @classmethod
    def from_json(cls, data: dict[str, object], dag: Dag) -> "CompilationReport":
        """Rebuild a report from :meth:`to_json` output on its source DAG."""
        payload = data.get("strategy")
        strategy = (
            strategy_from_payload(payload, dag) if payload is not None else None
        )
        return cls(
            workload=str(data["workload"]),
            dag_name=str(data["dag"]),
            nodes=int(data["nodes"]),
            budget=int(data["budget"]),
            weighted=bool(data["weighted"]),
            decomposed=bool(data["decomposed"]),
            outcome=str(data["outcome"]),
            steps=data["steps"],
            moves=data["moves"],
            pebbles_used=data["pebbles_used"],
            weight_used=data["weight_used"],
            qubits=data["qubits"],
            gates=data["gates"],
            toffoli_equivalents=data["toffoli_equivalents"],
            t_count=data["t_count"],
            verified=data["verified"],
            verify_patterns=int(data["verify_patterns"]),
            sat_calls=int(data["sat_calls"]),
            conflicts=int(data["conflicts"]),
            solve_runtime=float(data["solve_runtime"]),
            runtime=float(data["runtime"]),
            search_complete=bool(data["search_complete"]),
            backend=str(data.get("backend", "cdcl")),
            strategy=strategy,
        )


def verify_compiled_against_network(
    network: LogicNetwork,
    compiled: CompiledCircuit,
    circuit: ReversibleCircuit | None = None,
    *,
    max_patterns: int = 64,
    seed: int = 0,
) -> int:
    """Simulate a compiled circuit against network evaluation; return the
    number of patterns checked.

    ``circuit`` defaults to ``compiled.circuit`` and may be a decomposed
    rewrite of it (same qubit names).  For every input pattern (exhaustive
    when ``2^inputs <= max_patterns``, otherwise a seeded random sample)
    the check asserts that every DAG output qubit carries the value the
    network computes for that signal, that every ancilla qubit is restored
    to zero, and that input qubits are unchanged.  Raises
    :class:`~repro.errors.CircuitError` with a counter-example on the first
    mismatch.
    """
    circuit = circuit if circuit is not None else compiled.circuit
    inputs = network.inputs
    num_inputs = len(inputs)
    if num_inputs <= 30 and (1 << num_inputs) <= max_patterns:
        patterns = list(range(1 << num_inputs))
    else:
        rng = random.Random(seed)
        patterns = [rng.getrandbits(num_inputs) for _ in range(max_patterns)]
    for pattern in patterns:
        assignment = {
            name: bool((pattern >> position) & 1)
            for position, name in enumerate(inputs)
        }
        values = network.simulate(assignment)
        circuit_inputs = {
            qubit: assignment[name]
            for name, qubit in compiled.input_qubits.items()
        }
        final = simulate_circuit(circuit, circuit_inputs)
        for node, qubit in compiled.output_qubits.items():
            expected = bool(values[str(node)])
            if final[qubit] != expected:
                raise CircuitError(
                    f"output {node!r} mismatch for input {assignment}: "
                    f"network computes {expected}, circuit produced {final[qubit]}"
                )
        for qubit in circuit.qubits(QubitRole.ANCILLA):
            if final[qubit]:
                raise CircuitError(
                    f"ancilla {qubit!r} left dirty for input {assignment}"
                )
        for qubit, value in circuit_inputs.items():
            if final[qubit] != value:
                raise CircuitError(
                    f"input qubit {qubit!r} was modified for input {assignment}"
                )
    return len(patterns)


def compile_cache_request(
    *,
    pebbles: int,
    weighted: bool = False,
    decompose: bool = False,
    single_move: bool = False,
    cardinality: "str | CardinalityEncoding" = "sequential",
    schedule: str = "linear",
    step_increment: int | None = None,
    max_steps: int | None = None,
    verify: bool = True,
    max_verify_patterns: int = 64,
    verify_seed: int = 0,
    workload: str | None = None,
    name: str | None = None,
) -> dict[str, object]:
    """The normalised cache-key surface of one compilation request.

    Single source of truth shared by :func:`compile_dag` and the service
    layer's cache probe: the defaults here ARE the pipeline defaults, so a
    caller that omits a parameter builds the same content address the
    pipeline does.  ``step_increment`` of 1 normalises to ``None`` (the
    solver treats them identically).
    """
    return {
        "budget": pebbles,
        "weighted": weighted,
        "decompose": decompose,
        "single_move": single_move,
        "cardinality": CardinalityEncoding.from_name(cardinality).value,
        "schedule": schedule,
        "step_increment": None if step_increment == 1 else step_increment,
        "max_steps": max_steps,
        "verify": verify,
        "max_verify_patterns": max_verify_patterns,
        "verify_seed": verify_seed,
        "workload": workload,
        "name": name,
    }


def compile_dag(
    dag: Dag,
    *,
    pebbles: int,
    network: LogicNetwork | None = None,
    weighted: bool = False,
    decompose: bool = False,
    single_move: bool = False,
    cardinality: "str | CardinalityEncoding" = "sequential",
    schedule: str = "linear",
    step_increment: int | None = None,
    time_limit: float | None = 120.0,
    max_steps: int | None = None,
    verify: bool = True,
    max_verify_patterns: int = 64,
    verify_seed: int = 0,
    cost_model: CostModel | None = None,
    workload: str | None = None,
    name: str | None = None,
    backend: str | None = None,
    store=None,
) -> CompilationReport:
    """Run the full pipeline on one DAG and return its report.

    ``pebbles`` is the pebble budget — the *weight* budget when
    ``weighted`` is set.  With a ``network`` the compiled gates carry real
    Boolean control functions and the circuit is verified by simulation
    (unless ``verify=False``); without one the compilation is structural
    and ``verified`` stays ``None``.  ``decompose`` lowers the circuit to
    Toffoli (<= 2-control) gates through the Barenco construction before
    costing, so ``gates``/``t_count`` then reflect elementary-gate counts
    instead of cost-model estimates.

    ``store`` (an opt-in :class:`~repro.store.ResultStore`) caches at both
    granularities: the whole report is answered from the store when the
    identical compilation was seen before (no SAT call, no simulation —
    the cached report carries its strategy but no circuit object), and a
    fresh run's inner SAT search still gets exact/warm cache service.
    Reports are only cached under the default cost model (a custom
    ``cost_model`` is not part of the content address).

    ``backend`` selects the incremental-SAT backend by registry spec (see
    :mod:`repro.sat.backend`).  It is deliberately *not* part of the cache
    address — any backend produces the same verdicts, so reports transfer
    across backends; :attr:`CompilationReport.backend` records the actual
    producer.
    """
    started = time.monotonic()
    cacheable = store is not None and cost_model is None
    compile_request = None
    if cacheable:
        compile_request = compile_cache_request(
            pebbles=pebbles,
            weighted=weighted,
            decompose=decompose,
            single_move=single_move,
            cardinality=cardinality,
            schedule=schedule,
            step_increment=step_increment,
            max_steps=max_steps,
            verify=verify,
            max_verify_patterns=max_verify_patterns,
            verify_seed=verify_seed,
            workload=workload,
            name=name,
        )
        cached = store.get_compile(dag, network=network, **compile_request)
        if cached is not None:
            return cached
    options = EncodingOptions(
        cardinality=CardinalityEncoding.from_name(cardinality),
        max_moves_per_step=1 if single_move else None,
        weighted=weighted,
    )
    solver = ReversiblePebblingSolver(dag, options=options, backend=backend)
    result = solver.solve(
        pebbles,
        strategy=schedule,
        step_increment=step_increment,
        time_limit=time_limit,
        max_steps=max_steps,
        store=store,
    )
    report = CompilationReport(
        workload=workload or dag.name,
        dag_name=dag.name,
        nodes=dag.num_nodes,
        budget=pebbles,
        weighted=weighted,
        decomposed=decompose,
        outcome=result.outcome.value,
        steps=result.num_steps,
        moves=result.num_moves,
        sat_calls=len(result.attempts),
        conflicts=sum(record.conflicts for record in result.attempts),
        solve_runtime=result.runtime,
        search_complete=result.complete,
        backend=result.backend,
    )
    if result.strategy is None:
        report.runtime = time.monotonic() - started
        if cacheable:
            store.put_compile(dag, report, network=network, **compile_request)
        return report
    strategy = result.strategy
    report.pebbles_used = strategy.max_pebbles
    report.weight_used = strategy.max_weight
    provider = (
        network_controls(network) if network is not None else dag_controls(dag)
    )
    compiled = compile_strategy(dag, strategy, provider=provider, name=name)
    circuit = compiled.circuit
    if decompose:
        circuit = decompose_circuit(circuit)
    cost = circuit_cost(circuit, cost_model)
    report.qubits = cost.qubits
    report.gates = cost.gates
    report.toffoli_equivalents = cost.toffoli_equivalents
    report.t_count = cost.t_count
    report.strategy = strategy
    report.circuit = circuit
    if verify and network is not None:
        report.verify_patterns = verify_compiled_against_network(
            network,
            compiled,
            circuit,
            max_patterns=max_verify_patterns,
            seed=verify_seed,
        )
        report.verified = True
    report.runtime = time.monotonic() - started
    if cacheable:
        store.put_compile(dag, report, network=network, **compile_request)
    return report


def compile_workload(
    workload: str,
    *,
    pebbles: int,
    scale: float = 1.0,
    **kwargs: object,
) -> CompilationReport:
    """Resolve a workload (registry name, ``.bench`` or DAG-JSON path) and
    run :func:`compile_dag` on it.

    Workloads backed by a :class:`~repro.logic.network.LogicNetwork` (see
    :func:`repro.workloads.registry.load_workload_network`) compile with
    full Boolean fidelity and are verified end-to-end; the others compile
    structurally.
    """
    dag = load_workload_or_path(workload, scale=scale)
    network = load_workload_network(workload, scale=scale)
    return compile_dag(
        dag, pebbles=pebbles, network=network, workload=workload, **kwargs
    )


# ---------------------------------------------------------------------------
# Fig. 6-style space-time sweep
# ---------------------------------------------------------------------------
@dataclass
class SweepPoint:
    """One (budget, circuit cost) point of a Pareto sweep."""

    budget: int
    outcome: str
    steps: int | None = None
    pebbles_used: int | None = None
    weight_used: float | None = None
    qubits: int | None = None
    gates: int | None = None
    toffoli_equivalents: int | None = None
    t_count: int | None = None
    runtime: float = 0.0
    pareto: bool = False

    @property
    def found(self) -> bool:
        return self.outcome == "solution"

    def as_dict(self) -> dict[str, object]:
        return {
            "budget": self.budget,
            "outcome": self.outcome,
            "steps": self.steps,
            "pebbles_used": self.pebbles_used,
            "weight_used": self.weight_used,
            "qubits": self.qubits,
            "gates": self.gates,
            "toffoli_equivalents": self.toffoli_equivalents,
            "t_count": self.t_count,
            "runtime": round(self.runtime, 3),
            "pareto": self.pareto,
        }


@dataclass
class SweepReport:
    """Space-time trade-off table across pebble/weight budgets (Fig. 6)."""

    workload: str
    weighted: bool
    decomposed: bool
    points: list[SweepPoint] = field(default_factory=list)

    def pareto_front(self) -> list[SweepPoint]:
        """The Pareto-optimal points, in ascending budget order."""
        return [point for point in self.points if point.pareto]

    def as_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "weighted": self.weighted,
            "decomposed": self.decomposed,
            "points": [point.as_dict() for point in self.points],
        }


def _mark_pareto(points: list[SweepPoint]) -> None:
    """Mark the qubit/gate Pareto-optimal points in place.

    A point is dominated when another solved point needs no more qubits
    *and* no more gates, with at least one strictly fewer.
    """
    solved = [point for point in points if point.found]
    for point in solved:
        point.pareto = not any(
            other is not point
            and other.qubits <= point.qubits
            and other.gates <= point.gates
            and (other.qubits < point.qubits or other.gates < point.gates)
            for other in solved
        )


def pareto_sweep(
    workload: str,
    *,
    budgets: "list[int] | None" = None,
    scale: float = 1.0,
    weighted: bool = False,
    decompose: bool = False,
    jobs: int = 1,
    time_limit: float | None = 60.0,
    schedule: str = "linear",
    cardinality: str = "sequential",
    step_increment: int | None = None,
    single_move: bool = False,
    max_steps: int | None = None,
    cost_model: CostModel | None = None,
    store_path: str | None = None,
    backend: str = "cdcl",
) -> SweepReport:
    """Compile one workload at every budget and tabulate space vs. time.

    Budgets default to the full feasible range: from the solver's
    structural lower bound up to the eager-Bennett peak (pebbles, or total
    weight in weighted mode).  The SAT searches fan out over the portfolio
    process pool ``jobs`` wide; compilation and costing of the returned
    strategies happen in-process (they are microseconds next to the SAT
    calls).  Points are marked Pareto-optimal over (qubits, gates).

    ``store_path`` opts the SAT searches into a shared result store: a
    re-run of the sweep answers every point from the cache, and a widened
    budget range warm-starts its new interior points from the old ones.
    """
    dag = load_workload_or_path(workload, scale=scale)
    network = load_workload_network(workload, scale=scale)
    options = EncodingOptions(
        cardinality=CardinalityEncoding.from_name(cardinality),
        max_moves_per_step=1 if single_move else None,
        weighted=weighted,
    )
    if budgets is None:
        probe = ReversiblePebblingSolver(dag, options=options)
        from repro.pebbling.bennett import eager_bennett_strategy

        baseline = eager_bennett_strategy(dag)
        upper = (
            int(baseline.max_weight) if weighted else baseline.max_pebbles
        )
        lower = probe.minimum_pebbles_lower_bound()
        budgets = list(range(lower, max(lower, upper) + 1))
        # The Bennett baseline is a free witness for the top budget, but the
        # sweep still runs the SAT search there: the table's gate axis needs
        # the *step-minimal* circuit per budget, which the baseline is not.
    tasks = [
        PortfolioTask(
            workload=workload,
            pebbles=budget,
            scale=scale,
            single_move=single_move,
            cardinality=cardinality,
            schedule=schedule,
            step_increment=1 if step_increment is None else step_increment,
            weighted=weighted,
            time_limit=time_limit,
            max_steps=max_steps,
            backend=backend,
        )
        for budget in budgets
    ]
    records = run_portfolio(tasks, jobs=jobs, store_path=store_path)
    provider = (
        network_controls(network) if network is not None else dag_controls(dag)
    )
    by_name = {str(node): node for node in dag.nodes()}
    report = SweepReport(workload=workload, weighted=weighted, decomposed=decompose)
    for record in records:
        point = SweepPoint(
            budget=record.task.pebbles,
            outcome=record.outcome,
            steps=record.steps,
            pebbles_used=record.pebbles_used,
            weight_used=record.weight_used,
            runtime=record.runtime,
        )
        report.points.append(point)
        if record.configurations is None:
            continue
        strategy = PebblingStrategy(
            dag,
            [
                {by_name[name] for name in configuration}
                for configuration in record.configurations
            ],
            max_moves_per_step=1 if single_move else None,
        )
        circuit = compile_strategy(dag, strategy, provider=provider).circuit
        if decompose:
            circuit = decompose_circuit(circuit)
        cost = circuit_cost(circuit, cost_model)
        point.qubits = cost.qubits
        point.gates = cost.gates
        point.toffoli_equivalents = cost.toffoli_equivalents
        point.t_count = cost.t_count
    _mark_pareto(report.points)
    return report
