"""Classical simulation of reversible circuits.

All gates produced in this package are classical reversible gates (they
permute computational basis states), so a circuit can be verified by
simulating it on basis states: feed every input pattern, check that the
output qubits carry the specified Boolean function and — crucially for this
paper — that every ancilla qubit is restored to ``|0>``.  A circuit that
leaves an ancilla dirty would entangle intermediate values with the result
on a quantum machine, which is exactly the failure mode quantum memory
management must prevent (Fig. 1 of the paper).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.errors import CircuitError
from repro.circuits.circuit import QubitRole, ReversibleCircuit
from repro.circuits.gates import SingleTargetGate, ToffoliGate
from repro.logic.network import LogicNetwork


def simulate_circuit(
    circuit: ReversibleCircuit,
    input_values: Mapping[str, bool],
    *,
    initial_values: Mapping[str, bool] | None = None,
) -> dict[str, bool]:
    """Simulate ``circuit`` on a basis state; return the final qubit values.

    ``input_values`` assigns the INPUT-role qubits; ancilla and output
    qubits start at ``|0>`` unless overridden through ``initial_values``.
    """
    values: dict[str, bool] = {}
    for name in circuit.qubits():
        role = circuit.qubit(name).role
        if role is QubitRole.INPUT:
            if name not in input_values:
                raise CircuitError(f"missing value for input qubit {name!r}")
            values[name] = bool(input_values[name])
        else:
            values[name] = False
    if initial_values:
        for name, value in initial_values.items():
            if name not in values:
                raise CircuitError(f"unknown qubit {name!r} in initial_values")
            values[name] = bool(value)

    for gate in circuit.gates:
        if isinstance(gate, ToffoliGate):
            flip = gate.evaluate(values)
        elif isinstance(gate, SingleTargetGate):
            flip = gate.evaluate(values)
        else:  # pragma: no cover - defensive
            raise CircuitError(f"cannot simulate gate {gate!r}")
        if flip:
            values[gate.target] = not values[gate.target]
    return values


def verify_ancillae_clean(
    circuit: ReversibleCircuit, input_values: Mapping[str, bool]
) -> bool:
    """Return ``True`` when every ancilla ends in ``|0>`` for this input."""
    final = simulate_circuit(circuit, input_values)
    return all(not final[name] for name in circuit.qubits(QubitRole.ANCILLA))


def verify_oracle_circuit(
    circuit: ReversibleCircuit,
    reference: "LogicNetwork | Callable[[Mapping[str, bool]], Mapping[str, bool]]",
    *,
    input_map: Mapping[str, str],
    output_map: Mapping[str, str],
    max_patterns: int | None = None,
) -> bool:
    """Exhaustively verify a compiled oracle circuit against a reference.

    ``reference`` is either the :class:`~repro.logic.network.LogicNetwork`
    the circuit was compiled from or any callable mapping input assignments
    to output assignments.  ``input_map`` maps reference input names to
    circuit qubit names, ``output_map`` maps reference output names to the
    circuit qubits holding them at the end.

    Verifies, for every input pattern (up to ``max_patterns``):

    * every reference output matches the corresponding circuit qubit;
    * every ancilla qubit is restored to zero;
    * every input qubit still holds its input value.

    Raises :class:`~repro.errors.CircuitError` with a counter-example on the
    first mismatch, returns ``True`` otherwise.
    """
    reference_inputs = list(input_map.keys())
    num_inputs = len(reference_inputs)
    num_patterns = 1 << num_inputs
    if max_patterns is not None:
        num_patterns = min(num_patterns, max_patterns)

    if isinstance(reference, LogicNetwork):
        def evaluate(assignment: Mapping[str, bool]) -> Mapping[str, bool]:
            return reference.simulate_outputs(assignment)
    else:
        evaluate = reference

    for pattern in range(num_patterns):
        assignment = {
            name: bool((pattern >> position) & 1)
            for position, name in enumerate(reference_inputs)
        }
        expected = evaluate(assignment)
        circuit_inputs = {input_map[name]: value for name, value in assignment.items()}
        final = simulate_circuit(circuit, circuit_inputs)
        for reference_name, qubit in output_map.items():
            if bool(expected[reference_name]) != final[qubit]:
                raise CircuitError(
                    f"output {reference_name!r} mismatch for input {assignment}: "
                    f"expected {bool(expected[reference_name])}, circuit produced {final[qubit]}"
                )
        for name in circuit.qubits(QubitRole.ANCILLA):
            if final[name]:
                raise CircuitError(
                    f"ancilla {name!r} left dirty for input {assignment}"
                )
        for name, value in circuit_inputs.items():
            if final[name] != value:
                raise CircuitError(
                    f"input qubit {name!r} was modified for input {assignment}"
                )
    return True
