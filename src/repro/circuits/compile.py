"""Compilation of pebbling strategies into reversible circuits.

A pebbling strategy prescribes *when* every intermediate value is computed
and uncomputed; compilation turns each pebble move into a single-target
gate (Definition 1 of the paper):

* ``pebble(v)``   → apply ``G_{f_v}`` targeting a free work qubit;
* ``unpebble(v)`` → apply the same gate again on the same qubit, restoring
  it to ``|0>``.

The compiler allocates ``strategy.max_pebbles`` work qubits in addition to
one qubit per primary input, exactly the ``#inputs + #pebbles`` budget the
paper uses when mapping onto a constrained device (Fig. 6).

Control functions come from a *control provider*.  Two providers are
available: :func:`dag_controls` (structural only — the gate controls are
the node's DAG dependencies, no concrete Boolean function) and
:func:`network_controls` (full Boolean fidelity for DAGs derived from a
:class:`~repro.logic.network.LogicNetwork`, including folded inverters and
constants, which is what the simulator needs to verify circuits
end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import CircuitError
from repro.dag.graph import Dag, NodeId
from repro.circuits.circuit import QubitRole, ReversibleCircuit
from repro.circuits.gates import SingleTargetGate
from repro.logic.network import GateType, LogicNetwork
from repro.pebbling.bennett import bennett_strategy
from repro.pebbling.strategy import PebblingStrategy

#: A control provider maps a DAG node to its gate description.
ControlProvider = Callable[[NodeId], "NodeControls"]


@dataclass(frozen=True)
class NodeControls:
    """Gate description of one DAG node.

    ``controls`` lists the value names the gate reads: primary-input names
    and/or other DAG node identifiers.  ``function`` evaluates the control
    function given ``{control name: bool}`` (``None`` when only the
    dependency structure is known).  ``label`` annotates the emitted gate.
    """

    controls: tuple[NodeId, ...]
    function: Callable[[Mapping[NodeId, bool]], bool] | None = None
    label: str = ""


def dag_controls(dag: Dag) -> ControlProvider:
    """Structural control provider: controls are the node's dependencies."""

    def provider(node: NodeId) -> NodeControls:
        return NodeControls(
            controls=tuple(dag.dependencies(node)),
            function=None,
            label=str(dag.node(node).operation),
        )

    return provider


def network_controls(
    network: LogicNetwork, *, collapse_inverters: bool = True
) -> ControlProvider:
    """Boolean control provider for DAGs produced by ``network.to_dag()``.

    Every network signal is resolved to ``(representative, parity, constant)``
    where the representative is a DAG node or primary input; inverter chains
    contribute parity, constants are folded in.  The returned provider then
    evaluates each node's true gate function, so compiled circuits can be
    simulated bit-exactly.
    """
    network.validate()
    resolution: dict[str, tuple[str | None, bool, bool | None]] = {}
    #   signal -> (representative name or None, inverted?, constant value or None)
    for name in network.inputs:
        resolution[name] = (name, False, None)
    for gate in network.gates():
        if collapse_inverters and gate.gate_type in (GateType.NOT, GateType.BUF):
            rep, parity, const = resolution[gate.fanins[0]]
            flip = gate.gate_type is GateType.NOT
            if const is not None:
                resolution[gate.output] = (None, False, const ^ flip)
            else:
                resolution[gate.output] = (rep, parity ^ flip, None)
            continue
        if gate.gate_type is GateType.CONST0:
            resolution[gate.output] = (None, False, False)
            continue
        if gate.gate_type is GateType.CONST1:
            resolution[gate.output] = (None, False, True)
            continue
        resolution[gate.output] = (gate.output, False, None)

    def provider(node: NodeId) -> NodeControls:
        gate = network.gate(str(node))
        fanin_resolutions = [resolution[fanin] for fanin in gate.fanins]
        controls = tuple(
            dict.fromkeys(rep for rep, _, const in fanin_resolutions if const is None and rep)
        )
        gate_type = gate.gate_type

        def function(values: Mapping[NodeId, bool]) -> bool:
            fanin_values = []
            for rep, parity, const in fanin_resolutions:
                value = const if const is not None else bool(values[rep])
                fanin_values.append(value ^ parity)
            return _evaluate(gate_type, fanin_values)

        return NodeControls(controls=controls, function=function, label=gate_type.value)

    return provider


def _evaluate(gate_type: GateType, values: list[bool]) -> bool:
    if gate_type is GateType.AND:
        return all(values)
    if gate_type is GateType.OR:
        return any(values)
    if gate_type is GateType.NAND:
        return not all(values)
    if gate_type is GateType.NOR:
        return not any(values)
    if gate_type is GateType.XOR:
        result = False
        for value in values:
            result ^= value
        return result
    if gate_type is GateType.XNOR:
        result = True
        for value in values:
            result ^= value
        return result
    if gate_type is GateType.MAJ:
        return sum(values) >= 2
    raise CircuitError(f"gate type {gate_type} cannot appear as a pebbled node")


@dataclass
class CompiledCircuit:
    """A compiled circuit plus the mapping from DAG outputs to qubits."""

    circuit: ReversibleCircuit
    output_qubits: dict[NodeId, str]
    input_qubits: dict[NodeId, str]

    @property
    def num_qubits(self) -> int:
        """Total number of qubits of the compiled circuit."""
        return self.circuit.num_qubits

    @property
    def num_gates(self) -> int:
        """Total number of gates of the compiled circuit."""
        return self.circuit.num_gates


def compile_strategy(
    dag: Dag,
    strategy: PebblingStrategy,
    *,
    provider: ControlProvider | None = None,
    name: str | None = None,
    work_qubit_prefix: str = "w",
) -> CompiledCircuit:
    """Compile ``strategy`` (a strategy for ``dag``) into a reversible circuit."""
    if strategy.dag is not dag:
        # Allow equal-but-distinct DAGs as long as node sets match.
        if set(map(str, strategy.dag.nodes())) != set(map(str, dag.nodes())):
            raise CircuitError("strategy was computed for a different DAG")
    provider = provider or dag_controls(dag)
    node_controls = {node: provider(node) for node in dag.nodes()}

    # Primary inputs = control names that are not DAG nodes.
    dag_nodes = set(dag.nodes())
    primary_inputs: list[NodeId] = []
    for controls in node_controls.values():
        for control in controls.controls:
            if control not in dag_nodes and control not in primary_inputs:
                primary_inputs.append(control)

    num_work_qubits = strategy.max_pebbles
    work_qubits = [f"{work_qubit_prefix}{index}" for index in range(num_work_qubits)]

    # First pass: walk the moves, assign work qubits, record gate plans.
    free = list(reversed(work_qubits))  # pop() returns w0 first
    location: dict[NodeId, str] = {}
    plans: list[tuple[NodeId, str, tuple[NodeId, ...], str]] = []
    for move in strategy.moves():
        node = move.node
        controls = node_controls[node]
        if move.pebble:
            if not free:  # pragma: no cover - prevented by max_pebbles sizing
                raise CircuitError("ran out of work qubits during compilation")
            qubit = free.pop()
            location[node] = qubit
        else:
            qubit = location[node]
        control_qubits = []
        for control in controls.controls:
            if control in dag_nodes:
                if control not in location:
                    raise CircuitError(
                        f"gate for {node!r} reads {control!r} which is not pebbled"
                    )
                control_qubits.append(location[control])
            else:
                control_qubits.append(f"x[{control}]")
        plans.append((node, qubit, tuple(control_qubits), controls.label))
        if not move.pebble:
            free.append(location.pop(node))

    # Second pass: build the circuit with qubit roles known.
    final_locations = dict(location)
    circuit = ReversibleCircuit(name or f"{dag.name}_pebbled")
    input_qubits = {pi: f"x[{pi}]" for pi in primary_inputs}
    for pi in primary_inputs:
        circuit.add_qubit(input_qubits[pi], QubitRole.INPUT)
    output_holders = set(final_locations.values())
    for qubit in work_qubits:
        circuit.add_qubit(
            qubit, QubitRole.OUTPUT if qubit in output_holders else QubitRole.ANCILLA
        )

    for node, target, control_qubits, label in plans:
        controls = node_controls[node]
        gate_function = None
        if controls.function is not None:
            mapping = dict(zip(control_qubits, controls.controls))
            base_function = controls.function

            def gate_function(
                values: Mapping[str, bool], _mapping=mapping, _base=base_function
            ) -> bool:
                return _base({_mapping[qubit]: values[qubit] for qubit in _mapping})

        circuit.append(
            SingleTargetGate(
                target=target,
                controls=control_qubits,
                function=gate_function,
                label=label or str(node),
            )
        )

    output_qubits = {node: qubit for node, qubit in final_locations.items()}
    return CompiledCircuit(circuit=circuit, output_qubits=output_qubits, input_qubits=input_qubits)


def compile_bennett(
    dag: Dag,
    *,
    provider: ControlProvider | None = None,
    name: str | None = None,
) -> CompiledCircuit:
    """Compile the Bennett baseline strategy of ``dag``."""
    strategy = bennett_strategy(dag)
    return compile_strategy(dag, strategy, provider=provider, name=name or f"{dag.name}_bennett")


def compile_network_oracle(
    network: LogicNetwork,
    strategy: PebblingStrategy | None = None,
    *,
    collapse_inverters: bool = True,
    name: str | None = None,
) -> CompiledCircuit:
    """Compile a logic network into a reversible oracle circuit.

    When ``strategy`` is ``None`` the Bennett strategy is used.  The DAG the
    strategy refers to must be ``network.to_dag(collapse_inverters=...)``;
    the convenience path builds it internally.
    """
    dag = strategy.dag if strategy is not None else network.to_dag(
        collapse_inverters=collapse_inverters
    )
    if strategy is None:
        strategy = bennett_strategy(dag)
    provider = network_controls(network, collapse_inverters=collapse_inverters)
    return compile_strategy(dag, strategy, provider=provider, name=name or f"{network.name}_oracle")
