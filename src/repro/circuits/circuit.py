"""The reversible-circuit container.

A :class:`ReversibleCircuit` is an ordered list of gates over named qubits,
each qubit annotated with a role:

* ``INPUT`` — carries a primary input value ``|x_i>``; never used as a gate
  target by the compilers in this package;
* ``ANCILLA`` — starts in ``|0>`` and must be restored to ``|0>`` at the
  end of the computation (this is exactly the memory-management obligation
  the paper addresses);
* ``OUTPUT`` — starts in ``|0>`` and carries a result at the end.

The container is deliberately independent of how gates were produced so the
pebbling compiler, the Bennett compiler and the Barenco decomposition can
all emit into it and be compared with the same cost model and simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.errors import CircuitError
from repro.circuits.gates import Gate, SingleTargetGate, ToffoliGate


class QubitRole(Enum):
    """How a qubit is used by the circuit."""

    INPUT = "input"
    ANCILLA = "ancilla"
    OUTPUT = "output"


@dataclass(frozen=True)
class Qubit:
    """A named qubit with a role."""

    name: str
    role: QubitRole


class ReversibleCircuit:
    """An ordered sequence of reversible gates over named qubits."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._qubits: dict[str, Qubit] = {}
        self._gates: list[Gate] = []

    # ------------------------------------------------------------------
    # qubit management
    # ------------------------------------------------------------------
    def add_qubit(self, name: str, role: "QubitRole | str" = QubitRole.ANCILLA) -> Qubit:
        """Register a qubit; names must be unique."""
        if name in self._qubits:
            raise CircuitError(f"qubit {name!r} already exists")
        resolved = role if isinstance(role, QubitRole) else QubitRole(role)
        qubit = Qubit(name, resolved)
        self._qubits[name] = qubit
        return qubit

    def add_qubits(self, names: Iterable[str], role: "QubitRole | str") -> list[Qubit]:
        """Register several qubits with the same role."""
        return [self.add_qubit(name, role) for name in names]

    def has_qubit(self, name: str) -> bool:
        """Return ``True`` if ``name`` is a registered qubit."""
        return name in self._qubits

    def qubit(self, name: str) -> Qubit:
        """Return the qubit record for ``name``."""
        try:
            return self._qubits[name]
        except KeyError as exc:
            raise CircuitError(f"unknown qubit {name!r}") from exc

    def qubits(self, role: QubitRole | None = None) -> list[str]:
        """Return qubit names, optionally filtered by role."""
        return [
            name for name, qubit in self._qubits.items() if role is None or qubit.role is role
        ]

    @property
    def num_qubits(self) -> int:
        """Total number of qubits (the paper's hardware budget)."""
        return len(self._qubits)

    @property
    def num_inputs(self) -> int:
        """Number of input qubits."""
        return len(self.qubits(QubitRole.INPUT))

    @property
    def num_ancillae(self) -> int:
        """Number of ancilla qubits (must return to zero)."""
        return len(self.qubits(QubitRole.ANCILLA))

    @property
    def num_outputs(self) -> int:
        """Number of output qubits."""
        return len(self.qubits(QubitRole.OUTPUT))

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> Gate:
        """Append a gate; every touched qubit must already be registered."""
        for name in gate.qubits():
            if name not in self._qubits:
                raise CircuitError(f"gate {gate} touches unknown qubit {name!r}")
        self._gates.append(gate)
        return gate

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append several gates."""
        for gate in gates:
            self.append(gate)

    @property
    def gates(self) -> list[Gate]:
        """The gate list, in execution order."""
        return list(self._gates)

    @property
    def num_gates(self) -> int:
        """Number of gates."""
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    def gate_histogram(self) -> dict[str, int]:
        """Count gates by label / control count (for reports)."""
        histogram: dict[str, int] = {}
        for gate in self._gates:
            if isinstance(gate, ToffoliGate):
                key = f"toffoli{gate.num_controls}"
            elif isinstance(gate, SingleTargetGate):
                key = gate.label or f"stg{gate.num_controls}"
            else:  # pragma: no cover - defensive
                key = type(gate).__name__
            histogram[key] = histogram.get(key, 0) + 1
        return histogram

    def summary(self) -> dict[str, object]:
        """Small report dictionary (qubits, gates, histogram)."""
        return {
            "name": self.name,
            "qubits": self.num_qubits,
            "inputs": self.num_inputs,
            "ancillae": self.num_ancillae,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "histogram": self.gate_histogram(),
        }

    def __repr__(self) -> str:
        return (
            f"ReversibleCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"gates={self.num_gates})"
        )
