"""Barenco decomposition of multi-controlled Toffoli gates.

The hardware-constrained show-case (Fig. 6) compares three ways of mapping
a 9-input AND oracle onto 16 qubits; one of them applies "the well known
decomposition method proposed by Barenco" to the 9-control Toffoli gate,
requiring a single extra ancilla but exploding the gate count from 15 to 48.

This module implements the two classic lemmas of Barenco et al.,
*Elementary gates for quantum computation* (1995), at the Toffoli level:

* **Lemma 7.2** — a ``C^m X`` gate on an ``n``-qubit register with
  ``n >= 2m - 1`` (i.e. ``m - 2`` borrowed, possibly dirty, ancillae)
  decomposes into ``4 (m - 2)`` Toffoli gates;
* **Lemma 7.3** — a ``C^m X`` gate with a single borrowed ancilla splits
  into two ``C^{ceil(m/2)} X`` and two ``C^{floor(m/2)+1} X`` gates, each of
  which then falls under Lemma 7.2.

For ``m = 9`` this yields exactly ``4 * 12 = 48`` Toffoli gates, matching
the paper's number.
"""

from __future__ import annotations

from repro.errors import CircuitError
from repro.circuits.circuit import QubitRole, ReversibleCircuit
from repro.circuits.gates import SingleTargetGate, ToffoliGate


def decompose_mct(
    controls: list[str],
    target: str,
    ancillae: list[str],
) -> list[ToffoliGate]:
    """Decompose a multi-controlled Toffoli into Toffoli (<=2-control) gates.

    ``ancillae`` are *borrowed* qubits: they may hold arbitrary values and
    are returned to those values.  The decomposition strategy is chosen
    automatically:

    * 0, 1 or 2 controls — the gate is already elementary;
    * enough ancillae (``>= len(controls) - 2``) — Lemma 7.2;
    * at least one ancilla — Lemma 7.3, recursing into Lemma 7.2;
    * no ancilla for 3+ controls — a :class:`~repro.errors.CircuitError`
      (the textbook construction without ancillae needs non-Toffoli gates).
    """
    _check_distinct(controls, target, ancillae)
    m = len(controls)
    if m <= 2:
        return [ToffoliGate.from_names(target, controls)]
    if len(ancillae) >= m - 2:
        return _lemma_7_2(controls, target, ancillae[: m - 2])
    if ancillae:
        return _lemma_7_3(controls, target, ancillae)
    raise CircuitError(
        f"cannot decompose a {m}-controlled Toffoli without any ancilla qubit"
    )


def _check_distinct(controls: list[str], target: str, ancillae: list[str]) -> None:
    seen: set[str] = set()
    for name in [*controls, target, *ancillae]:
        if name in seen:
            raise CircuitError(f"qubit {name!r} used twice in a decomposition")
        seen.add(name)


def _lemma_7_2(controls: list[str], target: str, ancillae: list[str]) -> list[ToffoliGate]:
    """Barenco Lemma 7.2: ``C^m X`` with ``m - 2`` borrowed ancillae."""
    m = len(controls)
    if m <= 2:
        return [ToffoliGate.from_names(target, controls)]
    if len(ancillae) < m - 2:
        raise CircuitError("Lemma 7.2 needs m-2 ancilla qubits")
    work = ancillae[: m - 2]
    # The V-shaped cascade: Toffoli(c_{m-1}, w_{m-3}, target), then a ladder
    # down to Toffoli(c_0, c_1, w_0) and back up, and the whole pattern twice.
    ladder_down: list[ToffoliGate] = []
    ladder_down.append(ToffoliGate.from_names(target, [controls[m - 1], work[m - 3]]))
    for index in range(m - 3, 0, -1):
        ladder_down.append(
            ToffoliGate.from_names(work[index], [controls[index + 1], work[index - 1]])
        )
    ladder_down.append(ToffoliGate.from_names(work[0], [controls[0], controls[1]]))

    # The "V" pattern: down the ladder, then back up through the middle
    # gates.  Repeating the V a second time restores every borrowed ancilla
    # while leaving the conjunction of all controls XORed onto the target.
    v_pattern = ladder_down + list(reversed(ladder_down[1:-1]))
    gates = v_pattern + v_pattern
    expected = 4 * (m - 2)
    if len(gates) != expected:  # pragma: no cover - structural invariant
        raise CircuitError(
            f"Lemma 7.2 produced {len(gates)} gates, expected {expected}"
        )
    return gates


def _lemma_7_3(controls: list[str], target: str, ancillae: list[str]) -> list[ToffoliGate]:
    """Barenco Lemma 7.3: ``C^m X`` with one borrowed ancilla."""
    m = len(controls)
    ancilla = ancillae[0]
    first_count = (m + 1) // 2
    first_controls = controls[:first_count]
    second_controls = controls[first_count:] + [ancilla]

    # Borrowed qubits for the two sub-gates: each may borrow the qubits the
    # other sub-gate does not touch (they are restored by construction).
    first_borrowed = [q for q in controls[first_count:] + [target] if q != ancilla]
    second_borrowed = list(controls[:first_count])

    first = _lemma_7_2(first_controls, ancilla, first_borrowed[: max(0, first_count - 2)]) \
        if first_count > 2 else [ToffoliGate.from_names(ancilla, first_controls)]
    second_count = len(second_controls)
    second = _lemma_7_2(second_controls, target, second_borrowed[: max(0, second_count - 2)]) \
        if second_count > 2 else [ToffoliGate.from_names(target, second_controls)]
    return first + second + first + second


def single_target_gate_to_mct(
    gate: SingleTargetGate, borrowable: list[str]
) -> list[ToffoliGate]:
    """Lower a single-target gate to Toffoli (<=2-control) gates.

    The control function is expanded into its algebraic normal form (a XOR
    of AND monomials, computed with the Möbius transform over the gate's
    truth table); each monomial becomes one multi-controlled Toffoli on the
    same target, and monomials with more than two controls fall through to
    :func:`decompose_mct`, borrowing any ``borrowable`` qubits the monomial
    does not touch.  Since ``t ^= f`` equals the XOR of the monomial
    contributions, the lowering is exact on every basis state and uses no
    clean ancillae.
    """
    if gate.function is None:
        raise CircuitError(
            f"gate {gate.label or gate.target!r} has no concrete control "
            "function; structural circuits cannot be decomposed"
        )
    controls = list(gate.controls)
    arity = len(controls)
    if arity > 16:
        raise CircuitError(
            f"cannot expand a {arity}-control gate's truth table for lowering"
        )
    size = 1 << arity
    coefficients = [
        bool(
            gate.evaluate(
                {
                    name: bool((index >> position) & 1)
                    for position, name in enumerate(controls)
                }
            )
        )
        for index in range(size)
    ]
    # In-place Möbius transform: truth table -> ANF monomial coefficients.
    for position in range(arity):
        bit = 1 << position
        for index in range(size):
            if index & bit:
                coefficients[index] ^= coefficients[index ^ bit]
    gates: list[ToffoliGate] = []
    for index in range(size):
        if not coefficients[index]:
            continue
        monomial = [
            controls[position]
            for position in range(arity)
            if (index >> position) & 1
        ]
        if len(monomial) <= 2:
            gates.append(ToffoliGate.from_names(gate.target, monomial))
        else:
            borrowed = [
                qubit
                for qubit in borrowable
                if qubit != gate.target and qubit not in monomial
            ]
            gates.extend(decompose_mct(monomial, gate.target, borrowed))
    return gates


def decompose_circuit(
    circuit: ReversibleCircuit, *, name: str | None = None
) -> ReversibleCircuit:
    """Rewrite a circuit over arbitrary gates into Toffoli (<=2-control) gates.

    Single-target gates are lowered through their algebraic normal form
    (:func:`single_target_gate_to_mct`); multi-controlled Toffoli gates go
    through the Barenco construction (negative controls are conjugated with
    NOTs first).  All decompositions borrow dirty qubits from the rest of
    the circuit, so the result has exactly the qubits (and roles) of the
    input circuit and computes the same permutation of basis states.
    """
    result = ReversibleCircuit(name or f"{circuit.name}_mct")
    for qubit in circuit.qubits():
        result.add_qubit(qubit, circuit.qubit(qubit).role)
    all_qubits = circuit.qubits()
    for gate in circuit.gates:
        if isinstance(gate, ToffoliGate):
            if gate.num_controls <= 2:
                result.append(gate)
                continue
            flips = [name for (name, polarity) in gate.controls if not polarity]
            for qubit in flips:
                result.append(ToffoliGate(qubit))
            borrowed = [q for q in all_qubits if q not in gate.qubits()]
            for lowered in decompose_mct(
                list(gate.control_names()), gate.target, borrowed
            ):
                result.append(lowered)
            for qubit in flips:
                result.append(ToffoliGate(qubit))
        else:
            for lowered in single_target_gate_to_mct(gate, all_qubits):
                result.append(lowered)
    return result


def barenco_and_oracle(
    num_inputs: int,
    *,
    input_prefix: str = "x",
    target: str = "h",
    ancilla: str = "a0",
    name: str | None = None,
) -> ReversibleCircuit:
    """The Fig. 6(d) construction: an ``num_inputs``-input AND oracle as a
    single multi-controlled Toffoli, decomposed with one borrowed ancilla.

    Returns a circuit with ``num_inputs + 2`` qubits (inputs, one ancilla,
    one output).  For 9 inputs the circuit has 48 Toffoli gates.
    """
    if num_inputs < 2:
        raise CircuitError("an AND oracle needs at least two inputs")
    circuit = ReversibleCircuit(name or f"and{num_inputs}_barenco")
    inputs = [f"{input_prefix}{index}" for index in range(num_inputs)]
    circuit.add_qubits(inputs, QubitRole.INPUT)
    circuit.add_qubit(ancilla, QubitRole.ANCILLA)
    circuit.add_qubit(target, QubitRole.OUTPUT)
    for gate in decompose_mct(inputs, target, [ancilla]):
        circuit.append(gate)
    return circuit
