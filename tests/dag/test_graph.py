"""Unit tests for the dependency DAG container."""

import pytest

from repro.errors import DagError
from repro.dag import Dag


class TestConstruction:
    def test_add_node_and_queries(self, fig2_dag):
        assert fig2_dag.num_nodes == 6
        assert fig2_dag.num_edges == 5
        assert set(fig2_dag.nodes()) == {"A", "B", "C", "D", "E", "F"}
        assert fig2_dag.dependencies("E") == ("C", "D")
        assert set(fig2_dag.dependents("A")) == {"C", "F"}

    def test_children_alias_matches_paper_terminology(self, fig2_dag):
        assert fig2_dag.children("E") == fig2_dag.dependencies("E")
        assert fig2_dag.children("A") == ()

    def test_duplicate_node_rejected(self):
        dag = Dag()
        dag.add_node("a")
        with pytest.raises(DagError):
            dag.add_node("a")

    def test_unknown_dependency_rejected(self):
        dag = Dag()
        with pytest.raises(DagError):
            dag.add_node("a", ["missing"])

    def test_self_dependency_rejected(self):
        dag = Dag()
        with pytest.raises(DagError):
            dag.add_node("a", ["a"])

    def test_forward_references_create_placeholders(self):
        dag = Dag()
        dag.add_node("b", ["a"], allow_forward_references=True)
        assert dag.has_placeholders()
        dag.add_node("a")
        assert not dag.has_placeholders()
        assert dag.dependencies("b") == ("a",)

    def test_validate_rejects_unresolved_placeholders(self):
        dag = Dag()
        dag.add_node("b", ["a"], allow_forward_references=True)
        with pytest.raises(DagError):
            dag.validate()

    def test_duplicate_dependencies_are_merged(self):
        dag = Dag()
        dag.add_node("a")
        dag.add_node("b", ["a", "a"])
        assert dag.dependencies("b") == ("a",)
        assert dag.num_edges == 1

    def test_cycle_rejected_and_rolled_back(self):
        dag = Dag()
        dag.add_node("a")
        dag.add_node("b", ["a"])
        # A placeholder-based cycle: c depends on d, d depends on c.
        dag.add_node("c", ["d"], allow_forward_references=True)
        with pytest.raises(DagError):
            dag.add_node("d", ["c"])
        # The failed insertion must not leave 'd' behind.
        assert "d" in dag.nodes()  # placeholder from the forward reference
        assert dag.dependencies("c") == ("d",)

    def test_node_metadata(self):
        dag = Dag()
        node = dag.add_node("m", [], operation="mul", weight=3.0, payload={"bits": 8})
        assert node.operation == "mul"
        assert dag.node("m").weight == 3.0
        assert dag.node("m").payload == {"bits": 8}

    def test_unknown_node_lookup(self):
        with pytest.raises(DagError):
            Dag().node("nope")

    def test_empty_dag_validation_fails(self):
        with pytest.raises(DagError):
            Dag().validate()


class TestOutputs:
    def test_outputs_default_to_sinks(self, fig2_dag):
        assert set(fig2_dag.sinks()) == {"E", "F"}
        assert set(fig2_dag.outputs()) == {"E", "F"}

    def test_explicit_outputs(self):
        dag = Dag()
        dag.add_node("a")
        dag.add_node("b", ["a"])
        dag.set_outputs(["a", "b"])
        assert dag.outputs() == ["a", "b"]
        assert dag.is_output("a") and dag.is_output("b")

    def test_unknown_output_rejected(self, fig2_dag):
        with pytest.raises(DagError):
            fig2_dag.set_outputs(["Z"])

    def test_empty_outputs_rejected(self, fig2_dag):
        with pytest.raises(DagError):
            fig2_dag.set_outputs([])

    def test_sources(self, fig2_dag):
        assert set(fig2_dag.sources()) == {"A", "B"}


class TestTraversal:
    def test_topological_order_respects_dependencies(self, fig2_dag):
        order = fig2_dag.topological_order()
        position = {node: index for index, node in enumerate(order)}
        for producer, consumer in fig2_dag.edges():
            assert position[producer] < position[consumer]

    def test_reverse_topological_order(self, fig2_dag):
        assert fig2_dag.reverse_topological_order() == list(
            reversed(fig2_dag.topological_order())
        )

    def test_transitive_fanin(self, fig2_dag):
        assert fig2_dag.transitive_fanin("E") == {"A", "B", "C", "D"}
        assert fig2_dag.transitive_fanin("A") == set()

    def test_transitive_fanout(self, fig2_dag):
        assert fig2_dag.transitive_fanout("A") == {"C", "E", "F"}
        assert fig2_dag.transitive_fanout("E") == set()

    def test_levels_and_depth(self, fig2_dag):
        levels = fig2_dag.levels()
        assert levels["A"] == 1
        assert levels["C"] == 2
        assert levels["E"] == 3
        assert fig2_dag.depth() == 3

    def test_chain_depth(self, chain_dag):
        assert chain_dag.depth() == 5

    def test_cone_extraction(self, fig2_dag):
        cone = fig2_dag.cone(["E"])
        assert set(cone.nodes()) == {"A", "B", "C", "D", "E"}
        assert cone.outputs() == ["E"]
        cone.validate()

    def test_cone_unknown_output(self, fig2_dag):
        with pytest.raises(DagError):
            fig2_dag.cone(["Z"])


class TestTransformations:
    def test_relabel_with_mapping(self, fig2_dag):
        renamed = fig2_dag.relabel({"A": "a", "E": "e"})
        assert "a" in renamed and "e" in renamed and "A" not in renamed
        assert set(renamed.outputs()) == {"e", "F"}
        renamed.validate()

    def test_relabel_with_callable(self, fig2_dag):
        renamed = fig2_dag.relabel(lambda node: f"{node}_x")
        assert set(renamed.nodes()) == {f"{n}_x" for n in fig2_dag.nodes()}

    def test_relabel_collision_rejected(self, fig2_dag):
        with pytest.raises(DagError):
            fig2_dag.relabel(lambda node: "same")

    def test_copy_is_independent(self, fig2_dag):
        clone = fig2_dag.copy()
        clone.add_node("G", ["E"])
        assert "G" not in fig2_dag
        assert "G" in clone


class TestStatistics:
    def test_statistics_fields(self, fig2_dag):
        stats = fig2_dag.statistics()
        assert stats.num_nodes == 6
        assert stats.num_edges == 5
        assert stats.num_outputs == 2
        assert stats.num_sources == 2
        assert stats.depth == 3
        assert stats.max_fanin == 2
        assert stats.max_fanout == 2
        assert stats.as_dict()["name"] == fig2_dag.name

    def test_operation_counts(self):
        dag = Dag()
        dag.add_node("a", [], operation="add")
        dag.add_node("b", [], operation="add")
        dag.add_node("c", ["a", "b"], operation="mul")
        assert dag.operation_counts() == {"add": 2, "mul": 1}

    def test_repr_mentions_size(self, fig2_dag):
        assert "nodes=6" in repr(fig2_dag)
