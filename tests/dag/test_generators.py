"""Unit and property-based tests for the synthetic DAG generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DagError
from repro.dag import layered_random_dag, linear_chain, random_binary_dag, tree_dag


class TestLinearChain:
    def test_structure(self):
        dag = linear_chain(5)
        assert dag.num_nodes == 5
        assert dag.num_edges == 4
        assert dag.depth() == 5
        assert dag.outputs() == ["n5"]

    def test_single_node(self):
        dag = linear_chain(1)
        assert dag.num_nodes == 1
        assert dag.outputs() == ["n1"]

    def test_rejects_non_positive_length(self):
        with pytest.raises(DagError):
            linear_chain(0)


class TestTreeDag:
    def test_binary_tree_over_nine_leaves(self):
        dag = tree_dag(9)
        # 9 leaves reduce with 8 internal nodes in a binary tree.
        assert dag.num_nodes == 9 + 8
        assert len(dag.outputs()) == 1
        dag.validate()

    def test_ternary_tree(self):
        dag = tree_dag(9, arity=3)
        assert len(dag.outputs()) == 1
        assert dag.statistics().max_fanin == 3

    def test_single_leaf(self):
        dag = tree_dag(1)
        assert dag.num_nodes == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(DagError):
            tree_dag(0)
        with pytest.raises(DagError):
            tree_dag(4, arity=1)


class TestRandomBinaryDag:
    def test_deterministic_for_seed(self):
        first = random_binary_dag(30, seed=7)
        second = random_binary_dag(30, seed=7)
        assert first.nodes() == second.nodes()
        assert first.edges() == second.edges()

    def test_different_seeds_differ(self):
        first = random_binary_dag(30, seed=1)
        second = random_binary_dag(30, seed=2)
        assert first.edges() != second.edges()

    def test_fanin_bounded_by_two(self):
        dag = random_binary_dag(50, seed=3)
        assert dag.statistics().max_fanin <= 2
        dag.validate()

    def test_rejects_bad_parameters(self):
        with pytest.raises(DagError):
            random_binary_dag(0)
        with pytest.raises(DagError):
            random_binary_dag(5, source_fraction=0.0)


class TestLayeredRandomDag:
    def test_requested_sizes(self):
        dag = layered_random_dag(60, 5, depth=10, seed=11)
        assert dag.num_nodes == 60
        assert len(dag.outputs()) >= 5
        dag.validate()

    def test_every_non_output_node_has_a_consumer(self):
        dag = layered_random_dag(80, 8, depth=12, seed=5)
        outputs = set(dag.outputs())
        for node in dag.nodes():
            assert node in outputs or dag.dependents(node), node

    def test_deterministic_for_seed(self):
        first = layered_random_dag(40, 4, seed=9)
        second = layered_random_dag(40, 4, seed=9)
        assert first.edges() == second.edges()
        assert first.outputs() == second.outputs()

    def test_rejects_bad_parameters(self):
        with pytest.raises(DagError):
            layered_random_dag(0, 1)
        with pytest.raises(DagError):
            layered_random_dag(10, 0)
        with pytest.raises(DagError):
            layered_random_dag(10, 11)
        with pytest.raises(DagError):
            layered_random_dag(10, 2, depth=0)
        with pytest.raises(DagError):
            layered_random_dag(10, 2, max_fanin=0)


@given(
    num_nodes=st.integers(min_value=1, max_value=40),
    num_outputs_fraction=st.floats(min_value=0.05, max_value=1.0),
    depth=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_layered_random_dag_is_always_valid(num_nodes, num_outputs_fraction, depth, seed):
    """Generated DAGs are acyclic, sized as requested, and fully useful."""
    num_outputs = max(1, int(num_nodes * num_outputs_fraction))
    dag = layered_random_dag(num_nodes, num_outputs, depth=depth, seed=seed)
    dag.validate()
    assert dag.num_nodes == num_nodes
    outputs = set(dag.outputs())
    assert len(outputs) >= num_outputs
    # Every node either is an output or feeds some other node.
    for node in dag.nodes():
        assert node in outputs or dag.dependents(node)


@given(
    num_leaves=st.integers(min_value=1, max_value=40),
    arity=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_tree_dag_single_output_and_acyclic(num_leaves, arity):
    dag = tree_dag(num_leaves, arity=arity)
    dag.validate()
    assert len(dag.outputs()) == 1
