"""Unit tests for DAG serialisation (JSON dict and DOT)."""

import json

import pytest

from repro.errors import DagError
from repro.dag import (
    dag_from_dict,
    dag_from_json,
    dag_to_dict,
    dag_to_dot,
    dag_to_json,
)


class TestJsonRoundTrip:
    def test_dict_round_trip_preserves_structure(self, fig2_dag):
        data = dag_to_dict(fig2_dag)
        rebuilt = dag_from_dict(data)
        assert set(rebuilt.nodes()) == set(map(str, fig2_dag.nodes()))
        assert set(rebuilt.outputs()) == set(map(str, fig2_dag.outputs()))
        assert rebuilt.num_edges == fig2_dag.num_edges

    def test_json_round_trip(self, fig2_dag):
        text = dag_to_json(fig2_dag)
        rebuilt = dag_from_json(text)
        assert rebuilt.num_nodes == fig2_dag.num_nodes
        assert json.loads(text)["name"] == fig2_dag.name

    def test_json_file_round_trip(self, fig2_dag, tmp_path):
        path = tmp_path / "dag.json"
        dag_to_json(fig2_dag, path)
        rebuilt = dag_from_json(path)
        assert rebuilt.num_nodes == fig2_dag.num_nodes
        rebuilt_again = dag_from_json(str(path))
        assert rebuilt_again.num_nodes == fig2_dag.num_nodes

    def test_operations_and_weights_preserved(self, fig2_dag):
        fig2_dag.node("A").weight = 2.5
        data = dag_to_dict(fig2_dag)
        rebuilt = dag_from_dict(data)
        assert rebuilt.node("A").weight == 2.5
        assert rebuilt.node("E").operation == "E"

    def test_malformed_dict_raises(self):
        with pytest.raises(DagError):
            dag_from_dict({"nodes": [{"dependencies": []}]})

    def test_invalid_json_raises(self):
        with pytest.raises(DagError):
            dag_from_json('{"nodes": not-json}')


class TestDot:
    def test_dot_contains_nodes_and_edges(self, fig2_dag):
        dot = dag_to_dot(fig2_dag)
        assert dot.startswith("digraph")
        for node in fig2_dag.nodes():
            assert f'"{node}"' in dot
        assert '"A" -> "C";' in dot

    def test_dot_highlights_outputs_and_marked_nodes(self, fig2_dag):
        dot = dag_to_dot(fig2_dag, highlight={"C"})
        assert "indianred1" in dot
        assert "lightblue" in dot
