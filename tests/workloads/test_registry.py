"""Tests for the evaluation-workload registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    and_tree_dag,
    example_dag,
    hadamard_gate_level_dag,
    list_workloads,
    load_workload,
    table1_rows,
)


class TestExampleDag:
    def test_matches_paper_fig2(self):
        dag = example_dag()
        assert set(dag.nodes()) == {"A", "B", "C", "D", "E", "F"}
        assert set(dag.outputs()) == {"E", "F"}
        assert dag.dependencies("C") == ("A",)
        assert dag.dependencies("D") == ("B",)
        assert dag.dependencies("E") == ("C", "D")
        assert dag.dependencies("F") == ("A",)


class TestAndTree:
    def test_fig6_shape(self):
        dag = and_tree_dag(9)
        assert dag.num_nodes == 8
        assert len(dag.outputs()) == 1
        assert dag.statistics().max_fanin == 2

    def test_other_widths(self):
        assert and_tree_dag(4).num_nodes == 3
        assert and_tree_dag(2).num_nodes == 1

    def test_rejects_single_input(self):
        with pytest.raises(WorkloadError):
            and_tree_dag(1)


class TestHadamardGateLevel:
    def test_b2_m3_size_class(self):
        dag = hadamard_gate_level_dag(2, 3)
        dag.validate()
        # The paper's b2_m3 has 74 XMG nodes; our own gate-level expansion
        # lands in the same size class (tens to low hundreds of nodes).
        assert 40 <= dag.num_nodes <= 200

    def test_larger_bitwidth_grows(self):
        small = hadamard_gate_level_dag(2, 3)
        large = hadamard_gate_level_dag(3, 7)
        assert large.num_nodes > small.num_nodes


class TestRegistry:
    def test_list_contains_all_named_workloads(self):
        names = list_workloads()
        for expected in ["fig2", "and9", "hadamard", "kummer-add", "edwards-add",
                         "b2_m3", "c17", "c6288"]:
            assert expected in names

    @pytest.mark.parametrize("name", ["fig2", "and9", "hadamard", "kummer-add",
                                      "kummer-double", "edwards-add", "c17"])
    def test_load_named_workloads(self, name):
        dag = load_workload(name)
        dag.validate()
        assert dag.num_nodes >= 1

    def test_load_is_case_insensitive(self):
        assert load_workload("FIG2").num_nodes == 6

    def test_hadamard_table_rows_scale(self):
        full = load_workload("b2_m3")
        half = load_workload("b4_m5", scale=0.5)
        assert full.num_nodes > 10
        assert half.num_nodes < load_workload("b4_m5").num_nodes

    def test_iscas_row_scaling(self):
        small = load_workload("c432", scale=0.1)
        assert small.num_nodes < 208
        small.validate()

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            load_workload("nonexistent")

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            load_workload("fig2", scale=0)

    def test_table1_rows_complete(self):
        rows = table1_rows()
        assert len(rows) == 20
        names = [row.name for row in rows]
        assert names[0] == "b2_m3" and names[-1] == "c7552"
        hadamard_rows = [row for row in rows if row.kind == "hadamard"]
        assert all(row.bits is not None and row.modulus is not None for row in hadamard_rows)
        assert all(row.paper_pebbles <= row.paper_bennett_pebbles for row in rows)
        assert all(row.paper_steps >= row.paper_bennett_steps for row in rows)


class TestBatchSuites:
    def test_list_suites(self):
        from repro.workloads import list_suites

        names = list_suites()
        assert "smoke" in names and "default" in names

    def test_suite_entries_resolve_to_valid_workloads(self):
        from repro.workloads import list_suites, load_workload, suite_entries

        for suite in list_suites():
            entries = suite_entries(suite)
            assert entries
            for entry in entries:
                assert entry.pebbles >= 1
                load_workload(entry.workload, scale=entry.scale).validate()

    def test_smoke_suite_is_subset_of_default_workloads(self):
        from repro.workloads import suite_entries

        default_names = {entry.name for entry in suite_entries("default")}
        assert {entry.name for entry in suite_entries("smoke")} <= default_names

    def test_unknown_suite_raises(self):
        from repro.errors import WorkloadError
        from repro.workloads import suite_entries

        with pytest.raises(WorkloadError):
            suite_entries("does-not-exist")

    def test_entry_names_are_unique_per_suite(self):
        from repro.workloads import list_suites, suite_entries

        for suite in list_suites():
            names = [entry.name for entry in suite_entries(suite)]
            assert len(names) == len(set(names))


class TestLoadWorkloadOrPathErrors:
    def test_missing_bench_file_is_a_targeted_error(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import load_workload_or_path

        with pytest.raises(WorkloadError, match="does not exist"):
            load_workload_or_path("missing_netlist.bench")

    def test_missing_json_file_lists_registry_workloads(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import load_workload_or_path

        with pytest.raises(WorkloadError, match="fig2"):
            load_workload_or_path("missing_dag.json")

    def test_unknown_name_lists_workloads_and_suites(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import load_workload_or_path

        with pytest.raises(WorkloadError) as caught:
            load_workload_or_path("definitely-not-a-workload")
        message = str(caught.value)
        assert "fig2" in message  # workload names
        assert "smoke" in message  # batch suite names

    def test_bad_scale_is_not_wrapped(self):
        from repro.errors import WorkloadError
        from repro.workloads.registry import load_workload_or_path

        with pytest.raises(WorkloadError, match="scale must be positive") as caught:
            load_workload_or_path("fig2", scale=0.0)
        assert "smoke" not in str(caught.value)

    def test_existing_paths_still_resolve(self, tmp_path):
        from repro.dag.io import dag_to_json
        from repro.workloads import example_dag
        from repro.workloads.registry import load_workload_or_path

        path = tmp_path / "example.json"
        dag_to_json(example_dag(), path)
        dag = load_workload_or_path(str(path))
        assert dag.num_nodes == 6
