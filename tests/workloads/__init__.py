"""Test package (keeps same-named test modules in distinct packages)."""
