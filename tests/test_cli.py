"""Tests for the ``repro-pebble`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dag.io import dag_to_json
from repro.logic.bench import write_bench
from repro.logic.iscas import c17_network
from repro.sat.dimacs import parse_dimacs
from repro.sat.solver import CdclSolver
from repro.workloads import example_dag


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["info", "fig2"],
            ["bennett", "fig2"],
            ["pebble", "fig2", "--pebbles", "4"],
            ["compare", "fig2"],
            ["pebble-batch", "--jobs", "2"],
            ["dimacs", "fig2", "--pebbles", "4", "--steps", "6"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pebble_schedule_choices(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["pebble", "fig2", "--pebbles", "4", "--schedule", "geometric-refine",
             "--cardinality", "totalizer"]
        )
        assert arguments.schedule == "geometric-refine"
        assert arguments.cardinality == "totalizer"
        with pytest.raises(SystemExit):
            parser.parse_args(["pebble", "fig2", "--pebbles", "4",
                               "--schedule", "sideways"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "c17" in out

    def test_info(self, capsys):
        assert main(["info", "fig2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 6

    def test_bennett(self, capsys):
        assert main(["bennett", "fig2", "--grid"]) == 0
        out = capsys.readouterr().out
        assert "bennett" in out
        assert "pebbles=6" in out
        assert "operations executed" in out

    def test_pebble_success(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30", "--grid"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out[: out.index("}") + 1] + "")
        assert summary["outcome"] == "solution"
        assert "peak pebbles" in out

    def test_pebble_stats_line(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30", "--stats"]) == 0
        out = capsys.readouterr().out
        stats_lines = [line for line in out.splitlines() if line.startswith("stats: ")]
        assert len(stats_lines) == 1
        for counter in ("decisions=", "propagations=", "blocker_hits=",
                        "heap_decisions=", "deadline_checks_skipped="):
            assert counter in stats_lines[0]

    def test_pebble_single_move(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "6", "--single-move",
                     "--timeout", "60"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["steps"] == 10

    def test_pebble_infeasible_budget_returns_nonzero(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "1", "--timeout", "5"]) == 2

    def test_compare(self, capsys):
        assert main(["compare", "fig2", "--timeout", "20"]) == 0
        out = capsys.readouterr().out
        assert "pebble reduction" in out
        assert "bennett pebbles/moves : 6 / 10" in out

    def test_pebble_cardinality_and_schedule(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30",
                     "--cardinality", "totalizer",
                     "--schedule", "geometric-refine"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["outcome"] == "solution"
        assert summary["steps"] == 6  # refine certifies the linear minimum

    def test_pebble_meaningless_combination_reports_error(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4",
                     "--schedule", "geometric", "--step-increment", "2"]) == 1
        assert "step_increment" in capsys.readouterr().err

    def test_dimacs_to_stdout_roundtrips(self, capsys):
        assert main(["dimacs", "fig2", "--pebbles", "4", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        cnf = parse_dimacs(out)
        assert CdclSolver(cnf).solve().is_sat

    def test_dimacs_to_file(self, tmp_path, capsys):
        destination = tmp_path / "fig2.cnf"
        assert main(["dimacs", "fig2", "--pebbles", "3", "--steps", "6",
                     "--cardinality", "pairwise", "-o", str(destination)]) == 0
        assert "wrote" in capsys.readouterr().out
        cnf = parse_dimacs(destination)
        assert CdclSolver(cnf).solve().is_unsat  # 3 pebbles are infeasible

    def test_pebble_batch_smoke_suite(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--jobs", "1",
                     "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "fig2_p4" in out and "c17_p4" in out
        assert "2 tasks, 2 solved" in out

    def test_pebble_batch_json_report(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--jobs", "2",
                     "--timeout", "30", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 2
        assert [row["outcome"] for row in report["results"]] == ["solution"] * 2

    def test_pebble_batch_list_suites(self, capsys):
        assert main(["pebble-batch", "--list-suites"]) == 0
        out = capsys.readouterr().out.split()
        assert "smoke" in out and "default" in out

    def test_pebble_batch_unknown_suite_reports_error(self, capsys):
        assert main(["pebble-batch", "--suite", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload_reports_error(self, capsys):
        assert main(["info", "does-not-exist"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_file_input(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        write_bench(c17_network(), path)
        assert main(["info", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 6

    def test_json_dag_input(self, tmp_path, capsys):
        path = tmp_path / "fig2.json"
        dag_to_json(example_dag(), path)
        assert main(["bennett", str(path)]) == 0
        assert "pebbles=6" in capsys.readouterr().out


class TestCompileCommand:
    def test_compile_json_report_is_verified(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--decompose",
                     "--json", "--timeout", "30"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outcome"] == "solution"
        assert report["verified"] is True
        assert report["decomposed"] is True
        assert report["qubits"] == 10
        assert report["t_count"] > 0

    def test_compile_human_readable_with_grid(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--grid",
                     "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "verified   : True" in out
        assert "peak pebbles" in out

    def test_compile_weighted_budget(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--weighted",
                     "--json", "--timeout", "30"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["weighted"] is True
        assert report["weight_used"] == 4.0

    def test_compile_infeasible_budget_returns_nonzero(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "2",
                     "--timeout", "10"]) == 2

    def test_compile_structural_workload_skips_verification(self, capsys):
        assert main(["compile", "hadamard", "--pebbles", "8", "--json",
                     "--timeout", "30"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verified"] is None

    def test_compile_json_with_grid_stays_parseable(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--json", "--grid",
                     "--timeout", "30"]) == 0
        json.loads(capsys.readouterr().out)  # grid must not corrupt JSON

    def test_compile_no_verify_flag(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--no-verify",
                     "--json", "--timeout", "30"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verified"] is None
        assert report["verify_patterns"] == 0


class TestSweepCommand:
    def test_sweep_table_marks_pareto_front(self, capsys):
        assert main(["sweep", "fig2", "--min-budget", "4", "--max-budget", "6",
                     "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        assert "on the Pareto front" in out

    def test_sweep_json_report(self, capsys):
        assert main(["sweep", "fig2", "--min-budget", "4", "--max-budget", "5",
                     "--jobs", "2", "--timeout", "30", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [point["budget"] for point in report["points"]] == [4, 5]
        assert all(point["outcome"] == "solution" for point in report["points"])
        assert any(point["pareto"] for point in report["points"])

    def test_sweep_json_exit_code_matches_table_mode(self, capsys):
        # All budgets infeasible: both output modes must signal failure.
        assert main(["sweep", "fig2", "--min-budget", "2", "--max-budget", "2",
                     "--timeout", "5", "--json"]) == 2
        report = json.loads(capsys.readouterr().out)
        assert all(not point["pareto"] for point in report["points"])

    def test_sweep_partial_budget_range_rejected(self, capsys):
        assert main(["sweep", "fig2", "--min-budget", "4"]) == 1
        assert "max-budget" in capsys.readouterr().err


class TestCompareFlags:
    def test_compare_accepts_schedule_and_cardinality(self, capsys):
        assert main(["compare", "fig2", "--timeout", "20",
                     "--schedule", "geometric-refine",
                     "--cardinality", "totalizer", "--grid"]) == 0
        out = capsys.readouterr().out
        assert "pebble reduction" in out
        assert "peak pebbles" in out  # --grid printed the strategy

    def test_compare_meaningless_combination_reports_error(self, capsys):
        assert main(["compare", "fig2", "--schedule", "geometric",
                     "--step-increment", "2"]) == 1
        assert "step_increment" in capsys.readouterr().err


class TestBatchFlags:
    def test_batch_accepts_cardinality_and_step_increment(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--timeout", "30",
                     "--cardinality", "totalizer", "--step-increment", "1"]) == 0
        assert "2 tasks, 2 solved" in capsys.readouterr().out

    def test_batch_meaningless_combination_yields_error_records(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--timeout", "10",
                     "--schedule", "geometric", "--step-increment", "3"]) == 1
        out = capsys.readouterr().out
        assert "error" in out


class TestPebbleWeighted:
    def test_pebble_weighted_summary(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--weighted",
                     "--timeout", "30"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["weighted"] is True
        assert summary["weight_used"] == 4.0


class TestCacheCommand:
    def test_warm_then_stats_then_clear(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        assert main(["cache", "warm", "--db", db, "--suite", "smoke",
                     "--timeout", "30"]) == 0
        assert "2 tasks, 2 solved" in capsys.readouterr().out
        assert main(["cache", "stats", "--db", db, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2 and stats["pebble_entries"] == 2
        assert main(["cache", "clear", "--db", db]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        assert main(["cache", "stats", "--db", db, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_pebble_db_round_trip_hits(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30",
                     "--db", db]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30",
                     "--db", db]) == 0
        hit = json.loads(capsys.readouterr().out)
        assert hit.pop("cached") is True  # hits are marked observably
        assert hit == cold  # otherwise stored verbatim, runtime included
        assert main(["cache", "stats", "--db", db, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_hits"] == 1

    def test_batch_db_populates_store(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        assert main(["pebble-batch", "--suite", "smoke", "--timeout", "30",
                     "--db", db, "--json"]) == 0
        first = json.loads(capsys.readouterr().out)["results"]
        assert main(["pebble-batch", "--suite", "smoke", "--timeout", "30",
                     "--db", db, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)["results"]
        for one, two in zip(first, second):
            assert one["outcome"] == two["outcome"]
            assert one["steps"] == two["steps"]
        assert main(["cache", "stats", "--db", db, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["total_hits"] >= 2

    def test_compile_db_round_trip(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        argv = ["compile", "fig2", "--pebbles", "4", "--decompose",
                "--timeout", "30", "--json", "--db", db]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        hit = json.loads(capsys.readouterr().out)
        assert hit == cold
        assert hit["verified"] is True

    def test_cache_warm_unknown_suite_fails(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        assert main(["cache", "warm", "--db", db, "--suite", "nope"]) == 1
        assert "valid names" in capsys.readouterr().err


class TestServeCommand:
    def test_request_file_mode(self, capsys, tmp_path):
        db = str(tmp_path / "cache.db")
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps({"requests": [
            {"kind": "pebble", "workload": "fig2", "budget": 4,
             "time_limit": 30},
            {"kind": "pebble", "workload": "fig2", "budget": 4,
             "time_limit": 30},
        ]}))
        assert main(["serve", "--json", str(requests), "--db", db]) == 0
        report = json.loads(capsys.readouterr().out)
        assert [r["status"] for r in report["results"]] == ["ok", "ok"]
        assert report["stats"]["deduplicated"] == 1
        assert report["store"]["entries"] >= 1

    def test_missing_request_file_is_a_clean_cli_error(self, capsys, tmp_path):
        assert main(["serve", "--json", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_request_file_is_a_clean_cli_error(self, capsys, tmp_path):
        requests = tmp_path / "requests.json"
        requests.write_text("{not json")
        assert main(["serve", "--json", str(requests)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_error_requests_fail_the_exit_code(self, capsys, tmp_path):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([
            {"kind": "pebble", "workload": "no-such-workload", "budget": 4},
        ]))
        assert main(["serve", "--json", str(requests)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["status"] == "error"
        assert "no-such-workload" in report["results"][0]["error"]


class TestBackendCli:
    @staticmethod
    def _stub_spec():
        from tests.external_stub_solver import stub_backend_spec

        return stub_backend_spec()

    def test_backends_subcommand_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cdcl", "dpll", "external"):
            assert name in out

    def test_backends_subcommand_json(self, capsys):
        assert main(["backends", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in data["backends"]}
        assert {"cdcl", "dpll", "external"} <= names
        by_name = {row["name"]: row for row in data["backends"]}
        assert by_name["cdcl"]["available"] is True

    def test_pebble_with_dpll_backend(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "60",
                     "--backend", "dpll"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["steps"] == 6
        assert summary["backend"] == "dpll"

    def test_pebble_with_external_stub_backend(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "60",
                     "--backend", self._stub_spec()]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["steps"] == 6

    def test_pebble_unknown_backend_lists_names(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4",
                     "--backend", "bogus"]) == 1
        err = capsys.readouterr().err
        assert "registered backends" in err
        assert "cdcl" in err and "dpll" in err

    def test_stats_line_prints_only_reported_counters(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "60",
                     "--backend", "dpll", "--stats"]) == 0
        out = capsys.readouterr().out
        stats_lines = [line for line in out.splitlines() if line.startswith("stats: ")]
        assert len(stats_lines) == 1
        assert "decisions=" in stats_lines[0]
        assert "solve_time=" in stats_lines[0]
        # CDCL-only counters must be absent, not reported as zero.
        for counter in ("blocker_hits=", "heap_decisions=", "conflicts="):
            assert counter not in stats_lines[0]

    def test_pebble_core_schedule(self, capsys):
        assert main(["pebble", "c17", "--pebbles", "4", "--timeout", "60",
                     "--schedule", "core-refine"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["steps"] == 8

    def test_batch_race_backends(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--timeout", "20",
                     "--race-backends", "cdcl,dpll", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["results"]) == 2
        for row in data["results"]:
            assert row["outcome"] == "solution"
            assert set(row["race"]) == {"cdcl", "dpll"}
            assert row["backend"] in ("cdcl", "dpll")

    def test_compile_with_backend(self, capsys):
        assert main(["compile", "fig2", "--pebbles", "4", "--timeout", "60",
                     "--backend", "dpll", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["backend"] == "dpll"
        assert report["verified"] is True

    def test_serve_with_default_backend(self, capsys, tmp_path):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps({
            "requests": [{"kind": "pebble", "workload": "fig2", "budget": 4,
                          "time_limit": 30}]
        }))
        assert main(["serve", "--json", str(requests), "--backend", "dpll"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["payload"]["backend"] == "dpll"
