"""Tests for the ``repro-pebble`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.dag.io import dag_to_json
from repro.logic.bench import write_bench
from repro.logic.iscas import c17_network
from repro.sat.dimacs import parse_dimacs
from repro.sat.solver import CdclSolver
from repro.workloads import example_dag


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["info", "fig2"],
            ["bennett", "fig2"],
            ["pebble", "fig2", "--pebbles", "4"],
            ["compare", "fig2"],
            ["pebble-batch", "--jobs", "2"],
            ["dimacs", "fig2", "--pebbles", "4", "--steps", "6"],
        ):
            assert parser.parse_args(argv).command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_pebble_schedule_choices(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["pebble", "fig2", "--pebbles", "4", "--schedule", "geometric-refine",
             "--cardinality", "totalizer"]
        )
        assert arguments.schedule == "geometric-refine"
        assert arguments.cardinality == "totalizer"
        with pytest.raises(SystemExit):
            parser.parse_args(["pebble", "fig2", "--pebbles", "4",
                               "--schedule", "sideways"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "c17" in out

    def test_info(self, capsys):
        assert main(["info", "fig2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 6

    def test_bennett(self, capsys):
        assert main(["bennett", "fig2", "--grid"]) == 0
        out = capsys.readouterr().out
        assert "bennett" in out
        assert "pebbles=6" in out
        assert "operations executed" in out

    def test_pebble_success(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30", "--grid"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out[: out.index("}") + 1] + "")
        assert summary["outcome"] == "solution"
        assert "peak pebbles" in out

    def test_pebble_stats_line(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30", "--stats"]) == 0
        out = capsys.readouterr().out
        stats_lines = [line for line in out.splitlines() if line.startswith("stats: ")]
        assert len(stats_lines) == 1
        for counter in ("decisions=", "propagations=", "blocker_hits=",
                        "heap_decisions=", "deadline_checks_skipped="):
            assert counter in stats_lines[0]

    def test_pebble_single_move(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "6", "--single-move",
                     "--timeout", "60"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["steps"] == 10

    def test_pebble_infeasible_budget_returns_nonzero(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "1", "--timeout", "5"]) == 2

    def test_compare(self, capsys):
        assert main(["compare", "fig2", "--timeout", "20"]) == 0
        out = capsys.readouterr().out
        assert "pebble reduction" in out
        assert "bennett pebbles/moves : 6 / 10" in out

    def test_pebble_cardinality_and_schedule(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30",
                     "--cardinality", "totalizer",
                     "--schedule", "geometric-refine"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["outcome"] == "solution"
        assert summary["steps"] == 6  # refine certifies the linear minimum

    def test_pebble_meaningless_combination_reports_error(self, capsys):
        assert main(["pebble", "fig2", "--pebbles", "4",
                     "--schedule", "geometric", "--step-increment", "2"]) == 1
        assert "step_increment" in capsys.readouterr().err

    def test_dimacs_to_stdout_roundtrips(self, capsys):
        assert main(["dimacs", "fig2", "--pebbles", "4", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        cnf = parse_dimacs(out)
        assert CdclSolver(cnf).solve().is_sat

    def test_dimacs_to_file(self, tmp_path, capsys):
        destination = tmp_path / "fig2.cnf"
        assert main(["dimacs", "fig2", "--pebbles", "3", "--steps", "6",
                     "--cardinality", "pairwise", "-o", str(destination)]) == 0
        assert "wrote" in capsys.readouterr().out
        cnf = parse_dimacs(destination)
        assert CdclSolver(cnf).solve().is_unsat  # 3 pebbles are infeasible

    def test_pebble_batch_smoke_suite(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--jobs", "1",
                     "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "fig2_p4" in out and "c17_p4" in out
        assert "2 tasks, 2 solved" in out

    def test_pebble_batch_json_report(self, capsys):
        assert main(["pebble-batch", "--suite", "smoke", "--jobs", "2",
                     "--timeout", "30", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 2
        assert [row["outcome"] for row in report["results"]] == ["solution"] * 2

    def test_pebble_batch_list_suites(self, capsys):
        assert main(["pebble-batch", "--list-suites"]) == 0
        out = capsys.readouterr().out.split()
        assert "smoke" in out and "default" in out

    def test_pebble_batch_unknown_suite_reports_error(self, capsys):
        assert main(["pebble-batch", "--suite", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload_reports_error(self, capsys):
        assert main(["info", "does-not-exist"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_file_input(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        write_bench(c17_network(), path)
        assert main(["info", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 6

    def test_json_dag_input(self, tmp_path, capsys):
        path = tmp_path / "fig2.json"
        dag_to_json(example_dag(), path)
        assert main(["bennett", str(path)]) == 0
        assert "pebbles=6" in capsys.readouterr().out
