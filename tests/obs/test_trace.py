"""Trace writer unit tests: spans, events, context shipping, merging."""

from __future__ import annotations

import json
import multiprocessing

from repro.obs import trace as obs_trace
from repro.obs.analyze import load_trace
from repro.obs.trace import TraceContext, tracer


def _worker_emit(ctx: TraceContext, value: int) -> None:
    """Adopt a shipped context and emit one span + event (child process)."""

    with obs_trace.activated(ctx):
        with obs_trace.span("worker.unit", value=value) as unit:
            unit.set(doubled=value * 2)
            obs_trace.event("worker.tick", value=value)


class TestInactiveMode:
    def test_span_yields_the_shared_null(self):
        assert not obs_trace.active()
        with obs_trace.span("anything", key="value") as first:
            with obs_trace.span("nested") as second:
                assert first is second  # the one shared _NULL_SPAN
                first.set(ignored=True)

    def test_event_and_context_are_no_ops(self):
        assert obs_trace.event("anything", key="value") is None
        assert obs_trace.current_context() is None

    def test_activated_none_is_a_no_op(self):
        with obs_trace.activated(None):
            assert not obs_trace.active()

    def test_tracer_none_yields_none(self):
        with tracer(None) as owner:
            assert owner is None
            assert not obs_trace.active()

    def test_disabled_instrumentation_is_cheap(self):
        # Guard the no-op fast path: 50k span+event pairs with tracing off
        # must stay one global read each.  The bound is deliberately huge
        # (wall-clock on shared CI is noisy); it exists to catch the
        # fast path growing I/O or allocation, not to micro-benchmark.
        import time

        started = time.perf_counter()
        for _ in range(50_000):
            with obs_trace.span("noop"):
                obs_trace.event("noop")
        assert time.perf_counter() - started < 5.0


class TestSingleProcess:
    def test_nested_spans_record_parentage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path):
            assert obs_trace.active()
            with obs_trace.span("root", kind="test") as root:
                with obs_trace.span("child") as child:
                    obs_trace.event("tick", n=1)
        trace = load_trace(path)
        assert trace.complete
        # Records merge by start timestamp, so the root sorts first even
        # though the child span closed (and was written) before it.
        assert [record["name"] for record in trace.spans] == ["root", "child"]
        by_name = {record["name"]: record for record in trace.spans}
        assert by_name["child"]["parent"] == by_name["root"]["span"]
        assert by_name["root"]["parent"] is None
        assert by_name["root"]["trace"] == by_name["child"]["trace"]
        assert root.span_id == by_name["root"]["span"]
        assert child.span_id == by_name["child"]["span"]
        (event,) = trace.events
        assert event["span"] == by_name["child"]["span"]
        assert event["attrs"] == {"n": 1}

    def test_sibling_top_level_spans_root_fresh_traces(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path):
            with obs_trace.span("first"):
                pass
            with obs_trace.span("second"):
                pass
        trace = load_trace(path)
        assert len(trace.roots) == 2
        assert len(trace.trace_ids) == 2

    def test_error_status_on_exception(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path):
            try:
                with obs_trace.span("boom", bound=4):
                    raise ValueError("injected")
            except ValueError:
                pass
        (record,) = load_trace(path).spans
        assert record["status"] == "error"
        assert record["attrs"]["bound"] == 4

    def test_spool_is_merged_and_removed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path) as owner:
            with obs_trace.span("root"):
                pass
            spool = owner.spool
        assert path.exists()
        assert not spool.exists()
        meta = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert meta["type"] == "meta"
        assert meta["schema"] == obs_trace.TRACE_SCHEMA
        assert meta["records"] == 1

    def test_truncated_part_line_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path) as owner:
            with obs_trace.span("root"):
                pass
            # A worker killed mid-write leaves a truncated final line.
            (owner.spool / "part-99999.jsonl").write_text(
                '{"type": "span", "name": "half', encoding="utf-8"
            )
        trace = load_trace(path)
        assert trace.complete
        assert [record["name"] for record in trace.spans] == ["root"]


class TestCrossProcess:
    def test_current_context_ships_the_open_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with tracer(path):
            with obs_trace.span("root") as root:
                ctx = obs_trace.current_context()
        assert isinstance(ctx, TraceContext)
        assert ctx.span_id == root.span_id

    def test_forked_workers_merge_under_the_owner_root(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        mp = multiprocessing.get_context("fork")
        with tracer(path):
            with obs_trace.span("root") as root:
                ctx = obs_trace.current_context()
                workers = [
                    mp.Process(target=_worker_emit, args=(ctx, value))
                    for value in (1, 2)
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                    assert worker.exitcode == 0
        trace = load_trace(path)
        assert trace.complete
        pids = {record["pid"] for record in trace.spans}
        assert len(pids) == 3  # the owner plus two forked children
        units = [r for r in trace.spans if r["name"] == "worker.unit"]
        assert len(units) == 2
        for record in units:
            assert record["parent"] == root.span_id
            assert record["trace"] == root.trace_id
            assert record["attrs"]["doubled"] == record["attrs"]["value"] * 2
        ticks = [r for r in trace.events if r["name"] == "worker.tick"]
        assert {t["span"] for t in ticks} == {u["span"] for u in units}

    def test_merge_orders_by_timestamp_across_pids(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        mp = multiprocessing.get_context("fork")
        with tracer(path):
            with obs_trace.span("root"):
                ctx = obs_trace.current_context()
                worker = mp.Process(target=_worker_emit, args=(ctx, 7))
                worker.start()
                worker.join()
        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()[1:]
        ]
        stamps = [(r["ts"], r["pid"], r["seq"]) for r in records]
        assert stamps == sorted(stamps)
