"""Cross-process trace merging through the real portfolio and cube lanes.

Property-based: the span tree must come back complete — every parent id
resolvable, every ``sat.call`` span attributed with its bound — for any
combination of pool width and cube count, because workers flush their own
part files and the owner merges them deterministically.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs import trace as obs_trace
from repro.obs.analyze import load_trace
from repro.obs.trace import tracer
from repro.pebbling.portfolio import PortfolioTask, run_portfolio
from repro.pebbling.solver import ReversiblePebblingSolver
from repro.workloads import load_workload


def _assert_sat_calls_attributed(trace) -> None:
    calls = [record for record in trace.spans if record["name"] == "sat.call"]
    assert calls, "no sat.call spans recorded"
    for record in calls:
        assert "bound" in record["attrs"]
        # Error spans (injected faults, cancellations) legitimately close
        # before a verdict lands; everything else must carry one.
        if record.get("status") != "error":
            assert "verdict" in record["attrs"]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(jobs=st.integers(min_value=1, max_value=2), cubes=st.sampled_from([0, 2, 4]))
def test_pool_and_cube_traces_merge_complete(jobs: int, cubes: int) -> None:
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "trace.jsonl"
        with tracer(path):
            if cubes:
                solver = ReversiblePebblingSolver(load_workload("fig2"))
                result = solver.solve(
                    4, time_limit=30.0, cubes=cubes, cube_jobs=jobs
                )
                assert result.found
            else:
                (record,) = run_portfolio(
                    [PortfolioTask("fig2", 4, time_limit=30.0)],
                    jobs=jobs,
                    force_pool=True,
                )
                assert record.found
        trace = load_trace(path)
        assert trace.complete, trace.problems
        assert trace.spans
        assert len(trace.trace_ids) == 1
        _assert_sat_calls_attributed(trace)
        pids = {record["pid"] for record in trace.spans + trace.events}
        if cubes == 0 or jobs >= 2:
            # force_pool portfolio runs and multi-lane cube searches cross
            # a process boundary, so the merged file must show the owner
            # plus at least one worker pid.
            assert len(pids) >= 2, pids
