"""Metrics registry semantics: instruments, merging, disabled no-ops."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_counters,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.sample() == 3.5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("repro_test_depth")
        gauge.set(7)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 5

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("repro_test_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        sample = histogram.sample()
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(6.05)
        # Prometheus semantics: each bucket counts everything at or below
        # its bound, and +Inf equals the total count.
        assert sample["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}


class TestRegistry:
    def test_instruments_are_cached_by_name(self, fresh_registry):
        assert fresh_registry.counter("repro_a_total") is fresh_registry.counter(
            "repro_a_total"
        )

    def test_kind_mismatch_raises(self, fresh_registry):
        fresh_registry.counter("repro_a_total")
        with pytest.raises(TypeError, match="already registered"):
            fresh_registry.gauge("repro_a_total")

    def test_snapshot_is_sorted_and_json_ready(self, fresh_registry):
        fresh_registry.counter("repro_b_total").inc()
        fresh_registry.gauge("repro_a_depth").set(2)
        fresh_registry.histogram("repro_c_seconds").observe(0.2)
        snap = fresh_registry.snapshot()
        assert list(snap) == ["repro_a_depth", "repro_b_total", "repro_c_seconds"]
        assert snap["repro_b_total"] == 1
        assert snap["repro_c_seconds"]["count"] == 1

    def test_exposition_renders_prometheus_text(self, fresh_registry):
        fresh_registry.counter("repro_a_total", help="things").inc(2)
        fresh_registry.histogram("repro_b_seconds", buckets=(1.0,)).observe(0.5)
        text = fresh_registry.exposition()
        assert "# HELP repro_a_total things" in text
        assert "# TYPE repro_a_total counter" in text
        assert "repro_a_total 2" in text
        assert 'repro_b_seconds_bucket{le="1"} 1' in text
        assert 'repro_b_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_b_seconds_count 1" in text
        assert text.endswith("\n")

    def test_absorb_counters_sums_and_high_watermarks(self, fresh_registry):
        fresh_registry.absorb_counters(
            {"conflicts": 10, "max_decision_level": 5, "label": "skip-me"}
        )
        fresh_registry.absorb_counters({"conflicts": 7, "max_decision_level": 3})
        snap = fresh_registry.snapshot()
        assert snap["repro_solver_conflicts_total"] == 17
        # High-water marks keep the max across absorbs, not the sum.
        assert snap["repro_solver_max_decision_level"] == 5
        assert not any("label" in name for name in snap)

    def test_reset_clears_instruments(self, fresh_registry):
        fresh_registry.counter("repro_a_total").inc()
        fresh_registry.reset()
        assert fresh_registry.snapshot() == {}


class TestDisabledMode:
    def test_disabled_registry_hands_out_the_shared_null(self, disabled_registry):
        null = disabled_registry.counter("repro_a_total")
        assert null is disabled_registry.gauge("repro_b_depth")
        assert null is disabled_registry.histogram("repro_c_seconds")
        null.inc()
        null.set(5)
        null.observe(1.0)
        assert null.value == 0.0
        assert disabled_registry.snapshot() == {}
        assert disabled_registry.exposition() == ""

    def test_disabled_absorb_is_a_no_op(self, disabled_registry):
        disabled_registry.absorb_counters({"conflicts": 10})
        assert disabled_registry.snapshot() == {}

    def test_module_helpers_follow_the_global_registry(self, disabled_registry):
        null = obs_metrics.counter("repro_x_total")
        assert not obs_metrics.enabled()
        obs_metrics.counter("repro_x_total").inc(99)
        assert obs_metrics.snapshot() == {}
        # Enabling is sticky for instruments fetched afterwards — call
        # sites must fetch at use time instead of caching the null.
        obs_metrics.enable()
        assert obs_metrics.enabled()
        live = obs_metrics.counter("repro_x_total")
        assert live is not null
        live.inc()
        assert obs_metrics.snapshot() == {"repro_x_total": 1}


class TestMergeCounters:
    def test_sums_and_keeps_high_watermarks(self):
        into: dict[str, float] = {}
        merge_counters(into, {"conflicts": 3, "max_decision_level": 9})
        merge_counters(into, {"conflicts": 4, "max_decision_level": 2})
        assert into == {"conflicts": 7, "max_decision_level": 9}

    def test_drops_non_numeric_and_bools(self):
        into: dict[str, float] = {}
        merge_counters(into, {"backend": "cdcl", "sticky": True, "n": 1})
        assert into == {"n": 1}

    def test_none_and_empty_are_no_ops(self):
        into = {"n": 1.0}
        assert merge_counters(into, None) is into
        assert merge_counters(into, {}) == {"n": 1.0}


def test_set_registry_swaps_and_returns_previous():
    ours = MetricsRegistry(enabled=True)
    previous = obs_metrics.set_registry(ours)
    try:
        assert obs_metrics.registry() is ours
    finally:
        restored = obs_metrics.set_registry(previous)
        assert restored is ours
    assert obs_metrics.registry() is previous
