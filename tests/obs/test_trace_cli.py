"""The ``--trace`` flag and the ``trace`` analysis subcommand end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def traced_run(tmp_path):
    """A real pebble run recorded under ``--trace``."""

    path = tmp_path / "run.jsonl"
    assert main(["pebble", "fig2", "--pebbles", "4", "--timeout", "30",
                 "--trace", str(path)]) == 0
    return path


class TestTraceFlag:
    def test_pebble_writes_a_merged_trace(self, traced_run, capsys):
        assert traced_run.exists()
        first = json.loads(traced_run.read_text(encoding="utf-8").splitlines()[0])
        assert first["type"] == "meta"
        capsys.readouterr()

    def test_batch_accepts_the_flag(self, tmp_path, capsys):
        path = tmp_path / "batch.jsonl"
        assert main(["pebble-batch", "--suite", "smoke", "--jobs", "1",
                     "--timeout", "30", "--trace", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()


class TestTraceSubcommand:
    def test_summarize_exits_zero_on_a_complete_tree(self, traced_run, capsys):
        assert main(["trace", "summarize", str(traced_run)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "sat.call" in out

    def test_summarize_json_output(self, traced_run, capsys):
        assert main(["trace", "summarize", str(traced_run), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["complete"] is True
        assert report["spans"] > 0
        assert "sat.call" in report["span_names"]

    def test_summarize_exits_one_on_an_empty_tree(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text(
            json.dumps({"type": "meta", "schema": 1, "records": 0}) + "\n",
            encoding="utf-8",
        )
        assert main(["trace", "summarize", str(empty)]) == 1
        capsys.readouterr()

    def test_summarize_exits_one_on_unresolved_parents(self, tmp_path, capsys):
        broken = tmp_path / "broken.jsonl"
        broken.write_text(
            json.dumps({"type": "span", "name": "orphan", "trace": "t1",
                        "span": "s1", "parent": "gone", "ts": 0.0, "dur": 1.0,
                        "status": "ok", "attrs": {}, "pid": 1, "seq": 0}) + "\n",
            encoding="utf-8",
        )
        assert main(["trace", "summarize", str(broken)]) == 1
        capsys.readouterr()

    def test_phases_prints_the_aggregate(self, traced_run, capsys):
        assert main(["trace", "phases", str(traced_run)]) == 0
        assert "sat.call" in capsys.readouterr().out

    def test_critical_path_walks_to_a_leaf(self, traced_run, capsys):
        assert main(["trace", "critical-path", str(traced_run)]) == 0
        assert "sat.call" in capsys.readouterr().out

    def test_critical_path_json(self, traced_run, capsys):
        assert main(["trace", "critical-path", str(traced_run), "--json"]) == 0
        path = json.loads(capsys.readouterr().out)
        assert path
        assert path[0]["dur_s"] >= path[-1]["dur_s"]
