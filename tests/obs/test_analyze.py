"""Offline trace analysis: tree building, aggregates, critical path."""

from __future__ import annotations

import json

import pytest

from repro.obs.analyze import critical_path, load_trace, phase_aggregate, summarize


def _write(path, records):
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n",
        encoding="utf-8",
    )
    return path


def _span(span, name, ts, dur, parent=None, trace="t1", status="ok", **attrs):
    return {
        "type": "span", "name": name, "trace": trace, "span": span,
        "parent": parent, "ts": ts, "dur": dur, "status": status,
        "attrs": attrs, "pid": 100, "seq": 0,
    }


@pytest.fixture
def request_trace(tmp_path):
    """One request: root 10s, a 6s solve with two sat calls, a 1s store op."""

    return _write(tmp_path / "trace.jsonl", [
        {"type": "meta", "schema": 1, "records": 5},
        _span("s1", "service.request", 0.0, 10.0, kind="pebble"),
        _span("s2", "solve", 1.0, 6.0, parent="s1"),
        _span("s3", "sat.call", 1.5, 2.0, parent="s2", bound=4, verdict="sat"),
        _span("s4", "sat.call", 4.0, 2.5, parent="s2", bound=3, verdict="unsat"),
        _span("s5", "store.write", 8.0, 1.0, parent="s1"),
        {"type": "event", "name": "store.warm", "trace": "t1", "span": "s5",
         "ts": 8.5, "attrs": {}, "pid": 100, "seq": 5},
    ])


class TestLoadTrace:
    def test_builds_the_tree(self, request_trace):
        trace = load_trace(request_trace)
        assert trace.complete
        assert trace.meta["schema"] == 1
        assert [root.name for root in trace.roots] == ["service.request"]
        root = trace.roots[0]
        assert [child.name for child in root.children] == ["solve", "store.write"]
        solve = root.children[0]
        assert [child.attrs["bound"] for child in solve.children] == [4, 3]
        assert trace.by_id["s5"].events[0]["name"] == "store.warm"
        assert trace.trace_ids == ["t1"]

    def test_orphans_are_reported_not_fatal(self, tmp_path):
        path = _write(tmp_path / "bad.jsonl", [
            _span("s1", "lost.child", 0.0, 1.0, parent="gone"),
            {"type": "event", "name": "stray", "trace": "t1", "span": "also-gone",
             "ts": 0.5, "attrs": {}, "pid": 100, "seq": 1},
            {"type": "mystery"},
        ])
        trace = load_trace(path)
        assert not trace.complete
        assert len(trace.problems) == 3
        # The orphaned span is still inspectable as a root.
        assert [root.name for root in trace.roots] == ["lost.child"]

    def test_duplicate_span_ids_flagged(self, tmp_path):
        path = _write(tmp_path / "dup.jsonl", [
            _span("s1", "a", 0.0, 1.0),
            _span("s1", "b", 2.0, 1.0),
        ])
        assert "duplicate span ids" in load_trace(path).problems


class TestSummarize:
    def test_counts_and_per_name_aggregates(self, request_trace):
        report = summarize(load_trace(request_trace))
        assert report["schema"] == 1
        assert report["traces"] == 1
        assert report["spans"] == 5
        assert report["events"] == 1
        assert report["processes"] == 1
        assert report["complete"] is True
        sat = report["span_names"]["sat.call"]
        assert sat["count"] == 2
        assert sat["total_s"] == pytest.approx(4.5)
        assert sat["mean_s"] == pytest.approx(2.25)
        assert sat["errors"] == 0
        assert report["event_names"] == {"store.warm": 1}

    def test_error_spans_counted(self, tmp_path):
        path = _write(tmp_path / "err.jsonl", [
            _span("s1", "sat.call", 0.0, 1.0, status="error", bound=2),
        ])
        report = summarize(load_trace(path))
        assert report["span_names"]["sat.call"]["errors"] == 1


class TestPhaseAggregate:
    def test_self_time_subtracts_children(self, request_trace):
        rows = {row["phase"]: row for row in phase_aggregate(load_trace(request_trace))}
        # The request span is 10s total but spends 7s in its children.
        assert rows["service.request"]["total_s"] == pytest.approx(10.0)
        assert rows["service.request"]["self_s"] == pytest.approx(3.0)
        assert rows["solve"]["self_s"] == pytest.approx(1.5)
        assert rows["sat.call"]["self_s"] == pytest.approx(4.5)
        assert rows["sat.call"]["max_s"] == pytest.approx(2.5)

    def test_sorted_by_total_descending(self, request_trace):
        totals = [row["total_s"] for row in phase_aggregate(load_trace(request_trace))]
        assert totals == sorted(totals, reverse=True)


class TestCriticalPath:
    def test_descends_into_the_latest_finishing_child(self, request_trace):
        path = critical_path(load_trace(request_trace))
        # store.write ends at 9.0, after solve (7.0): the request's latency
        # was determined by the store write, not the solve.
        assert [step["name"] for step in path] == ["service.request", "store.write"]
        assert path[0]["dur_s"] == pytest.approx(10.0)

    def test_filters_by_trace_id(self, tmp_path):
        path = _write(tmp_path / "two.jsonl", [
            _span("s1", "short", 0.0, 1.0, trace="t1"),
            _span("s2", "long", 0.0, 5.0, trace="t2"),
        ])
        trace = load_trace(path)
        assert [s["name"] for s in critical_path(trace)] == ["long"]
        assert [s["name"] for s in critical_path(trace, "t1")] == ["short"]
        assert critical_path(trace, "t-missing") == []
