"""Fixtures isolating the process-global observability state.

The metrics registry and the tracer are deliberately module-global (so
library code can instrument unconditionally), which means tests must
swap them out rather than mutate the shared instances: the service layer
enables the global registry as a side effect, and a leaked enablement
would silently change what other tests measure.
"""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def fresh_registry():
    """A clean enabled registry installed as the global, restored after."""

    registry = MetricsRegistry(enabled=True)
    previous = obs_metrics.set_registry(registry)
    try:
        yield registry
    finally:
        obs_metrics.set_registry(previous)


@pytest.fixture
def disabled_registry():
    """A clean disabled registry installed as the global, restored after."""

    registry = MetricsRegistry(enabled=False)
    previous = obs_metrics.set_registry(registry)
    try:
        yield registry
    finally:
        obs_metrics.set_registry(previous)
