"""Package-level tests: public API surface and exception hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.circuits
        import repro.dag
        import repro.logic
        import repro.pebbling
        import repro.sat
        import repro.slp

        for module in (repro.sat, repro.dag, repro.logic, repro.slp,
                       repro.pebbling, repro.circuits):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_quickstart_snippet_from_readme(self):
        dag = repro.load_workload("fig2")
        baseline = repro.bennett_strategy(dag)
        result = repro.pebble_dag(dag, max_pebbles=4, time_limit=30)
        assert baseline.max_pebbles == 6
        assert result.found
        assert "pebbles" in repro.strategy_report(result.strategy)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.CnfError,
            errors.SolverError,
            errors.ResourceLimitError,
            errors.DagError,
            errors.LogicNetworkError,
            errors.BenchParseError,
            errors.SlpError,
            errors.PebblingError,
            errors.InvalidStrategyError,
            errors.CircuitError,
            errors.WorkloadError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)
        assert issubclass(exception, Exception)

    def test_specialised_subclasses(self):
        assert issubclass(errors.BenchParseError, errors.LogicNetworkError)
        assert issubclass(errors.InvalidStrategyError, errors.PebblingError)

    def test_catching_the_base_class_catches_library_failures(self):
        with pytest.raises(errors.ReproError):
            repro.load_workload("no-such-workload")
