"""Round-trip tests for the JSON forms of results and reports."""

import json

import pytest

from repro.circuits.pipeline import CompilationReport, compile_workload
from repro.errors import PebblingError
from repro.pebbling.solver import (
    PebblingOutcome,
    PebblingResult,
    ReversiblePebblingSolver,
)
from repro.workloads import example_dag, load_workload


def _round_trip(result: PebblingResult, dag) -> PebblingResult:
    payload = json.dumps(result.to_json(), sort_keys=True)
    return PebblingResult.from_json(json.loads(payload), dag)


class TestPebblingResultJson:
    def test_solution_round_trip_is_lossless(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        assert result.found
        rebuilt = _round_trip(result, fig2_dag)
        assert json.dumps(rebuilt.to_json(), sort_keys=True) == json.dumps(
            result.to_json(), sort_keys=True
        )
        assert rebuilt.strategy.configurations == result.strategy.configurations
        assert rebuilt.num_steps == result.num_steps
        assert rebuilt.runtime == result.runtime
        assert [a.solver_stats for a in rebuilt.attempts] == [
            a.solver_stats for a in result.attempts
        ]

    def test_unsolved_round_trip(self, fig2_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(3, time_limit=60)
        assert result.outcome is PebblingOutcome.STEP_LIMIT
        rebuilt = _round_trip(result, fig2_dag)
        assert rebuilt.strategy is None
        assert rebuilt.outcome is PebblingOutcome.STEP_LIMIT
        assert rebuilt.complete is result.complete is True

    def test_single_move_strategies_keep_their_move_cap(self, fig2_dag):
        from repro.pebbling.encoding import EncodingOptions

        result = ReversiblePebblingSolver(
            fig2_dag, options=EncodingOptions(max_moves_per_step=1)
        ).solve(4, time_limit=60)
        rebuilt = _round_trip(result, fig2_dag)
        assert rebuilt.strategy.max_moves_per_step == 1

    def test_foreign_dag_is_rejected(self, fig2_dag, chain_dag):
        result = ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60)
        with pytest.raises(PebblingError, match="different DAG"):
            PebblingResult.from_json(result.to_json(), chain_dag)


class TestCompilationReportJson:
    def test_verified_report_round_trip(self):
        report = compile_workload(
            "fig2", pebbles=4, decompose=True, time_limit=60
        )
        assert report.found and report.verified
        dag = load_workload("fig2")
        rebuilt = CompilationReport.from_json(report.to_json(), dag)
        assert json.dumps(rebuilt.to_json(), sort_keys=True) == json.dumps(
            report.to_json(), sort_keys=True
        )
        assert rebuilt.as_dict() == report.as_dict()
        # The strategy travels (grids can be reprinted from cache)...
        assert rebuilt.strategy is not None
        assert rebuilt.strategy.num_steps == report.steps
        # ... the compiled circuit object does not (recompute on demand).
        assert rebuilt.circuit is None

    def test_foreign_dag_is_rejected(self, chain_dag):
        report = compile_workload("fig2", pebbles=4, time_limit=60)
        with pytest.raises(PebblingError, match="different DAG"):
            CompilationReport.from_json(report.to_json(), chain_dag)

    def test_unsolved_report_round_trip(self):
        report = compile_workload("fig2", pebbles=3, time_limit=60)
        assert not report.found
        rebuilt = CompilationReport.from_json(
            report.to_json(), load_workload("fig2")
        )
        assert rebuilt.strategy is None
        assert rebuilt.outcome == report.outcome
        assert rebuilt.qubits is None


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
