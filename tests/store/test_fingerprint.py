"""Tests for the canonical DAG/network/request fingerprints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import Dag
from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.search import GeometricRefine, LinearSearch
from repro.sat.cards import CardinalityEncoding
from repro.store import (
    dag_fingerprint,
    exact_dag_digest,
    network_digest,
    options_key,
    pebble_request_key,
)
from repro.workloads import and_tree_network, example_dag, example_network


def _relabelled_fig2() -> Dag:
    return example_dag().relabel(
        {"A": "n1", "B": "n2", "C": "n3", "D": "n4", "E": "n5", "F": "n6"}
    )


def _reordered_fig2() -> Dag:
    """Fig. 2 with the same labels but a different insertion order."""
    dag = Dag("fig2_example")
    dag.add_node("B", [], operation="B")
    dag.add_node("A", [], operation="A")
    dag.add_node("F", ["A"], operation="F")
    dag.add_node("D", ["B"], operation="D")
    dag.add_node("C", ["A"], operation="C")
    dag.add_node("E", ["C", "D"], operation="E")
    dag.set_outputs(["E", "F"])
    return dag


class TestDagFingerprint:
    def test_relabelling_preserves_fingerprint(self):
        assert dag_fingerprint(example_dag()) == dag_fingerprint(_relabelled_fig2())

    def test_insertion_order_is_irrelevant(self):
        assert dag_fingerprint(example_dag()) == dag_fingerprint(_reordered_fig2())

    def test_extra_edge_changes_fingerprint(self):
        dag = Dag("fig2_example")
        dag.add_node("A", [], operation="A")
        dag.add_node("B", [], operation="B")
        dag.add_node("C", ["A"], operation="C")
        dag.add_node("D", ["B"], operation="D")
        dag.add_node("E", ["C", "D"], operation="E")
        dag.add_node("F", ["A", "B"], operation="F")  # extra edge B -> F
        dag.set_outputs(["E", "F"])
        assert dag_fingerprint(dag) != dag_fingerprint(example_dag())

    def test_output_designation_changes_fingerprint(self):
        full = example_dag()
        other = example_dag()
        other.set_outputs(["E"])
        assert dag_fingerprint(full) != dag_fingerprint(other)

    def test_operation_and_weight_change_fingerprint(self):
        base = Dag("d")
        base.add_node("x", [], operation="AND")
        renamed_op = Dag("d")
        renamed_op.add_node("x", [], operation="XOR")
        heavier = Dag("d")
        heavier.add_node("x", [], operation="AND", weight=2.0)
        prints = {dag_fingerprint(base), dag_fingerprint(renamed_op),
                  dag_fingerprint(heavier)}
        assert len(prints) == 3

    def test_dag_name_does_not_matter(self):
        a = Dag("one")
        a.add_node("x", [])
        b = Dag("two")
        b.add_node("x", [])
        assert dag_fingerprint(a) == dag_fingerprint(b)

    def test_chain_versus_star_differ(self):
        chain = Dag("g")
        chain.add_node("a", [])
        chain.add_node("b", ["a"])
        chain.add_node("c", ["b"])
        star = Dag("g")
        star.add_node("a", [])
        star.add_node("b", ["a"])
        star.add_node("c", ["a"])
        assert dag_fingerprint(chain) != dag_fingerprint(star)

    def test_twin_chains_refine_past_initial_colours(self):
        # Two disjoint chains vs one chain plus a disconnected pair: the
        # initial degree colours coincide pairwise, only WL refinement
        # separates the depth-3 chain from the depth-2 one.
        twins = Dag("g")
        for prefix in ("p", "q"):
            twins.add_node(f"{prefix}1", [])
            twins.add_node(f"{prefix}2", [f"{prefix}1"])
            twins.add_node(f"{prefix}3", [f"{prefix}2"])
        lopsided = Dag("g")
        lopsided.add_node("p1", [])
        lopsided.add_node("p2", ["p1"])
        lopsided.add_node("p3", ["p2"])
        lopsided.add_node("p4", ["p3"])
        lopsided.add_node("q1", [])
        lopsided.add_node("q2", ["q1"])
        assert dag_fingerprint(twins) != dag_fingerprint(lopsided)


# ---------------------------------------------------------------------------
# hypothesis: random DAGs stay fingerprint-equal under relabel + reorder
# ---------------------------------------------------------------------------
def _random_dag(edge_bits: list[bool], num_nodes: int) -> Dag:
    """Deterministic DAG from an edge-choice bitmap over the upper triangle."""
    dag = Dag("random")
    bit = 0
    for target in range(num_nodes):
        dependencies = []
        for source in range(target):
            if edge_bits[bit % len(edge_bits)] if edge_bits else False:
                dependencies.append(f"v{source}")
            bit += 1
        dag.add_node(f"v{target}", dependencies, operation=f"op{target % 3}")
    return dag


@st.composite
def dag_and_permutation(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=7))
    edge_bits = draw(
        st.lists(st.booleans(), min_size=1, max_size=num_nodes * num_nodes)
    )
    permutation = draw(st.permutations(list(range(num_nodes))))
    return num_nodes, edge_bits, permutation


class TestFingerprintProperties:
    @given(dag_and_permutation())
    @settings(max_examples=60, deadline=None)
    def test_relabelled_and_reordered_dags_hash_equal(self, case):
        num_nodes, edge_bits, permutation = case
        dag = _random_dag(edge_bits, num_nodes)
        mapping = {f"v{i}": f"w{permutation[i]}" for i in range(num_nodes)}
        relabelled = dag.relabel(mapping)
        assert dag_fingerprint(dag) == dag_fingerprint(relabelled)
        # Rebuild the relabelled DAG from scratch in alphabetical (usually
        # non-topological) insertion order: same structure, different
        # construction history.
        rebuilt = Dag("rebuilt")
        for node in sorted(relabelled.nodes(), key=str):
            record = relabelled.node(node)
            rebuilt.add_node(
                node,
                relabelled.dependencies(node),
                operation=record.operation,
                weight=record.weight,
                allow_forward_references=True,
            )
        rebuilt.set_outputs(relabelled.outputs())
        assert dag_fingerprint(rebuilt) == dag_fingerprint(dag)
        # The exact digest is label-sensitive: the v* -> w* rename always
        # changes it, even though the fingerprint is unmoved.
        assert exact_dag_digest(dag) != exact_dag_digest(relabelled)

    @given(dag_and_permutation(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_structurally_distinct_dags_hash_differently(self, case, extra):
        num_nodes, edge_bits, _ = case
        dag = _random_dag(edge_bits, num_nodes)
        # Grow a structurally different DAG: one more sink node hanging off
        # an existing node — node count is part of the structure, so the
        # fingerprints must differ.
        grown = dag.copy()
        grown.add_node("vX", [f"v{extra % num_nodes}"], operation="op0")
        assert dag_fingerprint(dag) != dag_fingerprint(grown)


class TestExactDigest:
    def test_relabelling_changes_exact_digest(self):
        assert exact_dag_digest(example_dag()) != exact_dag_digest(_relabelled_fig2())

    def test_reordering_preserves_exact_digest(self):
        assert exact_dag_digest(example_dag()) == exact_dag_digest(_reordered_fig2())

    def test_name_is_part_of_exact_digest(self):
        a = example_dag()
        b = example_dag()
        b.name = "different"
        assert exact_dag_digest(a) != exact_dag_digest(b)


class TestNetworkDigest:
    def test_identical_networks_agree(self):
        assert network_digest(example_network()) == network_digest(example_network())

    def test_gate_function_matters(self):
        assert network_digest(example_network()) != network_digest(
            and_tree_network(9)
        )


class TestRequestKeys:
    def test_options_key_ignores_cardinality(self):
        sequential = EncodingOptions(cardinality=CardinalityEncoding.SEQUENTIAL)
        totalizer = EncodingOptions(cardinality=CardinalityEncoding.TOTALIZER)
        assert options_key(sequential) == options_key(totalizer)
        assert options_key(sequential) != options_key(
            EncodingOptions(weighted=True)
        )
        assert options_key(sequential) != options_key(
            EncodingOptions(max_moves_per_step=1)
        )

    def test_pebble_request_key_separates_parameters(self):
        base = dict(
            exact_digest="d",
            budget=4,
            options=EncodingOptions(),
            search=LinearSearch(),
            incremental=True,
            initial_steps=None,
            max_steps=None,
            step_floor=None,
        )
        key = pebble_request_key(**base)
        assert key == pebble_request_key(**base)
        for tweak in (
            {"budget": 5},
            {"search": GeometricRefine()},
            {"search": LinearSearch(step_increment=2)},
            {"incremental": False},
            {"initial_steps": 3},
            {"max_steps": 10},
            {"step_floor": 2},
            {"options": EncodingOptions(cardinality=CardinalityEncoding.TOTALIZER)},
            {"exact_digest": "other"},
        ):
            assert pebble_request_key(**{**base, **tweak}) != key

    def test_search_signatures(self):
        assert LinearSearch().signature == "linear:1"
        assert LinearSearch(step_increment=3).signature == "linear:3"
        assert GeometricRefine().signature == "geometric-refine:1.5"
        assert LinearSearch().certifies_minimality
        assert not LinearSearch(step_increment=3).certifies_minimality
        assert GeometricRefine().certifies_minimality


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
