"""Tests for the SQLite result store: round trips, warm starts, eviction."""

import json

import pytest

from repro.pebbling.encoding import EncodingOptions
from repro.pebbling.portfolio import task_solve_parameters, tasks_from_suite
from repro.pebbling.search import LinearSearch
from repro.pebbling.solver import PebblingOutcome, ReversiblePebblingSolver
from repro.store import ResultStore, StoreError
from repro.workloads import example_dag, load_workload
from repro.workloads.registry import load_workload_or_path


def _solve(dag, budget, *, store=None, schedule="linear", **kwargs):
    solver = ReversiblePebblingSolver(dag)
    return solver.solve(
        budget, strategy=schedule, time_limit=60, store=store, **kwargs
    )


class TestExactReuse:
    def test_hit_is_byte_identical_and_solver_free(self, fig2_dag):
        with ResultStore(":memory:") as store:
            cold = _solve(fig2_dag, 4, store=store)
            assert store.stats().entries == 1
            hit = _solve(fig2_dag, 4, store=store)
            assert json.dumps(cold.to_json(), sort_keys=True) == json.dumps(
                hit.to_json(), sort_keys=True
            )
            # Exactly one put, one miss, one hit — the second solve never
            # built an encoder or ran a SAT call of its own.
            assert store.session["hits"] == 1
            assert store.session["puts"] == 1

    def test_infeasible_budgets_are_cached_too(self, fig2_dag):
        with ResultStore(":memory:") as store:
            cold = _solve(fig2_dag, 1, store=store)
            assert cold.outcome is PebblingOutcome.INFEASIBLE
            hit = _solve(fig2_dag, 1, store=store)
            assert hit.outcome is PebblingOutcome.INFEASIBLE
            assert store.session["hits"] == 1

    def test_different_parameters_miss(self, fig2_dag):
        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store)
            assert store.session["hits"] == 0
            _solve(fig2_dag, 5, store=store)  # other budget
            _solve(fig2_dag, 4, store=store, schedule="geometric-refine")
            assert store.session["hits"] == 0
            assert store.stats().entries == 3

    def test_relabelled_dag_does_not_share_exact_results(self, fig2_dag):
        mapping = {"A": "a", "B": "b", "C": "c", "D": "d", "E": "e", "F": "f"}
        relabelled = fig2_dag.relabel(mapping)
        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store)
            result = _solve(relabelled, 4, store=store)
            # No exact hit (labels differ) — but a fresh, valid result.
            assert store.session["hits"] == 0
            assert result.found
            assert all(
                str(node).islower()
                for configuration in result.strategy.configurations
                for node in configuration
            )

    def test_incomplete_results_are_not_stored(self, and9_dag):
        with ResultStore(":memory:") as store:
            result = ReversiblePebblingSolver(and9_dag).solve(
                5, time_limit=0.0, store=store
            )
            assert result.outcome is PebblingOutcome.TIMEOUT
            assert store.stats().entries == 0


class TestWarmStart:
    def test_bracketed_budget_needs_one_sat_call(self, fig2_dag):
        cold = _solve(fig2_dag, 5, schedule="geometric-refine")
        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store, schedule="geometric-refine")
            _solve(fig2_dag, 6, store=store, schedule="geometric-refine")
            warm = _solve(fig2_dag, 5, store=store, schedule="geometric-refine")
        assert warm.num_steps == cold.num_steps == 5
        assert len(warm.attempts) < len(cold.attempts)
        assert len(warm.attempts) == 1
        assert warm.minimal

    def test_warm_bounds_transfer_to_relabelled_dags(self, fig2_dag):
        relabelled = fig2_dag.relabel(lambda node: f"renamed_{node}")
        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store, schedule="geometric-refine")
            _solve(fig2_dag, 6, store=store, schedule="geometric-refine")
            warm = _solve(relabelled, 5, store=store, schedule="geometric-refine")
        assert warm.found and warm.num_steps == 5
        assert len(warm.attempts) == 1

    def test_warm_start_extraction_directions(self, fig2_dag):
        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store)  # minimal solution, 6 steps
            options = EncodingOptions()
            # Tighter-or-equal cached budget bounds looser requests above.
            above = store.warm_start(fig2_dag, budget=6, options=options)
            assert above.step_ceiling == 6 and above.step_floor is None
            # Looser-or-equal cached budget floors tighter requests.
            below = store.warm_start(fig2_dag, budget=3, options=options)
            assert below.step_floor == 6 and below.step_ceiling is None
            # Different game semantics: nothing transfers.
            assert (
                store.warm_start(
                    fig2_dag, budget=5,
                    options=EncodingOptions(max_moves_per_step=1),
                )
                is None
            )

    def test_overshooting_schedules_ignore_warm_bounds(self, fig2_dag):
        # A warm floor shifts the probe grid of geometric / coarse-linear
        # schedules and would change (worsen) the answer for the *same*
        # request — so those schedules must not consume warm bounds.
        from repro.pebbling.search import GeometricSearch

        for schedule in (GeometricSearch(), LinearSearch(step_increment=2)):
            cold = _solve(fig2_dag, 4, schedule=schedule)
            with ResultStore(":memory:") as store:
                _solve(fig2_dag, 5, store=store, schedule="geometric-refine")
                _solve(fig2_dag, 6, store=store, schedule="geometric-refine")
                warmed = _solve(fig2_dag, 4, store=store, schedule=schedule)
            assert warmed.num_steps == cold.num_steps
            assert [a.num_steps for a in warmed.attempts] == [
                a.num_steps for a in cold.attempts
            ]

    def test_uncertified_steps_do_not_floor(self, fig2_dag):
        with ResultStore(":memory:") as store:
            loose = _solve(fig2_dag, 4, store=store, schedule="geometric")
            assert loose.found and not loose.minimal
            warm = store.warm_start(fig2_dag, budget=3, options=EncodingOptions())
            assert warm is None or warm.step_floor is None


class TestMaintenance:
    def test_eviction_keeps_most_recent(self, fig2_dag):
        with ResultStore(":memory:", max_entries=2) as store:
            _solve(fig2_dag, 4, store=store)
            _solve(fig2_dag, 5, store=store)
            _solve(fig2_dag, 6, store=store)
            stats = store.stats()
            assert stats.entries == 2
            assert store.session["evictions"] == 1
            # The oldest row (budget 4) was evicted; 5 and 6 still hit.
            assert store.warm_start(
                fig2_dag, budget=4, options=EncodingOptions()
            ).step_floor is not None
            _solve(fig2_dag, 5, store=store)
            _solve(fig2_dag, 6, store=store)
            assert store.session["hits"] == 2

    def test_warm_reads_refresh_lru_recency(self, fig2_dag, chain_dag):
        with ResultStore(":memory:", max_entries=2) as store:
            _solve(fig2_dag, 4, store=store)  # anchor: oldest row, 6 steps
            _solve(fig2_dag, 6, store=store)
            # A pure warm probe uses the p4 row as its (unique) certified
            # floor — that read must count as a use for LRU purposes.
            warm = store.warm_start(fig2_dag, budget=3, options=EncodingOptions())
            assert warm.floor_budget == 4
            # An unrelated insert trips eviction: without the warm-read
            # recency refresh the p4 anchor would be the LRU row and die.
            _solve(chain_dag, 5, store=store)
            assert store.session["evictions"] == 1
            assert store.session["hits"] == 0
            _solve(fig2_dag, 4, store=store)
            assert store.session["hits"] == 1, "warm-read anchor was evicted"

    def test_clear_and_stats(self, fig2_dag, tmp_path):
        path = tmp_path / "cache.db"
        with ResultStore(path) as store:
            _solve(fig2_dag, 4, store=store)
            stats = store.stats()
            assert stats.entries == stats.pebble_entries == 1
            assert stats.size_bytes > 0
            assert store.clear() == 1
            assert store.stats().entries == 0

    def test_persistence_across_connections(self, fig2_dag, tmp_path):
        path = tmp_path / "cache.db"
        with ResultStore(path) as store:
            cold = _solve(fig2_dag, 4, store=store)
        with ResultStore(path) as reopened:
            hit = _solve(fig2_dag, 4, store=reopened)
            assert reopened.session["hits"] == 1
        assert json.dumps(cold.to_json(), sort_keys=True) == json.dumps(
            hit.to_json(), sort_keys=True
        )

    def test_reput_preserves_hit_counts(self, fig2_dag):
        # Two workers racing on the same miss both put; the second write
        # must not zero the hits the row accumulated in between.
        with ResultStore(":memory:") as store:
            cold = _solve(fig2_dag, 4, store=store)
            _solve(fig2_dag, 4, store=store)  # a hit: row hits -> 1
            parameters = dict(
                budget=4,
                options=EncodingOptions(),
                search=LinearSearch(),
                incremental=True,
                initial_steps=None,
                max_steps=None,
                step_floor=None,
            )
            assert store.put_pebble(fig2_dag, cold, **parameters)  # racing re-put
            assert store.stats().total_hits == 1

    def test_closed_store_raises(self):
        store = ResultStore(":memory:")
        store.close()
        with pytest.raises(StoreError):
            store.stats()

    def test_bad_max_entries_rejected(self):
        with pytest.raises(StoreError):
            ResultStore(":memory:", max_entries=0)


class TestCacheParity:
    """Acceptance criterion: cache hits are byte-identical per suite task."""

    @pytest.mark.parametrize(
        "task", tasks_from_suite("default", time_limit=60.0), ids=lambda t: t.name
    )
    def test_default_suite_hits_are_byte_identical(self, task):
        dag = load_workload_or_path(task.workload, scale=task.scale)
        parameters = task_solve_parameters(task)
        with ResultStore(":memory:") as store:
            solver = ReversiblePebblingSolver(
                dag, options=parameters["options"], incremental=task.incremental
            )
            cold = solver.solve(
                task.pebbles,
                strategy=parameters["search"],
                time_limit=task.time_limit,
                store=store,
            )
            hit = solver.solve(
                task.pebbles,
                strategy=parameters["search"],
                time_limit=task.time_limit,
                store=store,
            )
            assert store.session["hits"] == 1, "second solve must be a pure hit"
        assert json.dumps(cold.to_json(), sort_keys=True) == json.dumps(
            hit.to_json(), sort_keys=True
        )
        # And the store never changed what gets computed: a store-free
        # solve agrees on every semantic field (runtimes aside).
        bare = ReversiblePebblingSolver(
            dag, options=parameters["options"], incremental=task.incremental
        ).solve(
            task.pebbles,
            strategy=parameters["search"],
            time_limit=task.time_limit,
        )
        assert bare.outcome == cold.outcome
        assert bare.num_steps == cold.num_steps
        assert len(bare.attempts) == len(cold.attempts)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])


class TestBackendInvariance:
    """Content addresses ignore the backend; payloads record the producer."""

    def test_hit_transfers_across_backends(self, fig2_dag):
        with ResultStore(":memory:") as store:
            produced = ReversiblePebblingSolver(fig2_dag, backend="dpll").solve(
                4, time_limit=60, store=store
            )
            assert produced.backend == "dpll"
            assert store.session["puts"] == 1
            served = ReversiblePebblingSolver(fig2_dag, backend="cdcl").solve(
                4, time_limit=60, store=store
            )
            assert store.session["hits"] == 1, "cross-backend request must hit"
        # The served result is the stored one — metadata names the actual
        # producer, not the requester.
        assert served.backend == "dpll"
        assert served.num_steps == produced.num_steps

    def test_request_key_ignores_options_backend(self, fig2_dag):
        from repro.store.fingerprint import exact_dag_digest, pebble_request_key

        digest = exact_dag_digest(fig2_dag)
        keys = {
            pebble_request_key(
                exact_digest=digest,
                budget=4,
                options=EncodingOptions(backend=backend),
                search=LinearSearch(),
                incremental=True,
                initial_steps=None,
                max_steps=None,
                step_floor=None,
            )
            for backend in (None, "cdcl", "dpll", "external:whatever")
        }
        assert len(keys) == 1

    def test_options_key_ignores_backend(self):
        from repro.store.fingerprint import options_key

        assert options_key(EncodingOptions()) == options_key(
            EncodingOptions(backend="dpll")
        )

    def test_warm_start_transfers_across_backends(self, fig2_dag):
        with ResultStore(":memory:") as store:
            ReversiblePebblingSolver(fig2_dag, backend="dpll").solve(
                5, time_limit=60, store=store
            )
            warm = store.warm_start(
                fig2_dag, budget=4, options=EncodingOptions()
            )
        assert warm is not None
        assert warm.step_floor is not None

    def test_core_schedule_addresses_differ_from_plain(self, fig2_dag):
        # Core-guided schedules change the attempt sequence, so they cache
        # under their own signature — but stay backend-invariant.
        from repro.pebbling.search import GeometricRefine

        with ResultStore(":memory:") as store:
            _solve(fig2_dag, 4, store=store, schedule=GeometricRefine())
            assert store.stats().entries == 1
            _solve(
                fig2_dag, 4, store=store, schedule=GeometricRefine(core_guided=True)
            )
            assert store.stats().entries == 2
