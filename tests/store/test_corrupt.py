"""Regression tests: corrupt store payloads degrade to logged cache misses.

A truncated write, a bit-flipped database or a payload from an older
schema must never raise out of ``get`` — the poisoned row is quarantined
(deleted) so it cannot re-trip every future lookup of the same key.
"""

from __future__ import annotations

import pytest

from repro.pebbling.solver import ReversiblePebblingSolver
from repro.store import ResultStore


def _seed(store, dag):
    """Solve fig2 p4 through the store so exactly one row exists."""
    result = ReversiblePebblingSolver(dag).solve(4, time_limit=60, store=store)
    assert result.found
    assert store.stats().entries == 1


def _poison(store, payload: str) -> None:
    connection = store._require()
    with connection:
        connection.execute("UPDATE results SET payload = ?", (payload,))


@pytest.mark.parametrize("payload", [
    '{"truncated',          # invalid JSON (torn write)
    "{}",                   # valid JSON, wrong shape for from_json
    '{"schema": 999}',      # future/unknown schema
])
def test_corrupt_payload_is_a_miss_and_the_row_is_quarantined(
    fig2_dag, payload, caplog
):
    with ResultStore(":memory:") as store:
        _seed(store, fig2_dag)
        _poison(store, payload)
        with caplog.at_level("WARNING", logger="repro.store.store"):
            result = ReversiblePebblingSolver(fig2_dag).solve(
                4, time_limit=60, store=store
            )
        # The lookup degraded to a miss: the solver re-solved and re-stored.
        assert result.found
        assert store.session["corrupt"] == 1
        assert store.session["hits"] == 0
        assert any("corrupt payload" in record.message for record in caplog.records)
        # The poisoned row was replaced by the fresh solve, and a repeat
        # is a clean hit again — the quarantine healed the store.
        assert store.stats().entries == 1
        repeat = ReversiblePebblingSolver(fig2_dag).solve(
            4, time_limit=60, store=store
        )
        assert repeat.found
        assert store.session["hits"] == 1
        assert store.session["corrupt"] == 1


def test_quarantine_deletes_the_row_not_the_table(fig2_dag, and9_dag):
    with ResultStore(":memory:") as store:
        _seed(store, fig2_dag)
        healthy = ReversiblePebblingSolver(and9_dag).solve(
            5, time_limit=60, store=store
        )
        assert healthy.found
        assert store.stats().entries == 2
        # Poison only the fig2 row.
        connection = store._require()
        with connection:
            connection.execute(
                "UPDATE results SET payload = '!' WHERE rowid = "
                "(SELECT MIN(rowid) FROM results)"
            )
        before = store.session["corrupt"]
        ReversiblePebblingSolver(fig2_dag).solve(4, time_limit=60, store=store)
        ReversiblePebblingSolver(and9_dag).solve(5, time_limit=60, store=store)
        assert store.session["corrupt"] == before + 1
        assert store.session["hits"] == 1  # the healthy and9 row still hits
        assert store.stats().entries == 2
